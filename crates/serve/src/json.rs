//! Minimal hand-rolled JSON: a value type, a strict parser, and a
//! deterministic compact writer.
//!
//! The workspace is offline, so the wire format is built the same way the
//! Chrome trace export is (`concord_trace::chrome`): by hand, with
//! deterministic output — object keys keep insertion order and floats use
//! Rust's shortest-roundtrip formatter, so identical values always encode
//! to identical bytes.
//!
//! Numbers are stored as `f64`. Every integer the protocol carries
//! (addresses, session ids, counters) is far below 2^53, so the round-trip
//! through `f64` is exact; [`Json::as_u64`] checks this rather than
//! silently truncating.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs for integer fidelity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer. `None` when
    /// the value is not a number, is negative, has a fraction, or exceeds
    /// 2^53 (where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
            return None;
        }
        Some(n as u64)
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers print without a trailing `.0`; everything
                    // else uses the shortest-roundtrip float form.
                    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no NaN/Infinity literals; encode as null
                    // (the protocol never sends non-finite numbers).
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse one JSON value from `text`; trailing non-whitespace is an error.
///
/// # Errors
///
/// A human-readable description with a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting deeper than this is rejected — a hostile frame must not be able
/// to overflow the parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected byte `{}` at {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("invalid \\u escape at byte {}", self.pos)
                                })?;
                            // Surrogates are rejected rather than paired —
                            // the protocol never emits them.
                            let c = char::from_u32(hex).ok_or_else(|| {
                                format!("non-scalar \\u escape at byte {}", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged:
                    // the input is &str, so slicing on char boundaries via
                    // chars() would be cleaner but slower; walk bytes and
                    // re-validate the span instead.
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let span = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    if span.chars().any(|c| (c as u32) < 0x20) {
                        return Err(format!("unescaped control char at byte {start}"));
                    }
                    out.push_str(span);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text, "round trip of {text}");
            assert_eq!(parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::str("a\"b\\c\nd\te\u{1}f");
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("\"héllo → 🦀\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 🦀"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn u64_fidelity() {
        let addr = 48_000_123u64;
        let v: Json = addr.into();
        assert_eq!(parse(&v.to_string()).unwrap().as_u64(), Some(addr));
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"}", "nul", "1 2", "{\"a\":}", "+1"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_lookup_and_order() {
        let v = parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.to_string(), "{\"z\":1,\"a\":2}", "insertion order preserved");
    }
}
