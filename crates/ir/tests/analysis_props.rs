//! Property tests for the CFG analyses: [`DomTree`] and [`liveness`] are
//! checked against naive reference implementations on randomly generated
//! control-flow graphs (including unreachable blocks, self-loops, back
//! edges into the entry, and duplicate-edge conditional branches).
//!
//! The references use definitions, not algorithms: `a` dominates `b` iff
//! removing `a` makes `b` unreachable from the entry, and a value is live
//! at a point iff some path from that point reaches a use without passing
//! the definition. The shipped analyses are iterative fixpoints — agreeing
//! with the definitional versions on arbitrary graphs is the property.

use concord_ir::analysis::{liveness, DomTree};
use concord_ir::{BinOp, Block, BlockId, Function, Op, Type, ValueId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Shape of one random block: (terminator kind + phi toggle, target seed
/// 1, target seed 2, filler-instruction count seed).
type Shape = (u8, u8, u8, u8);

/// Build a function whose CFG and instruction placement are fully
/// determined by `shape`. Within a block, definitions always precede
/// uses positionally (phis first, then filler, then the terminator), but
/// cross-block references are unconstrained — a use may name a value
/// whose block does not dominate it, which the syntactic analyses under
/// test accept.
fn build_cfg(shape: &[Shape]) -> Function {
    let n = shape.len() as u32;
    let mut f = Function::new("prop_cfg", vec![], Type::Void);
    for _ in 1..n {
        f.blocks.push(Block::default());
    }
    // A pool of entry-block constants every block can draw operands from
    // (also the branch condition — entry defs are visible everywhere).
    let pool: Vec<ValueId> = (0..4)
        .map(|k| {
            let v = f.push_inst(Op::ConstInt(k), Type::I64);
            f.blocks[0].insts.push(v);
            v
        })
        .collect();
    let cond = pool[0];
    let term = move |b: usize| -> Op {
        let (kind, t1, t2, _) = shape[b];
        match kind % 3 {
            0 => Op::Ret(None),
            1 => Op::Br(BlockId(u32::from(t1) % n)),
            _ => Op::CondBr(cond, BlockId(u32::from(t1) % n), BlockId(u32::from(t2) % n)),
        }
    };
    // Terminators are decided up front so predecessor lists exist before
    // the phis that need them are placed.
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n as usize];
    for b in 0..n as usize {
        for s in term(b).successors() {
            preds[s.0 as usize].push(BlockId(b as u32));
        }
    }
    let mut defined = pool;
    for b in 0..n as usize {
        let (kind, t1, t2, filler) = shape[b];
        if b != 0 && !preds[b].is_empty() && kind & 0x80 != 0 {
            let incoming = preds[b]
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, defined[(usize::from(t2) + i) % defined.len()]))
                .collect();
            let v = f.push_inst(Op::Phi(incoming), Type::I64);
            f.blocks[b].insts.push(v);
            defined.push(v);
        }
        for j in 0..usize::from(filler % 3) {
            let a = defined[(usize::from(t1) + j) % defined.len()];
            let c = defined[(usize::from(t2) + 2 * j) % defined.len()];
            let v = f.push_inst(Op::Bin(BinOp::Add, a, c), Type::I64);
            f.blocks[b].insts.push(v);
            defined.push(v);
        }
        let t = f.push_inst(term(b), Type::Void);
        f.blocks[b].insts.push(t);
    }
    f
}

/// Blocks reachable from the entry when `avoid` (if any) is deleted from
/// the graph.
fn reachable_avoiding(f: &Function, avoid: Option<BlockId>) -> HashSet<BlockId> {
    let mut seen = HashSet::new();
    if avoid == Some(f.entry()) {
        return seen;
    }
    seen.insert(f.entry());
    let mut stack = vec![f.entry()];
    while let Some(b) = stack.pop() {
        for s in f.successors(b) {
            if Some(s) != avoid && seen.insert(s) {
                stack.push(s);
            }
        }
    }
    seen
}

/// Definitional liveness: seed every use (phi inputs count as uses at the
/// end of the matching predecessor), then walk backwards until a block
/// that defines the value stops the propagation.
fn naive_liveness(
    f: &Function,
) -> (HashMap<BlockId, HashSet<ValueId>>, HashMap<BlockId, HashSet<ValueId>>) {
    let preds = f.predecessors();
    let mut defb: HashMap<ValueId, BlockId> = HashMap::new();
    for b in f.block_ids() {
        for &v in &f.block(b).insts {
            defb.insert(v, b);
        }
    }
    let mut live_in: HashMap<BlockId, HashSet<ValueId>> =
        f.block_ids().map(|b| (b, HashSet::new())).collect();
    let mut live_out = live_in.clone();
    // (block, value) pairs where the value is live at the block's entry.
    let mut work: Vec<(BlockId, ValueId)> = Vec::new();
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            match &f.inst(i).op {
                Op::Phi(incoming) => {
                    for &(p, v) in incoming {
                        live_out.get_mut(&p).unwrap().insert(v);
                        if defb.get(&v) != Some(&p) {
                            work.push((p, v));
                        }
                    }
                }
                op => {
                    for v in op.operands() {
                        // The generator places defs before same-block
                        // uses, so a same-block def means "not live-in".
                        if defb.get(&v) != Some(&b) {
                            work.push((b, v));
                        }
                    }
                }
            }
        }
    }
    while let Some((b, v)) = work.pop() {
        if !live_in.get_mut(&b).unwrap().insert(v) {
            continue;
        }
        for &p in &preds[&b] {
            live_out.get_mut(&p).unwrap().insert(v);
            if defb.get(&v) != Some(&p) {
                work.push((p, v));
            }
        }
    }
    (live_in, live_out)
}

proptest! {
    /// `DomTree::dominates` agrees with the path definition: `a` dominates
    /// `b` iff `b` is reachable and deleting `a` cuts every entry path to
    /// `b` (reflexively true for `a == b`).
    #[test]
    fn dominates_matches_cut_vertex_definition(
        shape in collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..10)
    ) {
        let f = build_cfg(&shape);
        let dt = DomTree::compute(&f);
        let reachable = reachable_avoiding(&f, None);
        for a in f.block_ids() {
            let without_a = reachable_avoiding(&f, Some(a));
            for b in f.block_ids() {
                let expect = a == b || (reachable.contains(&b) && !without_a.contains(&b));
                prop_assert_eq!(
                    dt.dominates(a, b), expect,
                    "dominates({:?}, {:?}) on {:?}", a, b, shape
                );
            }
        }
    }

    /// Every reachable block's immediate dominator is its *closest* strict
    /// dominator: it strictly dominates the block, and every other strict
    /// dominator dominates it. Unreachable blocks have no idom.
    #[test]
    fn idom_is_the_closest_strict_dominator(
        shape in collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..10)
    ) {
        let f = build_cfg(&shape);
        let dt = DomTree::compute(&f);
        let reachable = reachable_avoiding(&f, None);
        let dom = |a: BlockId, b: BlockId| {
            a == b || (reachable.contains(&b) && !reachable_avoiding(&f, Some(a)).contains(&b))
        };
        for b in f.block_ids() {
            if !reachable.contains(&b) {
                prop_assert_eq!(dt.idom(b), None, "unreachable {:?} has an idom", b);
                continue;
            }
            if b == f.entry() {
                prop_assert_eq!(dt.idom(b), Some(b), "entry idom is itself");
                continue;
            }
            let d = dt.idom(b).expect("reachable non-entry block has an idom");
            prop_assert!(d != b && dom(d, b), "idom({:?}) = {:?} is not a strict dominator", b, d);
            for s in f.block_ids() {
                if s != b && dom(s, b) {
                    prop_assert!(
                        dom(s, d),
                        "strict dominator {:?} of {:?} does not dominate idom {:?}", s, b, d
                    );
                }
            }
        }
    }

    /// The backward-fixpoint liveness agrees with the definitional
    /// use-to-def walk, including the SSA phi conventions (inputs live out
    /// of the matching predecessor, phi defs killed at block entry).
    #[test]
    fn liveness_matches_naive_reference(
        shape in collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..10)
    ) {
        let f = build_cfg(&shape);
        let lv = liveness(&f);
        let (live_in, live_out) = naive_liveness(&f);
        prop_assert_eq!(&lv.live_in, &live_in, "live_in mismatch on {:?}", shape);
        prop_assert_eq!(&lv.live_out, &live_out, "live_out mismatch on {:?}", shape);
    }
}
