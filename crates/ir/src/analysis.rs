//! Control-flow analyses: reverse postorder, dominators, postdominators,
//! dominance frontiers, natural loops, and liveness.
//!
//! These feed the optimization passes (register promotion needs dominance
//! frontiers; translation placement needs liveness; unrolling and the L3
//! contention transform need loop structure) and the GPU simulator's SIMT
//! reconvergence (immediate postdominators).

use crate::function::Function;
use crate::inst::{BlockId, Op, ValueId};
use std::collections::{HashMap, HashSet};

/// Blocks reachable from the entry, in reverse postorder.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut visited = HashSet::new();
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack = vec![(f.entry(), 0usize)];
    visited.insert(f.entry());
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.successors(b);
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Dominator tree: for each reachable block, its immediate dominator
/// (the entry maps to itself).
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: HashMap<BlockId, BlockId>,
    rpo_index: HashMap<BlockId, usize>,
    /// Reverse postorder used to compute the tree.
    pub rpo: Vec<BlockId>,
}

impl DomTree {
    /// Compute dominators with the Cooper–Harvey–Kennedy iterative algorithm.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let preds = f.predecessors();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(f.entry(), f.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[&b] {
                    if !idom.contains_key(&p) {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo_index, rpo }
    }

    /// Immediate dominator of `b` (entry's idom is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Dominance frontier of every reachable block (Cytron et al.), used for
    /// phi placement in register promotion.
    pub fn dominance_frontiers(&self, f: &Function) -> HashMap<BlockId, Vec<BlockId>> {
        let preds = f.predecessors();
        let mut df: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
        for &b in &self.rpo {
            let bp = &preds[&b];
            if bp.len() < 2 {
                continue;
            }
            let Some(b_idom) = self.idom(b) else { continue };
            for &p in bp {
                if !self.idom.contains_key(&p) {
                    continue;
                }
                let mut runner = p;
                while runner != b_idom {
                    df.entry(runner).or_default().insert(b);
                    match self.idom(runner) {
                        Some(d) if d != runner => runner = d,
                        _ => break,
                    }
                }
            }
        }
        let mut out: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (b, set) in df {
            let mut v: Vec<BlockId> = set.into_iter().collect();
            v.sort();
            out.insert(b, v);
        }
        for &b in &self.rpo {
            out.entry(b).or_default();
        }
        out
    }

    /// Reverse-postorder index of `b`, if reachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index.get(&b).copied()
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

/// Immediate postdominators, computed over the reversed CFG with a virtual
/// exit that joins every `ret`/`unreachable` block.
///
/// The GPU simulator uses this for SIMT reconvergence: when a warp diverges
/// at a conditional branch, lanes reconverge at the branch block's immediate
/// postdominator.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    /// Immediate postdominator per block; `None` for the virtual exit's
    /// direct children when the closest common postdominator is the exit.
    ipdom: HashMap<BlockId, Option<BlockId>>,
}

impl PostDomTree {
    /// Compute immediate postdominators.
    pub fn compute(f: &Function) -> Self {
        // Build reversed CFG with virtual exit node (id = blocks.len()).
        let n = f.blocks.len();
        let exit = n;
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1]; // reversed edges
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for b in f.block_ids() {
            let bi = b.0 as usize;
            let ss = f.successors(b);
            if ss.is_empty() {
                // terminator is ret/unreachable (or block incomplete): edge to exit
                preds[bi].push(exit);
                succs[exit].push(bi);
            }
            for s in ss {
                let si = s.0 as usize;
                preds[bi].push(si);
                succs[si].push(bi);
            }
        }
        // RPO on reversed graph starting from exit.
        let mut visited = vec![false; n + 1];
        let mut post: Vec<usize> = Vec::new();
        let mut stack = vec![(exit, 0usize)];
        visited[exit] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b].len() {
                let s = succs[b][*i];
                *i += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let rpo_index: HashMap<usize, usize> =
            post.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut idom: HashMap<usize, usize> = HashMap::new();
        idom.insert(exit, exit);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in post.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &preds[b] {
                    if !idom.contains_key(&p) || !rpo_index.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => {
                            let (mut a, mut c) = (p, cur);
                            while a != c {
                                while rpo_index[&a] > rpo_index[&c] {
                                    a = idom[&a];
                                }
                                while rpo_index[&c] > rpo_index[&a] {
                                    c = idom[&c];
                                }
                            }
                            a
                        }
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        let mut ipdom = HashMap::new();
        for b in 0..n {
            match idom.get(&b) {
                Some(&d) if d != exit => {
                    ipdom.insert(BlockId(b as u32), Some(BlockId(d as u32)));
                }
                Some(_) => {
                    ipdom.insert(BlockId(b as u32), None);
                }
                None => {} // unreachable block
            }
        }
        PostDomTree { ipdom }
    }

    /// Immediate postdominator of `b`. `Some(None)` means the virtual exit.
    pub fn ipdom(&self, b: BlockId) -> Option<Option<BlockId>> {
        self.ipdom.get(&b).copied()
    }
}

/// A natural loop: header plus body blocks, discovered from back edges.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
}

impl Loop {
    /// Whether the loop contains no other loop's header (innermost).
    pub fn is_innermost(&self, all: &[Loop]) -> bool {
        !all.iter().any(|other| other.header != self.header && self.blocks.contains(&other.header))
    }
}

/// Find all natural loops via back edges (`latch → header` where the header
/// dominates the latch).
pub fn find_loops(f: &Function) -> Vec<Loop> {
    let dom = DomTree::compute(f);
    let preds = f.predecessors();
    let mut loops: HashMap<BlockId, Loop> = HashMap::new();
    for &b in &dom.rpo {
        for s in f.successors(b) {
            if dom.dominates(s, b) {
                // back edge b -> s
                let l = loops.entry(s).or_insert_with(|| Loop {
                    header: s,
                    blocks: HashSet::from([s]),
                    latches: Vec::new(),
                    depth: 0,
                });
                l.latches.push(b);
                // Collect body: reverse walk from the latch to the header.
                let mut work = vec![b];
                while let Some(x) = work.pop() {
                    if l.blocks.insert(x) {
                        for &p in &preds[&x] {
                            work.push(p);
                        }
                    }
                }
            }
        }
    }
    let mut result: Vec<Loop> = loops.into_values().collect();
    result.sort_by_key(|l| l.header);
    // Depth: number of loops containing this loop's header.
    let depths: Vec<u32> = result
        .iter()
        .map(|l| result.iter().filter(|o| o.blocks.contains(&l.header)).count() as u32)
        .collect();
    for (l, d) in result.iter_mut().zip(depths) {
        l.depth = d;
    }
    result
}

/// Per-block liveness of SSA values: `live_in`/`live_out` sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Values live at block entry.
    pub live_in: HashMap<BlockId, HashSet<ValueId>>,
    /// Values live at block exit.
    pub live_out: HashMap<BlockId, HashSet<ValueId>>,
}

/// Compute per-block liveness with a standard backward fixpoint.
///
/// Phi inputs are treated as live-out of the corresponding predecessor
/// (standard SSA liveness convention).
pub fn liveness(f: &Function) -> Liveness {
    let mut live_in: HashMap<BlockId, HashSet<ValueId>> = HashMap::new();
    let mut live_out: HashMap<BlockId, HashSet<ValueId>> = HashMap::new();
    for b in f.block_ids() {
        live_in.insert(b, HashSet::new());
        live_out.insert(b, HashSet::new());
    }
    // Per-block use/def, with phi handling.
    let mut changed = true;
    while changed {
        changed = false;
        let blocks: Vec<BlockId> = f.block_ids().collect();
        for &b in blocks.iter().rev() {
            // live_out = union over successors s of (live_in(s) minus s's phi
            // defs, plus phi inputs from b). Each successor's contribution is
            // built separately before the union: removing s's phi defs from
            // the running union would also cancel values contributed by a
            // sibling edge, making the result depend on successor order.
            let mut out: HashSet<ValueId> = HashSet::new();
            for s in f.successors(b) {
                let mut contrib = live_in[&s].clone();
                for &iid in &f.block(s).insts {
                    if let Op::Phi(incoming) = &f.inst(iid).op {
                        contrib.remove(&iid);
                        for &(pred, v) in incoming {
                            if pred == b {
                                contrib.insert(v);
                            }
                        }
                    }
                }
                out.extend(contrib);
            }
            // live_in = (live_out - defs) + uses, scanned backwards.
            let mut inn = out.clone();
            for &iid in f.block(b).insts.iter().rev() {
                inn.remove(&iid);
                if let Op::Phi(_) = &f.inst(iid).op {
                    // Phi uses are attributed to predecessors; treat the phi
                    // as a def at block entry only.
                    continue;
                }
                for u in f.inst(iid).op.operands() {
                    inn.insert(u);
                }
            }
            // Phi defs are killed at entry but the phi itself is live-in if
            // used later, which the scan above already handles.
            if inn != live_in[&b] {
                live_in.insert(b, inn);
                changed = true;
            }
            if out != live_out[&b] {
                live_out.insert(b, out);
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Whether any function reachable from `roots` uses an operation whose
/// result depends on cross-work-item execution *order*: `device_malloc`
/// (a shared bump cursor) or `atomic_cas` (order-visible old values used
/// for locking idioms).
///
/// The host-parallel execution engine runs kernels against region
/// snapshots with an ordered commit, which preserves plain stores and
/// commutative atomics but not these; kernels flagged here run on the
/// serial direct path instead. Calls are followed transitively; a virtual
/// call widens the scan to every function in the module (the CGA-precise
/// answer is unnecessary — gating is a performance choice, not a
/// correctness one, so over-approximating is safe).
pub fn uses_gated_ops(module: &crate::function::Module, roots: &[crate::inst::FuncId]) -> bool {
    use crate::inst::Intrinsic;
    let gated = |f: &Function| {
        f.insts.iter().any(|inst| {
            matches!(
                inst.op,
                Op::IntrinsicCall(Intrinsic::DeviceMalloc, _)
                    | Op::IntrinsicCall(Intrinsic::AtomicCasI32, _)
            )
        })
    };
    let mut work: Vec<crate::inst::FuncId> = roots.to_vec();
    let mut seen: HashSet<crate::inst::FuncId> = work.iter().copied().collect();
    while let Some(fid) = work.pop() {
        let Some(f) = module.functions.get(fid.0 as usize) else { continue };
        if gated(f) {
            return true;
        }
        for inst in &f.insts {
            match &inst.op {
                Op::Call { callee, .. } if seen.insert(*callee) => {
                    work.push(*callee);
                }
                // Conservative: any reachable virtual call could target any
                // method, so scan the whole module.
                Op::CallVirtual { .. } => {
                    return module.functions.iter().any(gated);
                }
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, ICmp};
    use crate::types::Type;

    /// entry -> (then|else) -> join -> ret, a classic diamond.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let p = b.param(0);
        let zero = b.i32(0);
        let c = b.icmp(ICmp::Sgt, p, zero);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        let one = b.i32(1);
        b.br(j);
        b.switch_to(e);
        let two = b.i32(2);
        b.br(j);
        b.switch_to(j);
        let x = b.phi(Type::I32, vec![(t, one), (e, two)]);
        b.ret(Some(x));
        b.build()
    }

    /// entry -> header <-> body, header -> exit (a while loop).
    fn simple_loop() -> (Function, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::Void);
        let n = b.param(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let zero = b.i32(0);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I32, vec![]);
        let c = b.icmp(ICmp::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let one = b.i32(1);
        let next = b.bin(BinOp::Add, i, one);
        b.br(header);
        // patch phi
        let mut f = b.build();
        if let Op::Phi(inc) = &mut f.inst_mut(i).op {
            inc.push((BlockId(0), zero));
            inc.push((body, next));
        }
        let ret = f.push_inst(Op::Ret(None), Type::Void);
        f.block_mut(exit).insts.push(ret);
        (f, header, body, exit)
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // join must come after both branches
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn dominators_of_diamond() {
        let f = diamond();
        let dom = DomTree::compute(&f);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn dominance_frontier_of_diamond() {
        let f = diamond();
        let dom = DomTree::compute(&f);
        let df = dom.dominance_frontiers(&f);
        assert_eq!(df[&BlockId(1)], vec![BlockId(3)]);
        assert_eq!(df[&BlockId(2)], vec![BlockId(3)]);
        assert!(df[&BlockId(0)].is_empty());
    }

    #[test]
    fn postdominators_of_diamond() {
        let f = diamond();
        let pd = PostDomTree::compute(&f);
        // The branch block's immediate postdominator is the join.
        assert_eq!(pd.ipdom(BlockId(0)), Some(Some(BlockId(3))));
        assert_eq!(pd.ipdom(BlockId(1)), Some(Some(BlockId(3))));
        // Join's ipdom is the virtual exit.
        assert_eq!(pd.ipdom(BlockId(3)), Some(None));
    }

    #[test]
    fn loop_detection() {
        let (f, header, body, _exit) = simple_loop();
        let loops = find_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, header);
        assert!(l.blocks.contains(&body));
        assert_eq!(l.latches, vec![body]);
        assert_eq!(l.depth, 1);
        assert!(l.is_innermost(&loops));
    }

    #[test]
    fn liveness_across_loop() {
        let (f, header, body, _) = simple_loop();
        let lv = liveness(&f);
        // The parameter n (ValueId 0) is used in the header comparison every
        // iteration, so it is live into both header and body.
        assert!(lv.live_in[&header].contains(&ValueId(0)));
        assert!(lv.live_in[&body].contains(&ValueId(0)));
    }

    #[test]
    fn diamond_has_no_loops() {
        let f = diamond();
        assert!(find_loops(&f).is_empty());
    }
}
