//! # concord-ir
//!
//! Typed SSA intermediate representation for the Concord reproduction
//! (Barik et al., *Efficient Mapping of Irregular C++ Applications to
//! Integrated GPUs*, CGO 2014).
//!
//! The IR sits between the C++-like kernel language (`concord-frontend`)
//! and the two execution substrates (CPU and GPU simulators). Its
//! distinguishing features, inherited from the paper's design:
//!
//! * **Address-space-qualified opaque pointers** ([`types::AddrSpace`]):
//!   CPU virtual addresses, GPU surface-relative addresses, per-work-item
//!   private memory, and work-group local memory.
//! * **Explicit SVM translation instructions** (`CpuToGpu`/`GpuToCpu` in
//!   [`inst::Op`]): the software shared-virtual-memory design stores all
//!   pointers in CPU representation; GPU code must translate before
//!   dereferencing. Where those translations go is the subject of the
//!   paper's §4.1 optimization.
//! * **First-class virtual calls** (`Op::CallVirtual`) that a compiler pass
//!   must devirtualize before GPU execution, because integrated GPUs have no
//!   function pointers (§3.2).
//!
//! ## Example
//!
//! ```
//! use concord_ir::builder::FunctionBuilder;
//! use concord_ir::inst::BinOp;
//! use concord_ir::types::Type;
//!
//! let mut b = FunctionBuilder::new("add1", vec![Type::I32], Type::I32);
//! let p = b.param(0);
//! let one = b.i32(1);
//! let sum = b.bin(BinOp::Add, p, one);
//! b.ret(Some(sum));
//! let f = b.build();
//! assert!(concord_ir::verify::verify_function(&f).is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod codec;
pub mod eval;
pub mod function;
pub mod inst;
pub mod printer;
pub mod stats;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use function::{Block, ClassInfo, Function, Inst, KernelKind, Module};
pub use inst::{BinOp, BlockId, CastOp, FCmp, FuncId, ICmp, Intrinsic, Op, ValueId};
pub use types::{AddrSpace, ClassId, Field, StructDef, StructId, Type};
