//! Instruction set of the Concord IR.
//!
//! The IR is in SSA form: every instruction that produces a value defines a
//! fresh [`ValueId`]; `phi` nodes merge values at control-flow joins.
//! Terminators end basic blocks.

use crate::types::ClassId;
use std::fmt;

/// SSA value: index of the defining instruction in a function's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Basic block index within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Function index within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Two-operand arithmetic and bitwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Division by zero traps.
    SDiv,
    /// Unsigned division. Division by zero traps.
    UDiv,
    /// Signed remainder. Division by zero traps.
    SRem,
    /// Unsigned remainder. Division by zero traps.
    URem,
    FAdd,
    FSub,
    FMul,
    FDiv,
    And,
    Or,
    Xor,
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
}

impl BinOp {
    /// Whether the operation is floating-point.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ICmp {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl ICmp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmp::Eq => "eq",
            ICmp::Ne => "ne",
            ICmp::Slt => "slt",
            ICmp::Sle => "sle",
            ICmp::Sgt => "sgt",
            ICmp::Sge => "sge",
            ICmp::Ult => "ult",
            ICmp::Ule => "ule",
            ICmp::Ugt => "ugt",
            ICmp::Uge => "uge",
        }
    }
}

/// Floating-point comparison predicates (ordered semantics: NaN compares
/// false except for `Ne`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmp {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FCmp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmp::Oeq => "oeq",
            FCmp::One => "one",
            FCmp::Olt => "olt",
            FCmp::Ole => "ole",
            FCmp::Ogt => "ogt",
            FCmp::Oge => "oge",
        }
    }
}

/// Value conversions between IR types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Integer zero-extension (or no-op to same width).
    Zext,
    /// Integer sign-extension.
    Sext,
    /// Integer truncation.
    Trunc,
    /// Float → signed integer (round toward zero).
    FpToSi,
    /// Signed integer → float.
    SiToFp,
    /// Float width change.
    FpCast,
    /// Pointer → i64 (keeps the bit pattern).
    PtrToInt,
    /// i64 → pointer. The result type carries the address space.
    IntToPtr,
    /// Reinterpret a pointer in a different address space *without* changing
    /// its numeric value. Only used internally by tests; real space changes
    /// go through `CpuToGpu`/`GpuToCpu`.
    PtrCast,
}

impl CastOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
            CastOp::FpToSi => "fptosi",
            CastOp::SiToFp => "sitofp",
            CastOp::FpCast => "fpcast",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
            CastOp::PtrCast => "ptrcast",
        }
    }
}

/// Built-in operations with device-specific implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// Global work-item id of the current invocation (i32).
    GlobalId,
    /// Total number of work-items (i32).
    GlobalSize,
    /// Work-item id within the work-group (i32).
    LocalId,
    /// Work-group id (i32).
    GroupId,
    /// Work-group execution barrier (void).
    Barrier,
    /// Atomic `*ptr += v`, returns the old value (i32).
    AtomicAddI32,
    /// Atomic `*ptr = min(*ptr, v)`, returns the old value (i32).
    AtomicMinI32,
    /// Atomic compare-and-swap on i32: `(ptr, expected, new)`, returns old.
    AtomicCasI32,
    /// `sqrt` (f32).
    Sqrt,
    /// `fabs` (f32).
    FAbs,
    /// `floor` (f32).
    Floor,
    /// Float minimum (f32, propagates the non-NaN operand).
    FMin,
    /// Float maximum (f32).
    FMax,
    /// `exp` (f32).
    Exp,
    /// `pow` (f32, f32).
    Pow,
    /// Signed integer minimum (i32).
    SMin,
    /// Signed integer maximum (i32).
    SMax,
    /// Device-side allocation from the shared region's device heap
    /// (the §2.1 restriction the paper plans to lift; implemented here).
    /// `(size: i32) -> ptr(cpu)`; returns null when the heap is exhausted.
    DeviceMalloc,
    /// Worklist push: `(item: i32) -> void`. Appends `item` to the next
    /// frontier of the enclosing `parallel_worklist_hetero` construct.
    /// Pushes land in a per-chunk segment merged at commit into a sorted,
    /// deduplicated frontier, so the drain order is deterministic on every
    /// target at any host-thread count. Traps outside a worklist launch.
    WlPush,
}

impl Intrinsic {
    /// Name used in source and printed IR.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::GlobalId => "global_id",
            Intrinsic::GlobalSize => "global_size",
            Intrinsic::LocalId => "local_id",
            Intrinsic::GroupId => "group_id",
            Intrinsic::Barrier => "barrier",
            Intrinsic::AtomicAddI32 => "atomic_add",
            Intrinsic::AtomicMinI32 => "atomic_min",
            Intrinsic::AtomicCasI32 => "atomic_cas",
            Intrinsic::Sqrt => "sqrtf",
            Intrinsic::FAbs => "fabsf",
            Intrinsic::Floor => "floorf",
            Intrinsic::FMin => "fminf",
            Intrinsic::FMax => "fmaxf",
            Intrinsic::Exp => "expf",
            Intrinsic::Pow => "powf",
            Intrinsic::SMin => "min",
            Intrinsic::SMax => "max",
            Intrinsic::DeviceMalloc => "device_malloc",
            Intrinsic::WlPush => "push",
        }
    }

    /// Whether this intrinsic reads or writes memory.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Intrinsic::AtomicAddI32
                | Intrinsic::AtomicMinI32
                | Intrinsic::AtomicCasI32
                | Intrinsic::DeviceMalloc
                | Intrinsic::WlPush
        )
    }
}

/// An IR operation. Instructions that produce a value have a non-void type
/// recorded in [`Inst::ty`](crate::function::Inst).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// The `i`-th function parameter. Always materialized at the top of the
    /// entry block by the builder.
    Param(u32),
    /// Integer constant (value stored sign-extended; type gives width).
    ConstInt(i64),
    /// Floating constant.
    ConstFloat(f64),
    /// Null pointer constant in the instruction's address space.
    ConstNull,
    /// Two-operand arithmetic.
    Bin(BinOp, ValueId, ValueId),
    /// Integer comparison producing `i1`.
    Icmp(ICmp, ValueId, ValueId),
    /// Float comparison producing `i1`.
    Fcmp(FCmp, ValueId, ValueId),
    /// Type conversion; result type is the instruction type.
    Cast(CastOp, ValueId),
    /// `cond ? a : b` without control flow.
    Select(ValueId, ValueId, ValueId),
    /// Reserve `size` bytes of private memory; yields `ptr(private)`.
    Alloca {
        /// Bytes to reserve.
        size: u64,
        /// Alignment in bytes.
        align: u64,
    },
    /// Load a value of the instruction's type from a pointer.
    Load(ValueId),
    /// Store `val` through `ptr`.
    Store {
        /// Destination pointer.
        ptr: ValueId,
        /// Value to store.
        val: ValueId,
    },
    /// Pointer + byte offset, same address space as `base`.
    Gep {
        /// Base pointer.
        base: ValueId,
        /// Byte offset (i64).
        offset: ValueId,
    },
    /// Translate a CPU-space pointer to GPU space (adds `svm_const`).
    CpuToGpu(ValueId),
    /// Translate a GPU-space pointer back to CPU space.
    GpuToCpu(ValueId),
    /// SSA merge: `(pred_block, value)` pairs covering all predecessors.
    Phi(Vec<(BlockId, ValueId)>),
    /// Direct call.
    Call {
        /// Callee.
        callee: FuncId,
        /// Argument values.
        args: Vec<ValueId>,
    },
    /// Virtual method call through the object's vtable.
    ///
    /// `static_class` is the class of the pointer's static type; `slot` the
    /// vtable slot of the method. The devirtualization pass replaces this
    /// with an inline test sequence over the possible targets, because
    /// integrated GPUs have no function pointers (§3.2).
    CallVirtual {
        /// Static class of the receiver expression.
        static_class: ClassId,
        /// Vtable slot index of the method.
        slot: u32,
        /// Receiver object pointer (first argument).
        obj: ValueId,
        /// Remaining arguments.
        args: Vec<ValueId>,
    },
    /// Built-in operation.
    IntrinsicCall(Intrinsic, Vec<ValueId>),
    /// Unconditional branch (terminator).
    Br(BlockId),
    /// Conditional branch on an `i1` (terminator).
    CondBr(ValueId, BlockId, BlockId),
    /// Function return (terminator).
    Ret(Option<ValueId>),
    /// Trap: reaching this is a bug (terminator).
    Unreachable,
}

impl Op {
    /// Whether this op terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br(_) | Op::CondBr(..) | Op::Ret(_) | Op::Unreachable)
    }

    /// Whether this op reads or writes memory (used by CSE/DCE and the
    /// Figure-6 static irregularity statistics).
    pub fn is_memory(&self) -> bool {
        match self {
            Op::Load(_) | Op::Store { .. } | Op::Alloca { .. } => true,
            Op::IntrinsicCall(i, _) => i.is_memory(),
            _ => false,
        }
    }

    /// Whether this op is a control-flow operation (terminators, calls, phi).
    pub fn is_control(&self) -> bool {
        self.is_terminator()
            || matches!(self, Op::Call { .. } | Op::CallVirtual { .. } | Op::Phi(_))
    }

    /// Whether this op has side effects and must not be removed by DCE even
    /// if its result is unused.
    pub fn has_side_effects(&self) -> bool {
        match self {
            Op::Store { .. }
            | Op::Call { .. }
            | Op::CallVirtual { .. }
            | Op::Br(_)
            | Op::CondBr(..)
            | Op::Ret(_)
            | Op::Unreachable => true,
            Op::IntrinsicCall(i, _) => i.is_memory() || matches!(i, Intrinsic::Barrier),
            // Division can trap, keep it.
            Op::Bin(op, ..) => {
                matches!(op, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
            }
            _ => false,
        }
    }

    /// All SSA operands of this op.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Op::Param(_)
            | Op::ConstInt(_)
            | Op::ConstFloat(_)
            | Op::ConstNull
            | Op::Alloca { .. }
            | Op::Br(_)
            | Op::Unreachable => Vec::new(),
            Op::Bin(_, a, b) | Op::Icmp(_, a, b) | Op::Fcmp(_, a, b) => vec![*a, *b],
            Op::Cast(_, v) | Op::Load(v) | Op::CpuToGpu(v) | Op::GpuToCpu(v) => vec![*v],
            Op::Select(c, a, b) => vec![*c, *a, *b],
            Op::Store { ptr, val } => vec![*ptr, *val],
            Op::Gep { base, offset } => vec![*base, *offset],
            Op::Phi(incoming) => incoming.iter().map(|(_, v)| *v).collect(),
            Op::Call { args, .. } => args.clone(),
            Op::CallVirtual { obj, args, .. } => {
                let mut v = vec![*obj];
                v.extend_from_slice(args);
                v
            }
            Op::IntrinsicCall(_, args) => args.clone(),
            Op::CondBr(c, ..) => vec![*c],
            Op::Ret(v) => v.iter().copied().collect(),
        }
    }

    /// Rewrite every operand through `f` (used by transformation passes).
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Op::Param(_)
            | Op::ConstInt(_)
            | Op::ConstFloat(_)
            | Op::ConstNull
            | Op::Alloca { .. }
            | Op::Br(_)
            | Op::Unreachable => {}
            Op::Bin(_, a, b) | Op::Icmp(_, a, b) | Op::Fcmp(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::Cast(_, v) | Op::Load(v) | Op::CpuToGpu(v) | Op::GpuToCpu(v) => *v = f(*v),
            Op::Select(c, a, b) => {
                *c = f(*c);
                *a = f(*a);
                *b = f(*b);
            }
            Op::Store { ptr, val } => {
                *ptr = f(*ptr);
                *val = f(*val);
            }
            Op::Gep { base, offset } => {
                *base = f(*base);
                *offset = f(*offset);
            }
            Op::Phi(incoming) => {
                for (_, v) in incoming.iter_mut() {
                    *v = f(*v);
                }
            }
            Op::Call { args, .. } | Op::IntrinsicCall(_, args) => {
                for a in args.iter_mut() {
                    *a = f(*a);
                }
            }
            Op::CallVirtual { obj, args, .. } => {
                *obj = f(*obj);
                for a in args.iter_mut() {
                    *a = f(*a);
                }
            }
            Op::CondBr(c, ..) => *c = f(*c),
            Op::Ret(v) => {
                if let Some(v) = v {
                    *v = f(*v);
                }
            }
        }
    }

    /// Successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br(b) => vec![*b],
            Op::CondBr(_, t, e) => vec![*t, *e],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Op::Br(BlockId(0)).is_terminator());
        assert!(Op::Ret(None).is_terminator());
        assert!(Op::Unreachable.is_terminator());
        assert!(!Op::ConstInt(1).is_terminator());
    }

    #[test]
    fn memory_classification() {
        assert!(Op::Load(ValueId(0)).is_memory());
        assert!(Op::Store { ptr: ValueId(0), val: ValueId(1) }.is_memory());
        assert!(Op::IntrinsicCall(Intrinsic::AtomicAddI32, vec![]).is_memory());
        assert!(!Op::Bin(BinOp::Add, ValueId(0), ValueId(1)).is_memory());
    }

    #[test]
    fn operand_traversal() {
        let op = Op::Select(ValueId(1), ValueId(2), ValueId(3));
        assert_eq!(op.operands(), vec![ValueId(1), ValueId(2), ValueId(3)]);
        let mut op = op;
        op.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(op.operands(), vec![ValueId(11), ValueId(12), ValueId(13)]);
    }

    #[test]
    fn virtual_call_operands_include_receiver() {
        let op = Op::CallVirtual {
            static_class: ClassId(0),
            slot: 1,
            obj: ValueId(5),
            args: vec![ValueId(6)],
        };
        assert_eq!(op.operands(), vec![ValueId(5), ValueId(6)]);
        assert!(op.is_control());
        assert!(op.has_side_effects());
    }

    #[test]
    fn successors_of_terminators() {
        assert_eq!(Op::Br(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(
            Op::CondBr(ValueId(0), BlockId(1), BlockId(2)).successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Op::Ret(None).successors().is_empty());
    }

    #[test]
    fn division_has_side_effects() {
        assert!(Op::Bin(BinOp::SDiv, ValueId(0), ValueId(1)).has_side_effects());
        assert!(!Op::Bin(BinOp::Add, ValueId(0), ValueId(1)).has_side_effects());
    }
}
