//! IR verifier: structural invariants every pass must preserve.

use crate::function::{Function, Module};
use crate::inst::{BlockId, Op};
use crate::types::Type;
use std::collections::HashSet;
use std::fmt;

/// A verifier failure, with enough context to locate the bug.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Function where the violation was found.
    pub function: String,
    /// Block where the violation was found, if block-local.
    pub block: Option<BlockId>,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(f, "verify error in {} at {}: {}", self.function, b, self.message),
            None => write!(f, "verify error in {}: {}", self.function, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a single function.
///
/// Checks:
/// * every block ends in exactly one terminator, which is its last instruction;
/// * no instruction appears in more than one block;
/// * branch targets are valid block ids;
/// * phi nodes appear only at the head of a block and cover exactly the
///   block's predecessors;
/// * operands refer to instructions that exist;
/// * stores and loads use pointer operands; `CpuToGpu`/`GpuToCpu` operate on
///   pointers of the correct space.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let err = |block: Option<BlockId>, message: String| VerifyError {
        function: f.name.clone(),
        block,
        message,
    };
    let mut placed: HashSet<u32> = HashSet::new();
    let preds = f.predecessors();
    for b in f.block_ids() {
        let insts = &f.block(b).insts;
        if insts.is_empty() {
            return Err(err(Some(b), "empty block".into()));
        }
        for (pos, &id) in insts.iter().enumerate() {
            if id.0 as usize >= f.insts.len() {
                return Err(err(Some(b), format!("instruction {id} out of range")));
            }
            if !placed.insert(id.0) {
                return Err(err(Some(b), format!("instruction {id} placed twice")));
            }
            let inst = f.inst(id);
            let is_last = pos == insts.len() - 1;
            if inst.op.is_terminator() != is_last {
                return Err(err(
                    Some(b),
                    format!("terminator placement violation at {id}: mid-block terminator or non-terminator tail"),
                ));
            }
            for target in inst.op.successors() {
                if target.0 as usize >= f.blocks.len() {
                    return Err(err(Some(b), format!("branch to missing block {target}")));
                }
            }
            for opnd in inst.op.operands() {
                if opnd.0 as usize >= f.insts.len() {
                    return Err(err(Some(b), format!("operand {opnd} of {id} out of range")));
                }
            }
            match &inst.op {
                Op::Phi(incoming) => {
                    // Phis must be at the head of the block (after other phis).
                    let head_ok = insts[..pos].iter().all(|&p| matches!(f.inst(p).op, Op::Phi(_)));
                    if !head_ok {
                        return Err(err(Some(b), format!("phi {id} not at block head")));
                    }
                    let mut seen: HashSet<BlockId> = HashSet::new();
                    for &(pred, _) in incoming {
                        if !seen.insert(pred) {
                            return Err(err(
                                Some(b),
                                format!("phi {id} has duplicate predecessor {pred}"),
                            ));
                        }
                        if !preds[&b].contains(&pred) {
                            return Err(err(
                                Some(b),
                                format!("phi {id} names non-predecessor {pred}"),
                            ));
                        }
                    }
                    let expected: HashSet<BlockId> = preds[&b].iter().copied().collect();
                    if seen != expected {
                        return Err(err(
                            Some(b),
                            format!(
                                "phi {id} covers {} of {} predecessors",
                                seen.len(),
                                expected.len()
                            ),
                        ));
                    }
                }
                Op::Load(p) => {
                    if !f.inst(*p).ty.is_ptr() {
                        return Err(err(Some(b), format!("load {id} from non-pointer {p}")));
                    }
                    if inst.ty == Type::Void {
                        return Err(err(Some(b), format!("load {id} of void")));
                    }
                }
                Op::Store { ptr, .. } if !f.inst(*ptr).ty.is_ptr() => {
                    return Err(err(Some(b), format!("store {id} to non-pointer {ptr}")));
                }
                Op::Gep { base, .. } if !f.inst(*base).ty.is_ptr() => {
                    return Err(err(Some(b), format!("gep {id} on non-pointer {base}")));
                }
                Op::CpuToGpu(v) => {
                    let vt = f.inst(*v).ty;
                    if vt != Type::Ptr(crate::types::AddrSpace::Cpu) {
                        return Err(err(
                            Some(b),
                            format!("cpu_to_gpu {id} applied to {vt}, expected ptr(cpu)"),
                        ));
                    }
                }
                Op::GpuToCpu(v) => {
                    let vt = f.inst(*v).ty;
                    if vt != Type::Ptr(crate::types::AddrSpace::Gpu) {
                        return Err(err(
                            Some(b),
                            format!("gpu_to_cpu {id} applied to {vt}, expected ptr(gpu)"),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Verify every function in a module, plus module-level invariants
/// (vtable slots refer to existing functions; class layouts exist).
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for c in &m.classes {
        for f in &c.vtable {
            if f.0 as usize >= m.functions.len() {
                return Err(VerifyError {
                    function: format!("<class {}>", c.name),
                    block: None,
                    message: format!("vtable slot refers to missing function {f}"),
                });
            }
        }
        if c.layout.0 as usize >= m.structs.len() {
            return Err(VerifyError {
                function: format!("<class {}>", c.name),
                block: None,
                message: "class layout refers to missing struct".into(),
            });
        }
    }
    for f in &m.functions {
        verify_function(f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{ICmp, ValueId};
    use crate::types::{AddrSpace, Type};

    #[test]
    fn well_formed_function_passes() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let p = b.param(0);
        b.ret(Some(p));
        assert!(verify_function(&b.build()).is_ok());
    }

    #[test]
    fn missing_terminator_fails() {
        let b = FunctionBuilder::new("f", vec![Type::I32], Type::Void);
        let e = verify_function(&b.build()).unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    #[test]
    fn empty_block_fails() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.new_block();
        b.ret(None);
        let e = verify_function(&b.build()).unwrap_err();
        assert!(e.message.contains("empty block"));
    }

    #[test]
    fn phi_must_cover_predecessors() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let p = b.param(0);
        let z = b.i32(0);
        let c = b.icmp(ICmp::Sgt, p, z);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        let one = b.i32(1);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        // Phi only covers one of two predecessors.
        let x = b.phi(Type::I32, vec![(t, one)]);
        b.ret(Some(x));
        let err = verify_function(&b.build()).unwrap_err();
        assert!(err.message.contains("predecessors"), "{}", err.message);
    }

    #[test]
    fn load_from_non_pointer_fails() {
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let p = b.param(0);
        let v = b.load(p, Type::I32);
        b.ret(Some(v));
        let e = verify_function(&b.build()).unwrap_err();
        assert!(e.message.contains("non-pointer"));
    }

    #[test]
    fn cpu_to_gpu_requires_cpu_pointer() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr(AddrSpace::Gpu)], Type::Void);
        let p = b.param(0);
        let _ = b.cpu_to_gpu(p);
        b.ret(None);
        let e = verify_function(&b.build()).unwrap_err();
        assert!(e.message.contains("cpu_to_gpu"));
    }

    #[test]
    fn branch_to_missing_block_fails() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.br(crate::inst::BlockId(7));
        let e = verify_function(&b.build()).unwrap_err();
        assert!(e.message.contains("missing block"));
    }

    #[test]
    fn operand_out_of_range_fails() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.emit(crate::inst::Op::Ret(Some(ValueId(99))), Type::Void);
        let e = verify_function(&b.build()).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn module_vtable_bounds_checked() {
        let mut m = Module::new();
        let layout = m.add_struct(crate::types::StructDef {
            name: "S".into(),
            fields: vec![],
            size: 8,
            align: 8,
            class_id: None,
        });
        m.add_class(crate::function::ClassInfo {
            name: "C".into(),
            layout,
            bases: vec![],
            vtable: vec![crate::inst::FuncId(3)],
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("missing function"));
    }
}
