//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] wraps a [`Function`] with an insertion point, so
//! frontends and tests can emit straight-line code and control flow without
//! manual arena bookkeeping.

use crate::function::Function;
use crate::inst::{BinOp, BlockId, CastOp, FCmp, FuncId, ICmp, Intrinsic, Op, ValueId};
use crate::types::{AddrSpace, ClassId, Type};

/// Builder positioned at the end of one block of a function under
/// construction.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cursor: BlockId,
}

impl FunctionBuilder {
    /// Start building a function; the cursor is at the entry block, after
    /// the parameter instructions.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Self {
        let func = Function::new(name, params, ret);
        let cursor = func.entry();
        FunctionBuilder { func, cursor }
    }

    /// Value of the `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> ValueId {
        assert!(i < self.func.params.len(), "parameter index out of range");
        ValueId(i as u32)
    }

    /// Create a new, empty block (does not move the cursor).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Default::default());
        id
    }

    /// Move the cursor to the end of `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cursor = b;
    }

    /// The block the cursor is in.
    pub fn current_block(&self) -> BlockId {
        self.cursor
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func.terminator(self.cursor).is_some()
    }

    /// Append a raw op with a result type at the cursor.
    pub fn emit(&mut self, op: Op, ty: Type) -> ValueId {
        debug_assert!(
            self.func.terminator(self.cursor).is_none(),
            "emitting into a terminated block"
        );
        let id = self.func.push_inst(op, ty);
        self.func.block_mut(self.cursor).insts.push(id);
        id
    }

    /// Integer constant of the given type.
    pub fn const_int(&mut self, v: i64, ty: Type) -> ValueId {
        self.emit(Op::ConstInt(v), ty)
    }

    /// `i32` constant.
    pub fn i32(&mut self, v: i32) -> ValueId {
        self.const_int(v as i64, Type::I32)
    }

    /// `i64` constant.
    pub fn i64(&mut self, v: i64) -> ValueId {
        self.const_int(v, Type::I64)
    }

    /// `f32` constant.
    pub fn f32(&mut self, v: f32) -> ValueId {
        self.emit(Op::ConstFloat(v as f64), Type::F32)
    }

    /// `f64` constant.
    pub fn f64(&mut self, v: f64) -> ValueId {
        self.emit(Op::ConstFloat(v), Type::F64)
    }

    /// Null pointer in address space `sp`.
    pub fn null(&mut self, sp: AddrSpace) -> ValueId {
        self.emit(Op::ConstNull, Type::Ptr(sp))
    }

    /// Two-operand arithmetic; result has the type of `lhs`.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.func.inst(lhs).ty;
        self.emit(Op::Bin(op, lhs, rhs), ty)
    }

    /// Integer comparison producing `i1`.
    pub fn icmp(&mut self, pred: ICmp, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(Op::Icmp(pred, lhs, rhs), Type::I1)
    }

    /// Float comparison producing `i1`.
    pub fn fcmp(&mut self, pred: FCmp, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(Op::Fcmp(pred, lhs, rhs), Type::I1)
    }

    /// Conversion to `to`.
    pub fn cast(&mut self, op: CastOp, v: ValueId, to: Type) -> ValueId {
        self.emit(Op::Cast(op, v), to)
    }

    /// `cond ? a : b`.
    pub fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.func.inst(a).ty;
        self.emit(Op::Select(cond, a, b), ty)
    }

    /// Reserve private memory.
    pub fn alloca(&mut self, size: u64, align: u64) -> ValueId {
        self.emit(Op::Alloca { size, align }, Type::Ptr(AddrSpace::Private))
    }

    /// Load a value of type `ty` from `ptr`.
    pub fn load(&mut self, ptr: ValueId, ty: Type) -> ValueId {
        self.emit(Op::Load(ptr), ty)
    }

    /// Store `val` through `ptr`.
    pub fn store(&mut self, ptr: ValueId, val: ValueId) {
        self.emit(Op::Store { ptr, val }, Type::Void);
    }

    /// Pointer plus dynamic byte offset.
    pub fn gep(&mut self, base: ValueId, offset: ValueId) -> ValueId {
        let ty = self.func.inst(base).ty;
        self.emit(Op::Gep { base, offset }, ty)
    }

    /// Pointer plus constant byte offset (emits the constant).
    pub fn gep_const(&mut self, base: ValueId, offset: u64) -> ValueId {
        let off = self.i64(offset as i64);
        self.gep(base, off)
    }

    /// Translate CPU-space pointer to GPU space.
    pub fn cpu_to_gpu(&mut self, v: ValueId) -> ValueId {
        self.emit(Op::CpuToGpu(v), Type::Ptr(AddrSpace::Gpu))
    }

    /// Translate GPU-space pointer to CPU space.
    pub fn gpu_to_cpu(&mut self, v: ValueId) -> ValueId {
        self.emit(Op::GpuToCpu(v), Type::Ptr(AddrSpace::Cpu))
    }

    /// SSA phi with the given incoming edges; all values must share `ty`.
    pub fn phi(&mut self, ty: Type, incoming: Vec<(BlockId, ValueId)>) -> ValueId {
        self.emit(Op::Phi(incoming), ty)
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId, args: Vec<ValueId>, ret: Type) -> ValueId {
        self.emit(Op::Call { callee, args }, ret)
    }

    /// Virtual call through slot `slot` of the receiver's vtable.
    pub fn call_virtual(
        &mut self,
        static_class: ClassId,
        slot: u32,
        obj: ValueId,
        args: Vec<ValueId>,
        ret: Type,
    ) -> ValueId {
        self.emit(Op::CallVirtual { static_class, slot, obj, args }, ret)
    }

    /// Intrinsic call.
    pub fn intrinsic(&mut self, i: Intrinsic, args: Vec<ValueId>, ret: Type) -> ValueId {
        self.emit(Op::IntrinsicCall(i, args), ret)
    }

    /// Unconditional branch terminator.
    pub fn br(&mut self, target: BlockId) {
        self.emit(Op::Br(target), Type::Void);
    }

    /// Conditional branch terminator.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.emit(Op::CondBr(cond, then_bb, else_bb), Type::Void);
    }

    /// Return terminator.
    pub fn ret(&mut self, v: Option<ValueId>) {
        self.emit(Op::Ret(v), Type::Void);
    }

    /// Finish and take the function.
    pub fn build(self) -> Function {
        self.func
    }

    /// Read access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("add1", vec![Type::I32], Type::I32);
        let p = b.param(0);
        let one = b.i32(1);
        let sum = b.bin(BinOp::Add, p, one);
        b.ret(Some(sum));
        let f = b.build();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 4); // param, const, add, ret
        assert!(f.terminator(BlockId(0)).is_some());
    }

    #[test]
    fn diamond_with_phi() {
        // if (p != 0) x = 1 else x = 2; return x
        let mut b = FunctionBuilder::new("f", vec![Type::I32], Type::I32);
        let p = b.param(0);
        let zero = b.i32(0);
        let cond = b.icmp(ICmp::Ne, p, zero);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        b.cond_br(cond, then_bb, else_bb);
        b.switch_to(then_bb);
        let one = b.i32(1);
        b.br(join);
        b.switch_to(else_bb);
        let two = b.i32(2);
        b.br(join);
        b.switch_to(join);
        let x = b.phi(Type::I32, vec![(then_bb, one), (else_bb, two)]);
        b.ret(Some(x));
        let f = b.build();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.successors(BlockId(0)), vec![then_bb, else_bb]);
        let preds = f.predecessors();
        assert_eq!(preds[&join].len(), 2);
    }

    #[test]
    fn gep_preserves_address_space() {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr(AddrSpace::Gpu)], Type::Void);
        let p = b.param(0);
        let q = b.gep_const(p, 16);
        assert_eq!(b.func().inst(q).ty, Type::Ptr(AddrSpace::Gpu));
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn param_bounds() {
        let b = FunctionBuilder::new("f", vec![], Type::Void);
        let _ = b.param(0);
    }
}
