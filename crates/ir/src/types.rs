//! Type system for the Concord IR.
//!
//! The IR is typed but uses *opaque* pointers qualified by an address space,
//! mirroring the paper's distinction between CPU virtual addresses, GPU
//! virtual addresses (surface-relative), per-thread private memory, and
//! on-chip local memory. Loads and stores carry the accessed value type.

use std::fmt;

/// Address space of a pointer value.
///
/// The software-SVM design of the paper (§3.1) hinges on the fact that the
/// CPU and GPU have *different* virtual address representations for the same
/// physical shared memory. A pointer stored in memory is always in [`Cpu`]
/// representation (the SVM invariant); GPU code must translate it with
/// `CpuToGpu` before dereferencing.
///
/// [`Cpu`]: AddrSpace::Cpu
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AddrSpace {
    /// CPU virtual address into the shared region.
    Cpu,
    /// GPU virtual address (binding-table surface offset form).
    Gpu,
    /// Per-work-item private memory (stack-allocated objects).
    Private,
    /// Work-group local memory (used for hierarchical reductions).
    Local,
}

impl fmt::Display for AddrSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddrSpace::Cpu => "cpu",
            AddrSpace::Gpu => "gpu",
            AddrSpace::Private => "private",
            AddrSpace::Local => "local",
        };
        f.write_str(s)
    }
}

/// A first-class IR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (function return only).
    Void,
    /// Boolean (comparison results).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Opaque pointer in the given address space.
    Ptr(AddrSpace),
}

impl Type {
    /// Size of a value of this type in bytes when stored in memory.
    ///
    /// Pointers are stored as 8 bytes regardless of address space (the paper
    /// notes the scheme generalizes to mixed widths as long as the shared
    /// region fits; we use a uniform 64-bit representation).
    ///
    /// # Panics
    ///
    /// Panics for [`Type::Void`], which has no storage size.
    pub fn size(self) -> u64 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr(_) => 8,
        }
    }

    /// Natural alignment in bytes.
    pub fn align(self) -> u64 {
        self.size()
    }

    /// Whether this is any integer type (including `i1`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Whether this is a pointer type in any address space.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// The address space if this is a pointer type.
    pub fn addr_space(self) -> Option<AddrSpace> {
        match self {
            Type::Ptr(sp) => Some(sp),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::I1 => f.write_str("i1"),
            Type::I8 => f.write_str("i8"),
            Type::I16 => f.write_str("i16"),
            Type::I32 => f.write_str("i32"),
            Type::I64 => f.write_str("i64"),
            Type::F32 => f.write_str("f32"),
            Type::F64 => f.write_str("f64"),
            Type::Ptr(sp) => write!(f, "ptr({sp})"),
        }
    }
}

/// A field of a [`StructDef`]: name, type, and byte offset within the struct.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Source-level field name.
    pub name: String,
    /// Field value type. Inline arrays are modeled by `count > 1`.
    pub ty: Type,
    /// Number of consecutive elements (1 for scalars).
    pub count: u64,
    /// Byte offset from the start of the struct.
    pub offset: u64,
}

/// Memory layout of a source-level struct or class.
///
/// Classes with virtual methods have an implicit vtable-pointer field at
/// offset 0, added by the frontend. Multiple inheritance is modeled by
/// flattening base-class fields at their base offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Source-level type name.
    pub name: String,
    /// All fields in offset order (including flattened base-class fields).
    pub fields: Vec<Field>,
    /// Total size in bytes (including padding).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Class id in the module's class hierarchy, if this is a polymorphic
    /// class (has or inherits virtual methods).
    pub class_id: Option<ClassId>,
}

impl StructDef {
    /// Look up a field by name, returning it with its byte offset.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Index of a struct layout in a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// Index of a polymorphic class in a module's class hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%struct.{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class.{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        assert_eq!(Type::I1.size(), 1);
        assert_eq!(Type::I8.size(), 1);
        assert_eq!(Type::I16.size(), 2);
        assert_eq!(Type::I32.size(), 4);
        assert_eq!(Type::I64.size(), 8);
        assert_eq!(Type::F32.size(), 4);
        assert_eq!(Type::F64.size(), 8);
        assert_eq!(Type::Ptr(AddrSpace::Cpu).size(), 8);
        assert_eq!(Type::Ptr(AddrSpace::Gpu).align(), 8);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        let _ = Type::Void.size();
    }

    #[test]
    fn classification() {
        assert!(Type::I32.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F64.is_float());
        assert!(Type::Ptr(AddrSpace::Gpu).is_ptr());
        assert_eq!(Type::Ptr(AddrSpace::Private).addr_space(), Some(AddrSpace::Private));
        assert_eq!(Type::I32.addr_space(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Ptr(AddrSpace::Cpu).to_string(), "ptr(cpu)");
        assert_eq!(Type::F32.to_string(), "f32");
        assert_eq!(AddrSpace::Local.to_string(), "local");
    }

    #[test]
    fn struct_field_lookup() {
        let def = StructDef {
            name: "Node".into(),
            fields: vec![
                Field { name: "next".into(), ty: Type::Ptr(AddrSpace::Cpu), count: 1, offset: 0 },
                Field { name: "val".into(), ty: Type::F32, count: 1, offset: 8 },
            ],
            size: 16,
            align: 8,
            class_id: None,
        };
        assert_eq!(def.field("val").unwrap().offset, 8);
        assert!(def.field("missing").is_none());
    }
}
