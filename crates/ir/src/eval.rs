//! Scalar evaluation semantics shared by the CPU and GPU simulators.
//!
//! Both simulators interpret the same IR; only memory, scheduling, and
//! timing differ. This module defines the runtime [`Value`] representation
//! and pure instruction semantics (arithmetic, comparisons, casts).

use crate::inst::{BinOp, CastOp, FCmp, ICmp};
use crate::types::{AddrSpace, Type};
use std::fmt;

/// A dynamic value produced during interpretation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (all widths; stored sign-extended to 64 bits).
    I(i64),
    /// Floating point (f32 values are kept rounded to f32 precision).
    F(f64),
    /// Pointer with its address space tag.
    Ptr(u64, AddrSpace),
}

impl Value {
    /// Interpret as integer.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer (a type-confusion bug).
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            other => panic!("expected integer value, got {other:?}"),
        }
    }

    /// Interpret as float.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a float.
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            other => panic!("expected float value, got {other:?}"),
        }
    }

    /// Interpret as a pointer, returning `(address, space)`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a pointer.
    pub fn as_ptr(self) -> (u64, AddrSpace) {
        match self {
            Value::Ptr(a, sp) => (a, sp),
            other => panic!("expected pointer value, got {other:?}"),
        }
    }

    /// Truthiness for `i1` conditions.
    pub fn as_bool(self) -> bool {
        self.as_i() != 0
    }

    /// Zero value of a type.
    pub fn zero(ty: Type) -> Value {
        match ty {
            Type::F32 | Type::F64 => Value::F(0.0),
            Type::Ptr(sp) => Value::Ptr(0, sp),
            _ => Value::I(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => write!(f, "{v}"),
            Value::Ptr(a, sp) => write!(f, "{sp}:{a:#x}"),
        }
    }
}

/// A runtime fault during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Memory access outside the mapped region, or through a null pointer.
    BadAddress {
        /// The faulting address.
        addr: u64,
        /// The address space of the faulting pointer.
        space: AddrSpace,
    },
    /// The GPU dereferenced a pointer it cannot resolve: a CPU-space pointer
    /// that was never translated. This is the fault the SVM lowering pass
    /// exists to prevent (§3.1).
    WrongAddressSpace {
        /// Space the pointer was in.
        found: AddrSpace,
        /// Space the executing device expected.
        expected: AddrSpace,
    },
    /// `unreachable` executed.
    Unreachable,
    /// A virtual call could not be dispatched (vtable pointer did not match
    /// any known class), or the GPU hit an un-devirtualized indirect call.
    BadVirtualDispatch {
        /// The vtable address read from the object.
        vptr: u64,
    },
    /// Call stack exceeded the configured limit (the paper forbids
    /// non-tail recursion on the device; this enforces it dynamically too).
    StackOverflow,
    /// An intrinsic was called with malformed arguments.
    BadIntrinsic(&'static str),
    /// The interpreter's step budget was exhausted (runaway loop guard).
    StepLimitExceeded {
        /// Name of the kernel (entry function) that was executing.
        kernel: String,
        /// Global work-item id that exhausted its budget (-1 when the trap
        /// occurred outside any work-item context, e.g. a plain call).
        global_id: i64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivideByZero => f.write_str("integer division by zero"),
            Trap::BadAddress { addr, space } => {
                write!(f, "bad {space} address {addr:#x}")
            }
            Trap::WrongAddressSpace { found, expected } => write!(
                f,
                "dereferenced a {found}-space pointer where {expected} space was required \
                 (missing SVM pointer translation)"
            ),
            Trap::Unreachable => f.write_str("unreachable executed"),
            Trap::BadVirtualDispatch { vptr } => {
                write!(f, "virtual dispatch failed for vtable pointer {vptr:#x}")
            }
            Trap::StackOverflow => f.write_str("call stack limit exceeded"),
            Trap::BadIntrinsic(name) => write!(f, "malformed intrinsic call: {name}"),
            Trap::StepLimitExceeded { kernel, global_id } => write!(
                f,
                "interpreter step budget exhausted in kernel `{kernel}` (global work-item {global_id})"
            ),
        }
    }
}

impl Trap {
    /// Re-tag a step-limit trap with the launch kernel's name. The raise
    /// site only knows the function executing when the budget ran out
    /// (possibly a helper); the launch boundary knows the kernel entry.
    /// Other trap kinds pass through unchanged.
    #[must_use]
    pub fn with_kernel(self, kernel: &str) -> Trap {
        match self {
            Trap::StepLimitExceeded { global_id, .. } => {
                Trap::StepLimitExceeded { kernel: kernel.to_string(), global_id }
            }
            other => other,
        }
    }
}

impl std::error::Error for Trap {}

fn wrap_int(v: i64, ty: Type) -> i64 {
    match ty {
        Type::I1 => v & 1,
        Type::I8 => v as i8 as i64,
        Type::I16 => v as i16 as i64,
        Type::I32 => v as i32 as i64,
        _ => v,
    }
}

fn round_float(v: f64, ty: Type) -> f64 {
    if ty == Type::F32 {
        v as f32 as f64
    } else {
        v
    }
}

/// Evaluate a binary operation. `ty` is the result type (controls integer
/// wrapping width and float precision).
///
/// # Errors
///
/// Returns [`Trap::DivideByZero`] for zero divisors in integer
/// division/remainder.
pub fn eval_bin(op: BinOp, lhs: Value, rhs: Value, ty: Type) -> Result<Value, Trap> {
    if op.is_float() {
        let (a, b) = (lhs.as_f(), rhs.as_f());
        let r = match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            _ => unreachable!(),
        };
        return Ok(Value::F(round_float(r, ty)));
    }
    // Pointer arithmetic: Gep is the normal path, but allow add/sub on a
    // pointer and an integer, preserving the space (used by lowered code).
    if let (Value::Ptr(a, sp), Value::I(b)) = (lhs, rhs) {
        let r = match op {
            BinOp::Add => a.wrapping_add(b as u64),
            BinOp::Sub => a.wrapping_sub(b as u64),
            _ => panic!("unsupported pointer arithmetic {op:?}"),
        };
        return Ok(Value::Ptr(r, sp));
    }
    let (a, b) = (lhs.as_i(), rhs.as_i());
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::UDiv => {
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::SRem => {
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::URem => {
            if b == 0 {
                return Err(Trap::DivideByZero);
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::LShr => {
            let width = (ty.size() * 8) as u32;
            let ua = (a as u64) & (u64::MAX >> (64 - width));
            (ua.wrapping_shr(b as u32)) as i64
        }
        BinOp::AShr => wrap_int(a, ty).wrapping_shr(b as u32),
        _ => unreachable!(),
    };
    Ok(Value::I(wrap_int(r, ty)))
}

/// Evaluate an integer comparison (also works for pointers of the same
/// space, comparing addresses).
pub fn eval_icmp(pred: ICmp, lhs: Value, rhs: Value) -> Value {
    let (a, b) = match (lhs, rhs) {
        (Value::Ptr(a, _), Value::Ptr(b, _)) => (a as i64, b as i64),
        (Value::Ptr(a, _), Value::I(b)) => (a as i64, b),
        (Value::I(a), Value::Ptr(b, _)) => (a, b as i64),
        _ => (lhs.as_i(), rhs.as_i()),
    };
    let r = match pred {
        ICmp::Eq => a == b,
        ICmp::Ne => a != b,
        ICmp::Slt => a < b,
        ICmp::Sle => a <= b,
        ICmp::Sgt => a > b,
        ICmp::Sge => a >= b,
        ICmp::Ult => (a as u64) < (b as u64),
        ICmp::Ule => (a as u64) <= (b as u64),
        ICmp::Ugt => (a as u64) > (b as u64),
        ICmp::Uge => (a as u64) >= (b as u64),
    };
    Value::I(r as i64)
}

/// Evaluate a floating comparison with ordered semantics.
pub fn eval_fcmp(pred: FCmp, lhs: Value, rhs: Value) -> Value {
    let (a, b) = (lhs.as_f(), rhs.as_f());
    let r = match pred {
        FCmp::Oeq => a == b,
        FCmp::One => a != b && !a.is_nan() && !b.is_nan(),
        FCmp::Olt => a < b,
        FCmp::Ole => a <= b,
        FCmp::Ogt => a > b,
        FCmp::Oge => a >= b,
    };
    Value::I(r as i64)
}

/// Evaluate a cast from a value of type `from` to type `to`.
pub fn eval_cast(op: CastOp, v: Value, from: Type, to: Type) -> Value {
    match op {
        CastOp::Zext => {
            // Values are stored sign-extended, so mask to the *source* width
            // first to get the unsigned reading, then wrap to the target.
            let raw = v.as_i();
            let width = (from.size() * 8) as u32;
            let masked = if width >= 64 { raw } else { raw & ((1i64 << width) - 1) };
            Value::I(wrap_int(masked, to))
        }
        CastOp::Sext => Value::I(wrap_int(v.as_i(), to)),
        CastOp::Trunc => Value::I(wrap_int(v.as_i(), to)),
        CastOp::FpToSi => {
            let f = v.as_f();
            let clamped = if f.is_nan() { 0.0 } else { f };
            Value::I(wrap_int(clamped as i64, to))
        }
        CastOp::SiToFp => Value::F(round_float(v.as_i() as f64, to)),
        CastOp::FpCast => Value::F(round_float(v.as_f(), to)),
        CastOp::PtrToInt => {
            let (a, _) = v.as_ptr();
            Value::I(wrap_int(a as i64, to))
        }
        CastOp::IntToPtr => {
            let sp = to.addr_space().expect("inttoptr target must be a pointer");
            Value::Ptr(v.as_i() as u64, sp)
        }
        CastOp::PtrCast => {
            let (a, _) = v.as_ptr();
            let sp = to.addr_space().expect("ptrcast target must be a pointer");
            Value::Ptr(a, sp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_wrapping_at_width() {
        let r = eval_bin(BinOp::Add, Value::I(i32::MAX as i64), Value::I(1), Type::I32).unwrap();
        assert_eq!(r, Value::I(i32::MIN as i64));
        let r = eval_bin(BinOp::Mul, Value::I(200), Value::I(2), Type::I8).unwrap();
        assert_eq!(r, Value::I((400i64 as i8) as i64));
    }

    #[test]
    fn division_traps() {
        assert_eq!(
            eval_bin(BinOp::SDiv, Value::I(1), Value::I(0), Type::I32),
            Err(Trap::DivideByZero)
        );
        assert_eq!(
            eval_bin(BinOp::URem, Value::I(1), Value::I(0), Type::I32),
            Err(Trap::DivideByZero)
        );
        assert_eq!(
            eval_bin(BinOp::SDiv, Value::I(7), Value::I(2), Type::I32).unwrap(),
            Value::I(3)
        );
    }

    #[test]
    fn float_f32_rounding() {
        // 0.1 is not representable; f32 arithmetic must round.
        let r = eval_bin(BinOp::FAdd, Value::F(0.1), Value::F(0.2), Type::F32).unwrap();
        assert_eq!(r.as_f(), (0.1f32 + 0.2f32) as f64);
        let r64 = eval_bin(BinOp::FAdd, Value::F(0.1), Value::F(0.2), Type::F64).unwrap();
        assert_eq!(r64.as_f(), 0.1 + 0.2);
    }

    #[test]
    fn pointer_plus_int() {
        let p = Value::Ptr(0x1000, AddrSpace::Gpu);
        let r = eval_bin(BinOp::Add, p, Value::I(16), Type::Ptr(AddrSpace::Gpu)).unwrap();
        assert_eq!(r, Value::Ptr(0x1010, AddrSpace::Gpu));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_icmp(ICmp::Slt, Value::I(-1), Value::I(0)), Value::I(1));
        assert_eq!(eval_icmp(ICmp::Ult, Value::I(-1), Value::I(0)), Value::I(0));
        assert_eq!(
            eval_icmp(ICmp::Eq, Value::Ptr(4, AddrSpace::Cpu), Value::Ptr(4, AddrSpace::Cpu)),
            Value::I(1)
        );
        // Null check: pointer vs integer 0.
        assert_eq!(eval_icmp(ICmp::Ne, Value::Ptr(0, AddrSpace::Cpu), Value::I(0)), Value::I(0));
        assert_eq!(eval_fcmp(FCmp::Olt, Value::F(1.0), Value::F(2.0)), Value::I(1));
        assert_eq!(eval_fcmp(FCmp::Oeq, Value::F(f64::NAN), Value::F(f64::NAN)), Value::I(0));
        assert_eq!(eval_fcmp(FCmp::One, Value::F(f64::NAN), Value::F(1.0)), Value::I(0));
    }

    #[test]
    fn casts() {
        assert_eq!(
            eval_cast(CastOp::Trunc, Value::I(0x1_0000_0001), Type::I64, Type::I32),
            Value::I(1)
        );
        assert_eq!(eval_cast(CastOp::SiToFp, Value::I(3), Type::I32, Type::F32), Value::F(3.0));
        assert_eq!(eval_cast(CastOp::FpToSi, Value::F(3.9), Type::F32, Type::I32), Value::I(3));
        assert_eq!(eval_cast(CastOp::FpToSi, Value::F(-3.9), Type::F32, Type::I32), Value::I(-3));
        assert_eq!(
            eval_cast(CastOp::FpToSi, Value::F(f64::NAN), Type::F64, Type::I32),
            Value::I(0)
        );
        assert_eq!(
            eval_cast(
                CastOp::PtrToInt,
                Value::Ptr(0x42, AddrSpace::Cpu),
                Type::Ptr(AddrSpace::Cpu),
                Type::I64
            ),
            Value::I(0x42)
        );
        assert_eq!(
            eval_cast(CastOp::IntToPtr, Value::I(0x42), Type::I64, Type::Ptr(AddrSpace::Gpu)),
            Value::Ptr(0x42, AddrSpace::Gpu)
        );
    }

    #[test]
    fn zext_masks_source_width() {
        // -1 as i32 (stored sign-extended) zero-extends to 0xFFFF_FFFF.
        assert_eq!(
            eval_cast(CastOp::Zext, Value::I(-1), Type::I32, Type::I64),
            Value::I(0xFFFF_FFFF)
        );
        assert_eq!(eval_cast(CastOp::Zext, Value::I(-1), Type::I8, Type::I32), Value::I(255));
        assert_eq!(eval_cast(CastOp::Zext, Value::I(1), Type::I1, Type::I32), Value::I(1));
    }

    #[test]
    fn shifts_respect_width() {
        // lshr on i32 must not bring in high garbage from the i64 storage.
        let r = eval_bin(BinOp::LShr, Value::I(-1), Value::I(1), Type::I32).unwrap();
        assert_eq!(r, Value::I(wrap_int(0x7fff_ffff, Type::I32)));
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn type_confusion_panics() {
        let _ = Value::F(1.0).as_i();
    }
}
