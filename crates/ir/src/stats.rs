//! Static IR statistics: the irregularity measurement behind Figure 6.
//!
//! The paper classifies IR operations as control-flow, memory, or other, and
//! reports the percentage of control + memory operations as a static proxy
//! for irregularity (§5.1, Figure 6).

use crate::function::{Function, Module};
use crate::inst::{FuncId, Op};
use std::collections::HashSet;

/// Static operation counts for one function or kernel closure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Control-flow operations (branches, calls, phis, returns).
    pub control: usize,
    /// Memory operations (loads, stores, allocas, atomics).
    pub memory: usize,
    /// Everything else (arithmetic, casts, constants...).
    pub other: usize,
}

impl OpStats {
    /// Total number of classified operations.
    pub fn total(&self) -> usize {
        self.control + self.memory + self.other
    }

    /// Percentage of control-flow operations (0–100).
    pub fn control_pct(&self) -> f64 {
        percent(self.control, self.total())
    }

    /// Percentage of memory operations (0–100).
    pub fn memory_pct(&self) -> f64 {
        percent(self.memory, self.total())
    }

    /// Combined irregularity indicator: control + memory percentage.
    pub fn irregularity_pct(&self) -> f64 {
        self.control_pct() + self.memory_pct()
    }
}

fn percent(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * n as f64 / total as f64
    }
}

impl std::ops::Add for OpStats {
    type Output = OpStats;
    fn add(self, rhs: OpStats) -> OpStats {
        OpStats {
            control: self.control + rhs.control,
            memory: self.memory + rhs.memory,
            other: self.other + rhs.other,
        }
    }
}

fn classify(op: &Op, stats: &mut OpStats) {
    // Constants and parameters are not "operations" in the paper's sense;
    // they do not lower to executed instructions.
    if matches!(op, Op::ConstInt(_) | Op::ConstFloat(_) | Op::ConstNull | Op::Param(_)) {
        return;
    }
    if op.is_memory() {
        stats.memory += 1;
    } else if op.is_control() {
        stats.control += 1;
    } else {
        stats.other += 1;
    }
}

/// Statistics for a single function.
pub fn function_stats(f: &Function) -> OpStats {
    let mut s = OpStats::default();
    for b in f.block_ids() {
        for &i in &f.block(b).insts {
            classify(&f.inst(i).op, &mut s);
        }
    }
    s
}

/// Statistics over a kernel and everything it can transitively call,
/// including all possible virtual-call targets (class-hierarchy analysis).
pub fn kernel_closure_stats(m: &Module, entry: FuncId) -> OpStats {
    let mut visited: HashSet<FuncId> = HashSet::new();
    let mut work = vec![entry];
    let mut total = OpStats::default();
    while let Some(fid) = work.pop() {
        if !visited.insert(fid) {
            continue;
        }
        let f = m.function(fid);
        total = total + function_stats(f);
        for b in f.block_ids() {
            for &i in &f.block(b).insts {
                match &f.inst(i).op {
                    Op::Call { callee, .. } => work.push(*callee),
                    Op::CallVirtual { static_class, slot, .. } => {
                        for c in m.subclasses_of(*static_class) {
                            let vt = &m.class(c).vtable;
                            if let Some(&target) = vt.get(*slot as usize) {
                                work.push(target);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, ICmp};
    use crate::types::{AddrSpace, Type};

    #[test]
    fn classification_counts() {
        let mut b =
            FunctionBuilder::new("f", vec![Type::Ptr(AddrSpace::Cpu), Type::I32], Type::Void);
        let p = b.param(0);
        let n = b.param(1);
        let v = b.load(p, Type::I32); // memory
        let s = b.bin(BinOp::Add, v, n); // other
        b.store(p, s); // memory
        let z = b.i32(0); // not counted
        let c = b.icmp(ICmp::Sgt, s, z); // other
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c, t, e); // control
        b.switch_to(t);
        b.ret(None); // control
        b.switch_to(e);
        b.ret(None); // control
        let st = function_stats(&b.build());
        assert_eq!(st.memory, 2);
        assert_eq!(st.control, 3);
        assert_eq!(st.other, 2);
        assert_eq!(st.total(), 7);
        assert!((st.memory_pct() - 2.0 / 7.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OpStats::default();
        assert_eq!(s.total(), 0);
        assert_eq!(s.irregularity_pct(), 0.0);
    }

    #[test]
    fn closure_follows_direct_calls() {
        let mut m = Module::new();
        let mut callee = FunctionBuilder::new("callee", vec![Type::I32], Type::I32);
        let p = callee.param(0);
        let one = callee.i32(1);
        let s = callee.bin(BinOp::Add, p, one);
        callee.ret(Some(s));
        let callee_id = m.add_function(callee.build());
        let mut caller = FunctionBuilder::new("caller", vec![Type::I32], Type::I32);
        let p = caller.param(0);
        let r = caller.call(callee_id, vec![p], Type::I32);
        caller.ret(Some(r));
        let caller_id = m.add_function(caller.build());
        let st = kernel_closure_stats(&m, caller_id);
        // caller: call (control), ret (control); callee: add (other), ret (control)
        assert_eq!(st.control, 3);
        assert_eq!(st.other, 1);
    }
}
