//! Compact binary serialization for IR values.
//!
//! The serving layer spills compiled artifacts to disk so that restarted or
//! sibling processes reuse compiles instead of re-running the frontend and
//! the GPU lowering pipeline. There is no external serialization dependency
//! in this workspace, so artifacts are written with this hand-rolled codec:
//! little-endian fixed-width scalars, `u32` length-prefixed strings and
//! sequences, and one `u8` tag per enum variant.
//!
//! The format is *not* self-describing — readers and writers must agree on
//! the layout — so on-disk consumers (the runtime's artifact store) prefix
//! payloads with a format-version word and refuse mismatches. Decoding is
//! total: any truncated, oversized, or out-of-range input yields a
//! [`DecodeError`] rather than a panic or an unbounded allocation, which is
//! what lets the disk cache treat corrupt entries as evictable instead of
//! fatal.
//!
//! Composite values implement [`Codec`]; container impls (`Vec`, `Option`,
//! tuples) compose so downstream crates (frontend, compiler) can encode
//! their own wrappers with the same primitives.

use crate::function::{Block, ClassInfo, Function, Inst, KernelKind, Module};
use crate::inst::{BinOp, BlockId, CastOp, FCmp, FuncId, ICmp, Intrinsic, Op, ValueId};
use crate::types::{AddrSpace, ClassId, Field, StructDef, StructId, Type};
use std::fmt;

/// FNV-1a 64-bit hash over raw bytes. Used by the on-disk artifact store to
/// checksum entries; kept here so every crate in the persistence path agrees
/// on one implementation.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Decoding failure: what was being read and where the input went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset in the input at which the failure was detected.
    pub offset: usize,
    /// Human-readable description (expected item, bad tag value, …).
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only byte buffer with fixed-layout write helpers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Write an `f64` as its IEEE-754 bit pattern (NaN payloads survive).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write a `u32` length prefix followed by UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with no length prefix (caller frames them).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over encoded bytes with bounds-checked read helpers.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed all input.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Build a [`DecodeError`] at the current offset.
    pub fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError { offset: self.pos, message: message.into() }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "unexpected end of input reading {what} ({n} bytes needed, {} left)",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool; any byte other than 0/1 is an error.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Read a length prefix, bounding it by the bytes actually remaining so
    /// corrupt input can never trigger an oversized allocation.
    // Not a container length: this *consumes* a length prefix from the
    // stream, so the container-style `is_empty` pairing doesn't apply.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(self
                .err(format!("length {n} exceeds remaining input ({} bytes)", self.remaining())));
        }
        Ok(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n, "string body")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("string is not valid UTF-8"))
    }
}

/// Fixed-layout binary encoding. `decode` must accept exactly what `encode`
/// produced and reject everything else with a [`DecodeError`].
pub trait Codec: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);
    /// Read one value from `r`, advancing the cursor past it.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;
}

/// Encode a value into a fresh byte vector.
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decode a value that must consume the entire input.
pub fn decode_exact<T: Codec>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_done() {
        return Err(r.err(format!("{} trailing bytes after value", r.remaining())));
    }
    Ok(v)
}

impl Codec for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.bool(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.bool()
    }
}

impl Codec for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.str(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        r.str()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(r.err(format!("invalid Option tag {t}"))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.u32(self.len() as u32);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let n = r.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

macro_rules! id_codec {
    ($($name:ident),*) => {$(
        impl Codec for $name {
            fn encode(&self, w: &mut ByteWriter) {
                w.u32(self.0);
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
                Ok($name(r.u32()?))
            }
        }
    )*};
}
id_codec!(ValueId, BlockId, FuncId, StructId, ClassId);

/// One tag byte per unit variant, both directions generated from one table
/// so the mappings cannot drift apart.
macro_rules! tag_codec {
    ($ty:ident { $($variant:ident = $tag:literal),* $(,)? }) => {
        impl Codec for $ty {
            fn encode(&self, w: &mut ByteWriter) {
                w.u8(match self { $($ty::$variant => $tag),* });
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
                match r.u8()? {
                    $($tag => Ok($ty::$variant),)*
                    t => Err(r.err(format!(concat!("invalid ", stringify!($ty), " tag {}"), t))),
                }
            }
        }
    };
}

tag_codec!(AddrSpace { Cpu = 0, Gpu = 1, Private = 2, Local = 3 });
tag_codec!(BinOp {
    Add = 0,
    Sub = 1,
    Mul = 2,
    SDiv = 3,
    UDiv = 4,
    SRem = 5,
    URem = 6,
    FAdd = 7,
    FSub = 8,
    FMul = 9,
    FDiv = 10,
    And = 11,
    Or = 12,
    Xor = 13,
    Shl = 14,
    LShr = 15,
    AShr = 16,
});
tag_codec!(ICmp {
    Eq = 0,
    Ne = 1,
    Slt = 2,
    Sle = 3,
    Sgt = 4,
    Sge = 5,
    Ult = 6,
    Ule = 7,
    Ugt = 8,
    Uge = 9,
});
tag_codec!(FCmp { Oeq = 0, One = 1, Olt = 2, Ole = 3, Ogt = 4, Oge = 5 });
tag_codec!(CastOp {
    Zext = 0,
    Sext = 1,
    Trunc = 2,
    FpToSi = 3,
    SiToFp = 4,
    FpCast = 5,
    PtrToInt = 6,
    IntToPtr = 7,
    PtrCast = 8,
});
tag_codec!(Intrinsic {
    GlobalId = 0,
    GlobalSize = 1,
    LocalId = 2,
    GroupId = 3,
    Barrier = 4,
    AtomicAddI32 = 5,
    AtomicMinI32 = 6,
    AtomicCasI32 = 7,
    Sqrt = 8,
    FAbs = 9,
    Floor = 10,
    FMin = 11,
    FMax = 12,
    Exp = 13,
    Pow = 14,
    SMin = 15,
    SMax = 16,
    DeviceMalloc = 17,
    WlPush = 18,
});
tag_codec!(KernelKind { ForBody = 0, ReduceJoin = 1 });

impl Codec for Type {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Type::Void => w.u8(0),
            Type::I1 => w.u8(1),
            Type::I8 => w.u8(2),
            Type::I16 => w.u8(3),
            Type::I32 => w.u8(4),
            Type::I64 => w.u8(5),
            Type::F32 => w.u8(6),
            Type::F64 => w.u8(7),
            Type::Ptr(sp) => {
                w.u8(8);
                sp.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => Type::Void,
            1 => Type::I1,
            2 => Type::I8,
            3 => Type::I16,
            4 => Type::I32,
            5 => Type::I64,
            6 => Type::F32,
            7 => Type::F64,
            8 => Type::Ptr(AddrSpace::decode(r)?),
            t => return Err(r.err(format!("invalid Type tag {t}"))),
        })
    }
}

impl Codec for Op {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Op::Param(i) => {
                w.u8(0);
                w.u32(*i);
            }
            Op::ConstInt(v) => {
                w.u8(1);
                w.i64(*v);
            }
            Op::ConstFloat(v) => {
                w.u8(2);
                w.f64(*v);
            }
            Op::ConstNull => w.u8(3),
            Op::Bin(op, a, b) => {
                w.u8(4);
                op.encode(w);
                a.encode(w);
                b.encode(w);
            }
            Op::Icmp(p, a, b) => {
                w.u8(5);
                p.encode(w);
                a.encode(w);
                b.encode(w);
            }
            Op::Fcmp(p, a, b) => {
                w.u8(6);
                p.encode(w);
                a.encode(w);
                b.encode(w);
            }
            Op::Cast(op, v) => {
                w.u8(7);
                op.encode(w);
                v.encode(w);
            }
            Op::Select(c, a, b) => {
                w.u8(8);
                c.encode(w);
                a.encode(w);
                b.encode(w);
            }
            Op::Alloca { size, align } => {
                w.u8(9);
                w.u64(*size);
                w.u64(*align);
            }
            Op::Load(v) => {
                w.u8(10);
                v.encode(w);
            }
            Op::Store { ptr, val } => {
                w.u8(11);
                ptr.encode(w);
                val.encode(w);
            }
            Op::Gep { base, offset } => {
                w.u8(12);
                base.encode(w);
                offset.encode(w);
            }
            Op::CpuToGpu(v) => {
                w.u8(13);
                v.encode(w);
            }
            Op::GpuToCpu(v) => {
                w.u8(14);
                v.encode(w);
            }
            Op::Phi(incoming) => {
                w.u8(15);
                incoming.encode(w);
            }
            Op::Call { callee, args } => {
                w.u8(16);
                callee.encode(w);
                args.encode(w);
            }
            Op::CallVirtual { static_class, slot, obj, args } => {
                w.u8(17);
                static_class.encode(w);
                w.u32(*slot);
                obj.encode(w);
                args.encode(w);
            }
            Op::IntrinsicCall(i, args) => {
                w.u8(18);
                i.encode(w);
                args.encode(w);
            }
            Op::Br(b) => {
                w.u8(19);
                b.encode(w);
            }
            Op::CondBr(c, t, e) => {
                w.u8(20);
                c.encode(w);
                t.encode(w);
                e.encode(w);
            }
            Op::Ret(v) => {
                w.u8(21);
                v.encode(w);
            }
            Op::Unreachable => w.u8(22),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => Op::Param(r.u32()?),
            1 => Op::ConstInt(r.i64()?),
            2 => Op::ConstFloat(r.f64()?),
            3 => Op::ConstNull,
            4 => Op::Bin(BinOp::decode(r)?, ValueId::decode(r)?, ValueId::decode(r)?),
            5 => Op::Icmp(ICmp::decode(r)?, ValueId::decode(r)?, ValueId::decode(r)?),
            6 => Op::Fcmp(FCmp::decode(r)?, ValueId::decode(r)?, ValueId::decode(r)?),
            7 => Op::Cast(CastOp::decode(r)?, ValueId::decode(r)?),
            8 => Op::Select(ValueId::decode(r)?, ValueId::decode(r)?, ValueId::decode(r)?),
            9 => Op::Alloca { size: r.u64()?, align: r.u64()? },
            10 => Op::Load(ValueId::decode(r)?),
            11 => Op::Store { ptr: ValueId::decode(r)?, val: ValueId::decode(r)? },
            12 => Op::Gep { base: ValueId::decode(r)?, offset: ValueId::decode(r)? },
            13 => Op::CpuToGpu(ValueId::decode(r)?),
            14 => Op::GpuToCpu(ValueId::decode(r)?),
            15 => Op::Phi(Vec::decode(r)?),
            16 => Op::Call { callee: FuncId::decode(r)?, args: Vec::decode(r)? },
            17 => Op::CallVirtual {
                static_class: ClassId::decode(r)?,
                slot: r.u32()?,
                obj: ValueId::decode(r)?,
                args: Vec::decode(r)?,
            },
            18 => Op::IntrinsicCall(Intrinsic::decode(r)?, Vec::decode(r)?),
            19 => Op::Br(BlockId::decode(r)?),
            20 => Op::CondBr(ValueId::decode(r)?, BlockId::decode(r)?, BlockId::decode(r)?),
            21 => Op::Ret(Option::decode(r)?),
            22 => Op::Unreachable,
            t => return Err(r.err(format!("invalid Op tag {t}"))),
        })
    }
}

impl Codec for Inst {
    fn encode(&self, w: &mut ByteWriter) {
        self.op.encode(w);
        self.ty.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Inst { op: Op::decode(r)?, ty: Type::decode(r)? })
    }
}

impl Codec for Block {
    fn encode(&self, w: &mut ByteWriter) {
        self.insts.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Block { insts: Vec::decode(r)? })
    }
}

impl Codec for Function {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.params.encode(w);
        self.ret.encode(w);
        self.insts.encode(w);
        self.blocks.encode(w);
        self.kernel.encode(w);
        self.owner_class.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Function {
            name: String::decode(r)?,
            params: Vec::decode(r)?,
            ret: Type::decode(r)?,
            insts: Vec::decode(r)?,
            blocks: Vec::decode(r)?,
            kernel: Option::decode(r)?,
            owner_class: Option::decode(r)?,
        })
    }
}

impl Codec for Field {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.ty.encode(w);
        w.u64(self.count);
        w.u64(self.offset);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Field {
            name: String::decode(r)?,
            ty: Type::decode(r)?,
            count: r.u64()?,
            offset: r.u64()?,
        })
    }
}

impl Codec for StructDef {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.fields.encode(w);
        w.u64(self.size);
        w.u64(self.align);
        self.class_id.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(StructDef {
            name: String::decode(r)?,
            fields: Vec::decode(r)?,
            size: r.u64()?,
            align: r.u64()?,
            class_id: Option::decode(r)?,
        })
    }
}

impl Codec for ClassInfo {
    fn encode(&self, w: &mut ByteWriter) {
        self.name.encode(w);
        self.layout.encode(w);
        self.bases.encode(w);
        self.vtable.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(ClassInfo {
            name: String::decode(r)?,
            layout: StructId::decode(r)?,
            bases: Vec::decode(r)?,
            vtable: Vec::decode(r)?,
        })
    }
}

impl Codec for Module {
    fn encode(&self, w: &mut ByteWriter) {
        self.structs.encode(w);
        self.classes.encode(w);
        self.functions.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Module {
            structs: Vec::decode(r)?,
            classes: Vec::decode(r)?,
            functions: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn sample_module() -> Module {
        let mut m = Module::new();
        let layout = m.add_struct(StructDef {
            name: "Node".into(),
            fields: vec![
                Field { name: "next".into(), ty: Type::Ptr(AddrSpace::Cpu), count: 1, offset: 0 },
                Field { name: "vals".into(), ty: Type::F32, count: 4, offset: 8 },
            ],
            size: 24,
            align: 8,
            class_id: Some(ClassId(0)),
        });
        m.add_class(ClassInfo {
            name: "Node".into(),
            layout,
            bases: vec![],
            vtable: vec![FuncId(0)],
        });
        let mut b = FunctionBuilder::new("body", vec![Type::Ptr(AddrSpace::Cpu)], Type::Void);
        let p = b.param(0);
        let gid = b.intrinsic(Intrinsic::GlobalId, vec![], Type::I32);
        let off = b.cast(CastOp::Sext, gid, Type::I64);
        let slot = b.gep(p, off);
        let v = b.load(slot, Type::F32);
        let two = b.f32(2.0);
        let dbl = b.bin(BinOp::FMul, v, two);
        b.store(slot, dbl);
        b.ret(None);
        let mut f = b.build();
        f.kernel = Some(KernelKind::ForBody);
        f.owner_class = Some(ClassId(0));
        m.add_function(f);
        m
    }

    #[test]
    fn module_roundtrip_is_identical() {
        let m = sample_module();
        let bytes = encode_to_vec(&m);
        let back: Module = decode_exact(&bytes).expect("roundtrip decodes");
        assert_eq!(back.structs, m.structs);
        assert_eq!(back.functions.len(), m.functions.len());
        for (a, b) in m.functions.iter().zip(back.functions.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.params, b.params);
            assert_eq!(a.ret, b.ret);
            assert_eq!(a.insts, b.insts);
            assert_eq!(a.blocks, b.blocks);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.owner_class, b.owner_class);
        }
        assert_eq!(back.classes.len(), m.classes.len());
        assert_eq!(back.classes[0].vtable, m.classes[0].vtable);
    }

    #[test]
    fn all_op_variants_roundtrip() {
        let v = ValueId(7);
        let ops = vec![
            Op::Param(3),
            Op::ConstInt(-42),
            Op::ConstFloat(2.5),
            Op::ConstNull,
            Op::Bin(BinOp::AShr, v, ValueId(8)),
            Op::Icmp(ICmp::Uge, v, v),
            Op::Fcmp(FCmp::Oge, v, v),
            Op::Cast(CastOp::PtrCast, v),
            Op::Select(v, ValueId(1), ValueId(2)),
            Op::Alloca { size: 64, align: 16 },
            Op::Load(v),
            Op::Store { ptr: v, val: ValueId(9) },
            Op::Gep { base: v, offset: ValueId(2) },
            Op::CpuToGpu(v),
            Op::GpuToCpu(v),
            Op::Phi(vec![(BlockId(1), ValueId(4)), (BlockId(2), ValueId(5))]),
            Op::Call { callee: FuncId(6), args: vec![v, ValueId(1)] },
            Op::CallVirtual { static_class: ClassId(2), slot: 1, obj: v, args: vec![ValueId(3)] },
            Op::IntrinsicCall(Intrinsic::DeviceMalloc, vec![v]),
            Op::Br(BlockId(4)),
            Op::CondBr(v, BlockId(1), BlockId(2)),
            Op::Ret(Some(v)),
            Op::Ret(None),
            Op::Unreachable,
        ];
        for op in ops {
            let bytes = encode_to_vec(&op);
            let back: Op = decode_exact(&bytes).expect("op decodes");
            assert_eq!(back, op);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let m = sample_module();
        let bytes = encode_to_vec(&m);
        for cut in 0..bytes.len() {
            let err = decode_exact::<Module>(&bytes[..cut]);
            assert!(err.is_err(), "truncation at {cut} must fail to decode");
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX); // a Vec claiming four billion elements
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.len().unwrap_err();
        assert!(err.message.contains("exceeds remaining input"), "{err}");
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(decode_exact::<Type>(&[99]).is_err());
        assert!(decode_exact::<Op>(&[0xff]).is_err());
        assert!(decode_exact::<Option<u32>>(&[2]).is_err());
        assert!(decode_exact::<bool>(&[7]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&Op::ConstNull);
        bytes.push(0);
        assert!(decode_exact::<Op>(&bytes).is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn nan_float_constants_survive() {
        let op = Op::ConstFloat(f64::NAN);
        let bytes = encode_to_vec(&op);
        let back: Op = decode_exact(&bytes).unwrap();
        match back {
            Op::ConstFloat(v) => assert!(v.is_nan()),
            other => panic!("expected ConstFloat, got {other:?}"),
        }
    }
}
