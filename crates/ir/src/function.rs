//! Functions, basic blocks, and modules.

use crate::inst::{BlockId, FuncId, Op, ValueId};
use crate::types::{ClassId, StructDef, StructId, Type};
use std::collections::HashMap;

/// One instruction in a function's arena: an operation plus its result type
/// ([`Type::Void`] for instructions that produce no value).
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Result type.
    pub ty: Type,
}

/// A basic block: a straight-line instruction sequence ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Instruction ids in execution order. The last one is the terminator
    /// once the block is complete.
    pub insts: Vec<ValueId>,
}

/// What kind of kernel entry point a function is, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Body of a `parallel_for_hetero` (the `operator()` method).
    ForBody,
    /// `join` method of a `parallel_reduce_hetero` body.
    ReduceJoin,
}

/// An IR function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types. Parameters are materialized as [`Op::Param`]
    /// instructions at the start of the entry block.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Instruction arena; indices are [`ValueId`]s.
    pub insts: Vec<Inst>,
    /// Basic blocks; indices are [`BlockId`]s. Block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Set when the function is a kernel entry point.
    pub kernel: Option<KernelKind>,
    /// For methods: the class that owns this function.
    pub owner_class: Option<ClassId>,
}

impl Function {
    /// Create an empty function with one (entry) block and parameter
    /// instructions already materialized.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Self {
        let mut f = Function {
            name: name.into(),
            params: params.clone(),
            ret,
            insts: Vec::new(),
            blocks: vec![Block::default()],
            kernel: None,
            owner_class: None,
        };
        for (i, ty) in params.iter().enumerate() {
            let id = f.push_inst(Op::Param(i as u32), *ty);
            f.blocks[0].insts.push(id);
        }
        f
    }

    /// The entry block id (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Append an instruction to the arena (not to any block) and return its id.
    pub fn push_inst(&mut self, op: Op, ty: Type) -> ValueId {
        let id = ValueId(self.insts.len() as u32);
        self.insts.push(Inst { op, ty });
        id
    }

    /// The instruction defining `v`.
    pub fn inst(&self, v: ValueId) -> &Inst {
        &self.insts[v.0 as usize]
    }

    /// Mutable access to the instruction defining `v`.
    pub fn inst_mut(&mut self, v: ValueId) -> &mut Inst {
        &mut self.insts[v.0 as usize]
    }

    /// The block with id `b`.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Mutable access to block `b`.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.0 as usize]
    }

    /// Ids of all blocks, in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The terminator instruction id of block `b`, if the block is complete.
    pub fn terminator(&self, b: BlockId) -> Option<ValueId> {
        let last = *self.block(b).insts.last()?;
        self.inst(last).op.is_terminator().then_some(last)
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match self.terminator(b) {
            Some(t) => self.inst(t).op.successors(),
            None => Vec::new(),
        }
    }

    /// Map from block to its predecessors, in deterministic order.
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in self.block_ids() {
            preds.entry(b).or_default();
        }
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds.entry(s).or_default().push(b);
            }
        }
        preds
    }

    /// Total number of instructions placed in blocks.
    pub fn placed_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A class's vtable: method function ids by slot, plus hierarchy links.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Source-level class name.
    pub name: String,
    /// The struct layout for instances of this class.
    pub layout: StructId,
    /// Direct base classes (for class-hierarchy analysis).
    pub bases: Vec<ClassId>,
    /// Vtable: slot index → implementing function.
    pub vtable: Vec<FuncId>,
}

/// A compilation unit: struct layouts, class hierarchy, and functions.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Struct layouts; indices are [`StructId`]s.
    pub structs: Vec<StructDef>,
    /// Polymorphic classes; indices are [`ClassId`]s.
    pub classes: Vec<ClassInfo>,
    /// Functions; indices are [`FuncId`]s.
    pub functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a struct layout, returning its id.
    pub fn add_struct(&mut self, def: StructDef) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(def);
        id
    }

    /// Add a class, returning its id.
    pub fn add_class(&mut self, info: ClassInfo) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(info);
        id
    }

    /// Add a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// The function with id `f`.
    pub fn function(&self, f: FuncId) -> &Function {
        &self.functions[f.0 as usize]
    }

    /// Mutable access to function `f`.
    pub fn function_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.functions[f.0 as usize]
    }

    /// Find a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// The struct layout with id `s`.
    pub fn struct_def(&self, s: StructId) -> &StructDef {
        &self.structs[s.0 as usize]
    }

    /// Find a struct layout by source name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs.iter().position(|s| s.name == name).map(|i| StructId(i as u32))
    }

    /// The class with id `c`.
    pub fn class(&self, c: ClassId) -> &ClassInfo {
        &self.classes[c.0 as usize]
    }

    /// All classes equal to or (transitively) derived from `base`.
    ///
    /// This is the class-hierarchy analysis used by devirtualization (§3.2):
    /// the possible dynamic types of a receiver of static class `base`.
    pub fn subclasses_of(&self, base: ClassId) -> Vec<ClassId> {
        let mut result = Vec::new();
        for (i, _) in self.classes.iter().enumerate() {
            let c = ClassId(i as u32);
            if self.derives_from(c, base) {
                result.push(c);
            }
        }
        result
    }

    /// Whether `c` is `base` or transitively derives from it.
    pub fn derives_from(&self, c: ClassId, base: ClassId) -> bool {
        if c == base {
            return true;
        }
        self.class(c).bases.iter().any(|&b| self.derives_from(b, base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn two_block_function() -> Function {
        // bb0: %0 = param 0; br bb1
        // bb1: %2 = add %0, %0; ret %2
        let mut f = Function::new("f", vec![Type::I32], Type::I32);
        let p = ValueId(0);
        let br = f.push_inst(Op::Br(BlockId(1)), Type::Void);
        f.blocks[0].insts.push(br);
        f.blocks.push(Block::default());
        let add = f.push_inst(Op::Bin(BinOp::Add, p, p), Type::I32);
        let ret = f.push_inst(Op::Ret(Some(add)), Type::Void);
        f.blocks[1].insts.extend([add, ret]);
        f
    }

    #[test]
    fn params_are_materialized() {
        let f = Function::new("f", vec![Type::I32, Type::F32], Type::Void);
        assert_eq!(f.insts.len(), 2);
        assert_eq!(f.inst(ValueId(0)).op, Op::Param(0));
        assert_eq!(f.inst(ValueId(1)).ty, Type::F32);
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn successors_and_predecessors() {
        let f = two_block_function();
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1)]);
        assert!(f.successors(BlockId(1)).is_empty());
        let preds = f.predecessors();
        assert_eq!(preds[&BlockId(1)], vec![BlockId(0)]);
        assert!(preds[&BlockId(0)].is_empty());
    }

    #[test]
    fn terminator_detection() {
        let f = two_block_function();
        assert!(f.terminator(BlockId(0)).is_some());
        let empty = Function::new("g", vec![], Type::Void);
        assert!(empty.terminator(BlockId(0)).is_none());
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let f = Function::new("kernel_body", vec![], Type::Void);
        let id = m.add_function(f);
        assert_eq!(m.function_by_name("kernel_body"), Some(id));
        assert_eq!(m.function_by_name("missing"), None);
    }

    #[test]
    fn class_hierarchy_analysis() {
        let mut m = Module::new();
        let layout = m.add_struct(StructDef {
            name: "S".into(),
            fields: vec![],
            size: 8,
            align: 8,
            class_id: None,
        });
        let base =
            m.add_class(ClassInfo { name: "Shape".into(), layout, bases: vec![], vtable: vec![] });
        let mid = m.add_class(ClassInfo {
            name: "Round".into(),
            layout,
            bases: vec![base],
            vtable: vec![],
        });
        let leaf = m.add_class(ClassInfo {
            name: "Sphere".into(),
            layout,
            bases: vec![mid],
            vtable: vec![],
        });
        let other =
            m.add_class(ClassInfo { name: "Light".into(), layout, bases: vec![], vtable: vec![] });
        assert!(m.derives_from(leaf, base));
        assert!(!m.derives_from(other, base));
        assert_eq!(m.subclasses_of(base), vec![base, mid, leaf]);
        assert_eq!(m.subclasses_of(other), vec![other]);
    }
}
