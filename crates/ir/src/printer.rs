//! Textual rendering of IR functions and modules, for debugging, golden
//! tests, and the OpenCL-style kernel dump (§3 Figure 1 analogue).

use crate::function::{Function, Module};
use crate::inst::{Op, ValueId};
use std::fmt::Write;

/// Render one instruction.
fn write_inst(out: &mut String, f: &Function, id: ValueId) {
    let inst = f.inst(id);
    let lhs = if inst.ty == crate::types::Type::Void { String::new() } else { format!("{id} = ") };
    let body = match &inst.op {
        Op::Param(i) => format!("param {i}"),
        Op::ConstInt(v) => format!("const.{} {v}", inst.ty),
        Op::ConstFloat(v) => format!("const.{} {v}", inst.ty),
        Op::ConstNull => format!("null.{}", inst.ty),
        Op::Bin(op, a, b) => format!("{} {a}, {b}", op.mnemonic()),
        Op::Icmp(p, a, b) => format!("icmp.{} {a}, {b}", p.mnemonic()),
        Op::Fcmp(p, a, b) => format!("fcmp.{} {a}, {b}", p.mnemonic()),
        Op::Cast(op, v) => format!("{} {v} to {}", op.mnemonic(), inst.ty),
        Op::Select(c, a, b) => format!("select {c}, {a}, {b}"),
        Op::Alloca { size, align } => format!("alloca {size}, align {align}"),
        Op::Load(p) => format!("load.{} {p}", inst.ty),
        Op::Store { ptr, val } => format!("store {val}, {ptr}"),
        Op::Gep { base, offset } => format!("gep {base}, {offset}"),
        Op::CpuToGpu(v) => format!("cpu_to_gpu {v}"),
        Op::GpuToCpu(v) => format!("gpu_to_cpu {v}"),
        Op::Phi(incoming) => {
            let parts: Vec<String> = incoming.iter().map(|(b, v)| format!("[{b}, {v}]")).collect();
            format!("phi {}", parts.join(", "))
        }
        Op::Call { callee, args } => {
            let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("call {callee}({})", parts.join(", "))
        }
        Op::CallVirtual { static_class, slot, obj, args } => {
            let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("vcall {static_class}#{slot} {obj}({})", parts.join(", "))
        }
        Op::IntrinsicCall(i, args) => {
            let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("intrinsic {}({})", i.name(), parts.join(", "))
        }
        Op::Br(b) => format!("br {b}"),
        Op::CondBr(c, t, e) => format!("condbr {c}, {t}, {e}"),
        Op::Ret(Some(v)) => format!("ret {v}"),
        Op::Ret(None) => "ret".to_string(),
        Op::Unreachable => "unreachable".to_string(),
    };
    let _ = writeln!(out, "  {lhs}{body}");
}

/// Render a whole function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|t| t.to_string()).collect();
    let kernel_tag = match f.kernel {
        Some(crate::function::KernelKind::ForBody) => " [kernel:for]",
        Some(crate::function::KernelKind::ReduceJoin) => " [kernel:join]",
        None => "",
    };
    let _ = writeln!(out, "func {}({}) -> {}{} {{", f.name, params.join(", "), f.ret, kernel_tag);
    for b in f.block_ids() {
        let _ = writeln!(out, "{b}:");
        for &i in &f.block(b).insts {
            write_inst(&mut out, f, i);
        }
    }
    out.push_str("}\n");
    out
}

/// Render a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for (i, s) in m.structs.iter().enumerate() {
        let _ =
            writeln!(out, "struct %struct.{i} ; {} (size {}, align {})", s.name, s.size, s.align);
        for fld in &s.fields {
            let cnt = if fld.count > 1 { format!("[{}]", fld.count) } else { String::new() };
            let _ = writeln!(out, "  +{}: {} {}{}", fld.offset, fld.ty, fld.name, cnt);
        }
    }
    for (i, c) in m.classes.iter().enumerate() {
        let slots: Vec<String> = c.vtable.iter().map(|f| f.to_string()).collect();
        let _ = writeln!(out, "class class.{i} ; {} vtable [{}]", c.name, slots.join(", "));
    }
    for f in &m.functions {
        out.push_str(&print_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::types::Type;

    #[test]
    fn prints_stable_text() {
        let mut b = FunctionBuilder::new("add1", vec![Type::I32], Type::I32);
        let p = b.param(0);
        let one = b.i32(1);
        let s = b.bin(BinOp::Add, p, one);
        b.ret(Some(s));
        let text = print_function(&b.build());
        assert!(text.contains("func add1(i32) -> i32 {"));
        assert!(text.contains("%1 = const.i32 1"));
        assert!(text.contains("%2 = add %0, %1"));
        assert!(text.contains("ret %2"));
    }

    #[test]
    fn kernel_tag_is_printed() {
        let mut f = FunctionBuilder::new("op", vec![], Type::Void);
        f.ret(None);
        let mut f = f.build();
        f.kernel = Some(crate::function::KernelKind::ForBody);
        assert!(print_function(&f).contains("[kernel:for]"));
    }
}
