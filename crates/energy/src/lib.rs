//! # concord-energy
//!
//! Device configurations and the package-energy model for the two systems
//! evaluated in the paper (§5.1):
//!
//! * an **Ultrabook** with a 1.7 GHz dual-core i7-4650U and an integrated
//!   HD Graphics 5000 GPU (40 EUs, 200 MHz–1.1 GHz, 15 W TDP), and
//! * a **desktop** with a 3.4 GHz quad-core i7-4770 and an integrated
//!   HD Graphics 4600 GPU (20 EUs, 350 MHz–1.25 GHz, 84 W TDP).
//!
//! The paper measures package energy by sampling
//! `MSR_PKG_ENERGY_STATUS`; [`EnergyMeter`] reproduces that interface over
//! the simulators' timing output. Package power during a phase is modeled
//! as a base (uncore) draw plus per-device active draw; GPU active power
//! scales with EU issue occupancy, which is what makes memory-bound
//! workloads like BarnesHut *slower yet more energy-efficient* on the
//! desktop GPU (§5.2.2).

use std::fmt;

/// CPU-side parameters of a system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Physical cores used by `parallel_for` work.
    pub cores: u32,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Effective superscalar issue rate (instructions/cycle) for non-memory
    /// operations, folding in out-of-order overlap.
    pub ipc: f64,
    /// Branch misprediction penalty in cycles.
    pub branch_miss_penalty: f64,
    /// L1 data cache size in bytes (per core).
    pub l1_bytes: u64,
    /// Shared last-level cache size in bytes.
    pub llc_bytes: u64,
    /// L1 hit cost in cycles (mostly hidden by OoO execution).
    pub l1_hit_cycles: f64,
    /// LLC hit cost in cycles.
    pub llc_hit_cycles: f64,
    /// Memory access cost in cycles after OoO/prefetch overlap.
    pub mem_cycles: f64,
    /// Active power per busy core in watts.
    pub core_active_watts: f64,
}

/// GPU-side parameters of a system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Execution units.
    pub eus: u32,
    /// Hardware thread (warp) slots per EU.
    pub threads_per_eu: u32,
    /// SIMD lanes per hardware thread.
    pub simd_width: u32,
    /// Clock in GHz (sustained turbo).
    pub freq_ghz: f64,
    /// Shared (non-banked) GPU L3 size in bytes.
    pub l3_bytes: u64,
    /// L3 hit cost in cycles.
    pub l3_hit_cycles: f64,
    /// Memory access cost in cycles (before latency hiding).
    pub mem_cycles: f64,
    /// Same-line cross-EU contention penalty in cycles (the L3 is not
    /// banked; see §4.2).
    pub contention_penalty: f64,
    /// Per-work-item private memory in bytes.
    pub private_bytes: u64,
    /// Work-group local memory in bytes.
    pub local_bytes: u64,
    /// Maximum GPU active power in watts at full issue occupancy.
    pub max_active_watts: f64,
    /// GPU active-power floor while a kernel is resident (clocks up).
    pub idle_active_watts: f64,
    /// One-time OpenCL JIT compilation cost per kernel, in milliseconds.
    pub jit_ms: f64,
    /// Per-offload launch + pin/unpin fence cost, in microseconds.
    pub launch_us: f64,
}

/// A full evaluation platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Display name.
    pub name: &'static str,
    /// Package base (uncore + idle) power in watts.
    pub package_base_watts: f64,
    /// Host-core power while driving/waiting on a GPU offload.
    pub host_assist_watts: f64,
    /// CPU parameters.
    pub cpu: CpuConfig,
    /// GPU parameters.
    pub gpu: GpuConfig,
}

impl SystemConfig {
    /// The 15 W Ultrabook: dual-core 1.7 GHz CPU + HD Graphics 5000
    /// (40 EUs at up to 1.1 GHz).
    pub fn ultrabook() -> Self {
        SystemConfig {
            name: "ultrabook",
            package_base_watts: 2.0,
            host_assist_watts: 1.0,
            cpu: CpuConfig {
                cores: 2,
                freq_ghz: 1.7,
                // Effective IR-ops per cycle: Haswell retires ~4 uops/cycle
                // and one IR op lowers to about one uop.
                ipc: 4.0,
                branch_miss_penalty: 14.0,
                l1_bytes: 32 * 1024,
                llc_bytes: 4 * 1024 * 1024,
                l1_hit_cycles: 1.0,
                llc_hit_cycles: 12.0,
                mem_cycles: 110.0,
                core_active_watts: 4.0,
            },
            gpu: GpuConfig {
                eus: 40,
                threads_per_eu: 7,
                simd_width: 16,
                freq_ghz: 1.0,
                l3_bytes: 512 * 1024,
                l3_hit_cycles: 50.0,
                mem_cycles: 320.0,
                contention_penalty: 10.0,
                private_bytes: 8 * 1024,
                local_bytes: 64 * 1024,
                max_active_watts: 16.0,
                idle_active_watts: 6.0,
                jit_ms: 0.005,
                launch_us: 1.5,
            },
        }
    }

    /// The 84 W desktop: quad-core 3.4 GHz CPU + HD Graphics 4600
    /// (20 EUs at up to 1.25 GHz).
    pub fn desktop() -> Self {
        SystemConfig {
            name: "desktop",
            package_base_watts: 8.0,
            host_assist_watts: 2.0,
            cpu: CpuConfig {
                cores: 4,
                freq_ghz: 3.4,
                ipc: 4.5,
                branch_miss_penalty: 14.0,
                l1_bytes: 32 * 1024,
                llc_bytes: 8 * 1024 * 1024,
                l1_hit_cycles: 1.0,
                llc_hit_cycles: 10.0,
                // The desktop CPU has far more effective memory bandwidth
                // per core (dual-channel DDR3-1600 + deep OoO): §5.2.2's
                // reason GPU speedups evaporate on the desktop.
                mem_cycles: 70.0,
                core_active_watts: 13.0,
            },
            gpu: GpuConfig {
                eus: 20,
                threads_per_eu: 7,
                simd_width: 16,
                freq_ghz: 1.15,
                l3_bytes: 256 * 1024,
                l3_hit_cycles: 50.0,
                mem_cycles: 300.0,
                contention_penalty: 10.0,
                private_bytes: 8 * 1024,
                local_bytes: 64 * 1024,
                // Package draw during GPU phases includes uncore + memory
                // activity, calibrated to the paper's desktop energy ratios.
                max_active_watts: 43.0,
                idle_active_watts: 18.0,
                jit_ms: 0.005,
                launch_us: 1.2,
            },
        }
    }
}

/// Result of timing one execution phase on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseReport {
    /// Wall-clock seconds for the phase.
    pub seconds: f64,
    /// For GPU phases: fraction of EU cycles spent issuing (0–1).
    /// For CPU phases: fraction of cores busy (usually 1.0).
    pub busy_fraction: f64,
}

/// Which device ran a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    /// Multicore CPU execution.
    Cpu,
    /// Integrated GPU execution.
    Gpu,
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::Cpu => f.write_str("CPU"),
            Device::Gpu => f.write_str("GPU"),
        }
    }
}

/// Package-energy accumulator, the `MSR_PKG_ENERGY_STATUS` analogue.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    joules: f64,
    seconds: f64,
}

impl EnergyMeter {
    /// A meter with zero accumulated energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Package power in watts for a phase on `device`.
    pub fn phase_power(system: &SystemConfig, device: Device, report: PhaseReport) -> f64 {
        match device {
            Device::Cpu => {
                system.package_base_watts
                    + system.cpu.cores as f64 * system.cpu.core_active_watts * report.busy_fraction
            }
            Device::Gpu => {
                let g = &system.gpu;
                system.package_base_watts
                    + system.host_assist_watts
                    + g.idle_active_watts
                    + (g.max_active_watts - g.idle_active_watts) * report.busy_fraction
            }
        }
    }

    /// Record a phase: accumulates `power × time`.
    pub fn record(&mut self, system: &SystemConfig, device: Device, report: PhaseReport) {
        let p = Self::phase_power(system, device, report);
        self.joules += p * report.seconds;
        self.seconds += report.seconds;
    }

    /// Total accumulated package energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total accumulated wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_shapes_match_paper() {
        let ub = SystemConfig::ultrabook();
        let dt = SystemConfig::desktop();
        assert_eq!(ub.gpu.eus, 40);
        assert_eq!(dt.gpu.eus, 20);
        assert_eq!(ub.cpu.cores, 2);
        assert_eq!(dt.cpu.cores, 4);
        assert_eq!(ub.gpu.threads_per_eu, 7);
        assert_eq!(ub.gpu.simd_width, 16);
        assert!(dt.cpu.freq_ghz > ub.cpu.freq_ghz);
    }

    #[test]
    fn cpu_phase_power_scales_with_cores() {
        let ub = SystemConfig::ultrabook();
        let p = EnergyMeter::phase_power(
            &ub,
            Device::Cpu,
            PhaseReport { seconds: 1.0, busy_fraction: 1.0 },
        );
        assert!((p - (2.0 + 2.0 * 4.0)).abs() < 1e-9);
    }

    #[test]
    fn gpu_power_scales_with_occupancy() {
        let dt = SystemConfig::desktop();
        let busy = EnergyMeter::phase_power(
            &dt,
            Device::Gpu,
            PhaseReport { seconds: 1.0, busy_fraction: 1.0 },
        );
        let stalled = EnergyMeter::phase_power(
            &dt,
            Device::Gpu,
            PhaseReport { seconds: 1.0, busy_fraction: 0.2 },
        );
        assert!(busy > stalled);
        assert!(stalled > dt.package_base_watts);
    }

    #[test]
    fn desktop_gpu_draws_less_than_its_cpu() {
        // The §5.2.2 effect depends on this: equal-time GPU execution must
        // still save energy on the desktop.
        let dt = SystemConfig::desktop();
        let cpu = EnergyMeter::phase_power(
            &dt,
            Device::Cpu,
            PhaseReport { seconds: 1.0, busy_fraction: 1.0 },
        );
        let gpu = EnergyMeter::phase_power(
            &dt,
            Device::Gpu,
            PhaseReport { seconds: 1.0, busy_fraction: 1.0 },
        );
        assert!(gpu < cpu);
    }

    #[test]
    fn meter_accumulates() {
        let ub = SystemConfig::ultrabook();
        let mut m = EnergyMeter::new();
        m.record(&ub, Device::Cpu, PhaseReport { seconds: 2.0, busy_fraction: 1.0 });
        m.record(&ub, Device::Gpu, PhaseReport { seconds: 1.0, busy_fraction: 0.5 });
        assert!(m.joules() > 0.0);
        assert!((m.seconds() - 3.0).abs() < 1e-12);
    }
}
