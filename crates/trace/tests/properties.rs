//! Property-based tests on the tracer's public API: arbitrary well-formed
//! usage must produce balanced, well-nested span streams, and identical
//! usage must produce byte-identical Chrome JSON.

use concord_trace::{EventKind, TraceConfig, Tracer, Track};
use proptest::prelude::*;

const TRACKS: [Track; 5] =
    [Track::Compiler, Track::Runtime, Track::GpuSim, Track::CpuSim, Track::Svm];

const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];

/// One scripted tracer operation; u8 payloads keep the generator simple.
type Op = (u8, u8, u8, u16);

/// Replay a script of operations against a tracer, keeping span guards on a
/// stack so RAII drops close them innermost-first (well-nested by
/// construction — the property under test is that the *recorded events*
/// preserve that nesting).
fn replay(tracer: &Tracer, ops: &[Op]) {
    let mut open = Vec::new();
    for &(op, track, name, val) in ops {
        let track = TRACKS[track as usize % TRACKS.len()];
        let name = NAMES[name as usize % NAMES.len()];
        match op % 5 {
            0 => open.push(tracer.span(track, name)),
            1 => {
                if let Some(mut sp) = open.pop() {
                    sp.arg("val", i64::from(val));
                    sp.end();
                }
            }
            2 => tracer.instant(track, name, vec![("val", i64::from(val).into())]),
            3 => tracer.counter(track, name, f64::from(val)),
            4 => tracer.instant_at(track, name, u64::from(val), Vec::new()),
            _ => unreachable!(),
        }
    }
    // Close remaining guards innermost-first (Vec drops front-first, which
    // would invert the nesting).
    while open.pop().is_some() {}
}

proptest! {
    /// Span Begin/End events are balanced and well-nested per track: every
    /// End matches the name of the innermost open Begin, and once all
    /// guards are dropped no track has an open span left.
    #[test]
    fn spans_are_balanced_and_well_nested(
        ops in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u16..=999), 0..200)
    ) {
        let tracer = Tracer::new(TraceConfig::enabled());
        replay(&tracer, &ops);
        let mut stacks: std::collections::BTreeMap<u32, Vec<String>> =
            std::collections::BTreeMap::new();
        for e in tracer.events() {
            let stack = stacks.entry(e.track.tid()).or_default();
            match e.kind {
                EventKind::Begin => stack.push(e.name.to_string()),
                EventKind::End => {
                    let top = stack.pop();
                    prop_assert_eq!(top.as_deref(), Some(e.name.as_ref()),
                        "End must close the innermost open span of its track");
                }
                EventKind::Instant | EventKind::Counter(_) => {}
            }
        }
        for (tid, stack) in stacks {
            prop_assert!(stack.is_empty(),
                "track {} still has open spans: {:?}", tid, stack);
        }
    }

    /// Host-track timestamps are strictly increasing under the default
    /// deterministic logical clock (each event gets its own tick).
    #[test]
    fn logical_clock_is_strictly_monotonic(
        ops in proptest::collection::vec(
            // Ops 0..=3 only: instant_at injects caller timestamps.
            (0u8..=3, 0u8..=255, 0u8..=255, 0u16..=999), 1..150)
    ) {
        let tracer = Tracer::new(TraceConfig::enabled());
        replay(&tracer, &ops);
        let events = tracer.events();
        for w in events.windows(2) {
            prop_assert!(w[0].ts < w[1].ts,
                "logical clock must tick per event: {} then {}", w[0].ts, w[1].ts);
        }
    }

    /// The Chrome exporter never emits unbalanced B/E pairs, even when the
    /// ring buffer dropped oldest events mid-span.
    #[test]
    fn chrome_json_is_balanced_even_after_eviction(
        ops in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u16..=999), 0..300),
        capacity in 8usize..64
    ) {
        let tracer = Tracer::new(TraceConfig::enabled().with_capacity(capacity));
        replay(&tracer, &ops);
        let json = tracer.chrome_json();
        prop_assert!(json.starts_with("{\"traceEvents\":["));
        prop_assert!(json.ends_with("]}"));
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        prop_assert_eq!(begins, ends, "every emitted B needs a matching E");
    }

    /// Identical API usage produces byte-identical Chrome JSON and summary
    /// under the deterministic clock.
    #[test]
    fn identical_scripts_trace_identically(
        ops in proptest::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u16..=999), 0..150)
    ) {
        let a = Tracer::new(TraceConfig::enabled());
        let b = Tracer::new(TraceConfig::enabled());
        replay(&a, &ops);
        replay(&b, &ops);
        prop_assert_eq!(a.chrome_json(), b.chrome_json());
        prop_assert_eq!(a.summary(), b.summary());
    }
}
