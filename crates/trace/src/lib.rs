//! concord-trace: structured tracing & profiling for the Concord stack.
//!
//! The whole pipeline — compiler passes, runtime offloads, both device
//! simulators, and the SVM heap — reports into one [`Tracer`]: nested
//! spans, counters, and instant events, stored in a bounded in-memory ring
//! buffer and exportable as Chrome trace-event JSON ([`chrome`]) or as a
//! deterministic text summary table ([`summary`]).
//!
//! # Clocks
//!
//! Each event carries a `ts` in the clock domain of its [`Track`]:
//!
//! * simulator tracks ([`Track::GpuSim`], [`Track::CpuSim`]) timestamp in
//!   **simulated device cycles**, supplied by the caller via the `*_at`
//!   methods;
//! * host-side tracks (compiler, runtime, SVM) use the tracer's **host
//!   clock**, which by default is a deterministic logical clock (one tick
//!   per event) so traces are byte-identical across runs and diffable.
//!   Set [`TraceConfig::wall_clock`] for real nanosecond timestamps.
//!
//! # Cost when disabled
//!
//! A disabled tracer is a boolean check: no allocation, no locking, no
//! clock reads. Handles are cheap to clone and share one buffer.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod chrome;
pub mod summary;

/// Which layer of the stack an event belongs to. Maps to one timeline row
/// (`tid`) in the Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Compiler passes (host clock).
    Compiler,
    /// Runtime orchestration: offloads, fences, JIT, joins (host clock).
    Runtime,
    /// GPU simulator events (simulated device cycles).
    GpuSim,
    /// CPU simulator events (simulated device cycles).
    CpuSim,
    /// Shared virtual memory heap and consistency events (host clock).
    Svm,
    /// Hybrid-scheduler decisions: device splits, probe rounds, rebalances
    /// (host clock).
    Sched,
    /// Offload-service events: connections, admissions, queue depth,
    /// artifact-cache hits, drains (host clock; see `concord-serve`).
    Server,
    /// Static kernel analysis: pre-launch gate runs, cache hits, and
    /// individual findings (host clock; see `concord-analyze`).
    Analysis,
    /// Native JIT backend events: codegen runs and native launches (host
    /// clock; see `concord-native`).
    Native,
}

impl Track {
    /// All tracks, in export order.
    pub const ALL: [Track; 9] = [
        Track::Compiler,
        Track::Runtime,
        Track::GpuSim,
        Track::CpuSim,
        Track::Svm,
        Track::Sched,
        Track::Server,
        Track::Analysis,
        Track::Native,
    ];

    /// Stable display name (also the Chrome thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::Compiler => "compiler",
            Track::Runtime => "runtime",
            Track::GpuSim => "gpusim",
            Track::CpuSim => "cpusim",
            Track::Svm => "svm",
            Track::Sched => "sched",
            Track::Server => "server",
            Track::Analysis => "analysis",
            Track::Native => "native",
        }
    }

    /// Stable timeline row id for the Chrome export.
    pub fn tid(self) -> u32 {
        match self {
            Track::Compiler => 1,
            Track::Runtime => 2,
            Track::GpuSim => 3,
            Track::CpuSim => 4,
            Track::Svm => 5,
            Track::Sched => 6,
            Track::Server => 7,
            Track::Analysis => 8,
            Track::Native => 9,
        }
    }

    /// Timestamp unit for this track, for display.
    pub fn clock_unit(self) -> &'static str {
        match self {
            Track::GpuSim | Track::CpuSim => "cycles",
            _ => "ticks",
        }
    }
}

/// A typed event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// Key/value argument list attached to an event.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// The innermost open span on this track closed.
    End,
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value.
    Counter(f64),
}

/// One record in the trace buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timeline this event belongs to.
    pub track: Track,
    /// Span / marker / counter name.
    pub name: Cow<'static, str>,
    /// Timestamp in the track's clock domain (see module docs).
    pub ts: u64,
    /// Event payload kind.
    pub kind: EventKind,
    /// Structured arguments.
    pub args: Args,
}

/// Tracing configuration, set once at [`Tracer::new`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Master switch. When false the tracer is free.
    pub enabled: bool,
    /// Ring-buffer capacity in events; oldest events are dropped beyond it.
    pub capacity: usize,
    /// Use real wall-clock nanoseconds for host-side tracks instead of the
    /// default deterministic logical clock. Breaks byte-identical traces.
    pub wall_clock: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { enabled: false, capacity: 1 << 16, wall_clock: false }
    }
}

impl TraceConfig {
    /// An enabled config with default capacity and deterministic clock.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true, ..TraceConfig::default() }
    }

    /// Set the ring-buffer capacity (events).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Use wall-clock timestamps for host-side tracks.
    pub fn with_wall_clock(mut self) -> Self {
        self.wall_clock = true;
        self
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

#[derive(Debug)]
struct Inner {
    ring: Mutex<Ring>,
    /// Logical host clock: one tick per host-timestamped event.
    logical: AtomicU64,
    wall_clock: bool,
    epoch: Instant,
}

impl Inner {
    fn host_now(&self) -> u64 {
        if self.wall_clock {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            self.logical.fetch_add(1, Ordering::Relaxed)
        }
    }
}

/// A cheap, cloneable handle to a shared trace buffer.
///
/// All clones append to the same ring buffer, so one tracer observes the
/// whole stack. A tracer built with [`Tracer::disabled`] (or a disabled
/// [`TraceConfig`]) never locks or allocates.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// Build a tracer from a config. A disabled config yields a no-op
    /// tracer identical to [`Tracer::disabled`].
    pub fn new(config: TraceConfig) -> Self {
        if !config.enabled {
            return Tracer { inner: None };
        }
        Tracer {
            inner: Some(Arc::new(Inner {
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(config.capacity.min(1024)),
                    capacity: config.capacity,
                    dropped: 0,
                }),
                logical: AtomicU64::new(0),
                wall_clock: config.wall_clock,
                epoch: Instant::now(),
            })),
        }
    }

    /// The no-op tracer: every call is a branch on a `None`.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether events are being recorded. Callers doing non-trivial work to
    /// *compute* an event (formatting, sampling) should check this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn record(&self, track: Track, name: Cow<'static, str>, ts: u64, kind: EventKind, args: Args) {
        if let Some(inner) = &self.inner {
            inner.ring.lock().unwrap().push(Event { track, name, ts, kind, args });
        }
    }

    /// Open a host-clocked span; it closes when the guard drops.
    #[inline]
    pub fn span(&self, track: Track, name: impl Into<Cow<'static, str>>) -> SpanGuard {
        self.span_with(track, name, Vec::new())
    }

    /// Open a host-clocked span with arguments on the Begin event.
    pub fn span_with(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        args: Args,
    ) -> SpanGuard {
        let Some(inner) = &self.inner else { return SpanGuard::noop() };
        let name = name.into();
        let ts = inner.host_now();
        self.record(track, name.clone(), ts, EventKind::Begin, args);
        SpanGuard { tracer: self.clone(), track, name: Some(name), end_args: Vec::new() }
    }

    /// Record a host-clocked instant event.
    #[inline]
    pub fn instant(&self, track: Track, name: impl Into<Cow<'static, str>>, args: Args) {
        if let Some(inner) = &self.inner {
            let ts = inner.host_now();
            self.record(track, name.into(), ts, EventKind::Instant, args);
        }
    }

    /// Record an instant event at an explicit device-cycle timestamp.
    #[inline]
    pub fn instant_at(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        cycles: u64,
        args: Args,
    ) {
        if self.inner.is_some() {
            self.record(track, name.into(), cycles, EventKind::Instant, args);
        }
    }

    /// Record a host-clocked counter sample.
    #[inline]
    pub fn counter(&self, track: Track, name: impl Into<Cow<'static, str>>, value: f64) {
        if let Some(inner) = &self.inner {
            let ts = inner.host_now();
            self.record(track, name.into(), ts, EventKind::Counter(value), Vec::new());
        }
    }

    /// Record a counter sample at an explicit device-cycle timestamp.
    #[inline]
    pub fn counter_at(
        &self,
        track: Track,
        name: impl Into<Cow<'static, str>>,
        cycles: u64,
        value: f64,
    ) {
        if self.inner.is_some() {
            self.record(track, name.into(), cycles, EventKind::Counter(value), Vec::new());
        }
    }

    /// Copy out the buffered events, oldest first. Does not clear.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.ring.lock().unwrap().events.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// How many events have been evicted from the ring buffer.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.ring.lock().unwrap().dropped,
            None => 0,
        }
    }

    /// Clear the buffer (keeps the clock running).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut ring = inner.ring.lock().unwrap();
            ring.events.clear();
            ring.dropped = 0;
        }
    }

    /// Render the buffered events as Chrome trace-event JSON.
    pub fn chrome_json(&self) -> String {
        chrome::to_json(&self.events())
    }

    /// Render the buffered events as a deterministic summary table.
    pub fn summary(&self) -> String {
        summary::render(&self.events())
    }
}

/// RAII guard closing a span when dropped. Guards opened on the same track
/// must drop in LIFO order (natural Rust scoping guarantees this), which
/// makes traces well-nested by construction.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    track: Track,
    /// `None` for the no-op guard and after an explicit `end`.
    name: Option<Cow<'static, str>>,
    end_args: Args,
}

impl SpanGuard {
    fn noop() -> Self {
        SpanGuard {
            tracer: Tracer::disabled(),
            track: Track::Runtime,
            name: None,
            end_args: Vec::new(),
        }
    }

    /// Attach an argument to the span's End event (e.g. a result computed
    /// while the span was open).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.name.is_some() {
            self.end_args.push((key, value.into()));
        }
    }

    /// Close the span now instead of at scope end.
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if let Some(name) = self.name.take() {
            if let Some(inner) = &self.tracer.inner {
                let ts = inner.host_now();
                self.tracer.record(
                    self.track,
                    name,
                    ts,
                    EventKind::End,
                    std::mem::take(&mut self.end_args),
                );
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let mut g = t.span(Track::Compiler, "pass");
            g.arg("k", 1i64);
            t.instant(Track::Svm, "alloc", vec![]);
            t.counter(Track::CpuSim, "l1_hit_rate", 0.5);
        }
        assert!(!t.enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn spans_nest_and_balance() {
        let t = Tracer::new(TraceConfig::enabled());
        {
            let _outer = t.span(Track::Runtime, "offload");
            {
                let mut inner = t.span(Track::Runtime, "jit");
                inner.arg("funcs", 3u64);
            }
            t.instant(Track::Runtime, "fence_to_gpu", vec![]);
        }
        let evs = t.events();
        let names: Vec<_> = evs.iter().map(|e| (e.name.as_ref(), e.kind.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("offload", EventKind::Begin),
                ("jit", EventKind::Begin),
                ("jit", EventKind::End),
                ("fence_to_gpu", EventKind::Instant),
                ("offload", EventKind::End),
            ]
        );
        // End args landed on the jit End event.
        assert_eq!(evs[2].args, vec![("funcs", ArgValue::UInt(3))]);
        // Logical clock: strictly increasing per host event.
        let ts: Vec<_> = evs.iter().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]), "{ts:?}");
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let t = Tracer::new(TraceConfig::enabled().with_capacity(4));
        for i in 0..10u64 {
            t.counter(Track::GpuSim, "c", i as f64);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(evs[0].kind, EventKind::Counter(6.0));
        assert_eq!(evs[3].kind, EventKind::Counter(9.0));
    }

    #[test]
    fn device_cycle_timestamps_pass_through() {
        let t = Tracer::new(TraceConfig::enabled());
        t.instant_at(Track::GpuSim, "divergence", 1234, vec![("active", ArgValue::UInt(5))]);
        t.counter_at(Track::CpuSim, "l1_hit_rate", 99, 0.875);
        let evs = t.events();
        assert_eq!(evs[0].ts, 1234);
        assert_eq!(evs[1].ts, 99);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::new(TraceConfig::enabled());
        let t2 = t.clone();
        t.instant(Track::Svm, "a", vec![]);
        t2.instant(Track::Svm, "b", vec![]);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t2.events().len(), 2);
    }

    #[test]
    fn explicit_end_closes_once() {
        let t = Tracer::new(TraceConfig::enabled());
        let g = t.span(Track::Compiler, "p");
        g.end();
        assert_eq!(t.events().len(), 2);
    }
}
