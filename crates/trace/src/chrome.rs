//! Chrome trace-event JSON export.
//!
//! Produces the `{"traceEvents": [...]}` object format loadable by
//! `chrome://tracing` and Perfetto. Spans use `ph: "B"` / `"E"`, instants
//! `ph: "i"`, counters `ph: "C"`. Each [`Track`] is one
//! thread row under a single process, named via metadata events.
//!
//! The export is deterministic: events are emitted in buffer order, args
//! in insertion order, and floats formatted with Rust's shortest-roundtrip
//! formatter. If ring-buffer eviction dropped a span's Begin event, the
//! orphaned End is skipped so the output stays well-formed; a span still
//! open when the buffer was snapshotted gets a synthetic End at the last
//! timestamp seen on its track.

use crate::{ArgValue, Event, EventKind, Track};

/// Render events to a Chrome trace-event JSON string.
pub fn to_json(events: &[Event]) -> String {
    if events.is_empty() {
        return "{\"traceEvents\":[]}".to_string();
    }
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for track in Track::ALL {
        emit(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{} ({})\"}}}}",
                track.tid(),
                track.name(),
                track.clock_unit()
            ),
        );
    }

    // Per-track span stack depth so orphaned Ends (Begin evicted) can be
    // dropped, and per-track open-Begin indices + last ts for synthesizing
    // Ends for spans still open at snapshot time.
    const TRACKS: usize = Track::ALL.len();
    let mut depth = [0usize; TRACKS];
    let mut last_ts = [0u64; TRACKS];
    let mut open: Vec<Vec<&Event>> = vec![Vec::new(); TRACKS];
    let idx = |t: Track| t.tid() as usize - 1;

    for ev in events {
        let i = idx(ev.track);
        last_ts[i] = last_ts[i].max(ev.ts);
        match ev.kind {
            EventKind::Begin => {
                depth[i] += 1;
                open[i].push(ev);
                emit(&mut out, &mut first, &format_event(ev, "B"));
            }
            EventKind::End => {
                if depth[i] == 0 {
                    continue; // matching Begin was evicted from the ring
                }
                depth[i] -= 1;
                open[i].pop();
                emit(&mut out, &mut first, &format_event(ev, "E"));
            }
            EventKind::Instant => emit(&mut out, &mut first, &format_event(ev, "i")),
            EventKind::Counter(_) => emit(&mut out, &mut first, &format_event(ev, "C")),
        }
    }

    // Close spans that were still open when the buffer was snapshotted,
    // innermost first, so viewers don't misattribute the tail.
    for i in 0..TRACKS {
        while let Some(ev) = open[i].pop() {
            let synthetic = Event {
                track: ev.track,
                name: ev.name.clone(),
                ts: last_ts[i],
                kind: EventKind::End,
                args: vec![("incomplete", ArgValue::Bool(true))],
            };
            emit(&mut out, &mut first, &format_event(&synthetic, "E"));
        }
    }

    out.push_str("]}");
    out
}

fn emit(out: &mut String, first: &mut bool, record: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(record);
}

fn format_event(ev: &Event, ph: &str) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"name\":\"");
    escape_into(&mut s, &ev.name);
    s.push_str("\",\"cat\":\"");
    s.push_str(ev.track.name());
    s.push_str("\",\"ph\":\"");
    s.push_str(ph);
    s.push_str("\",\"pid\":1,\"tid\":");
    s.push_str(&ev.track.tid().to_string());
    s.push_str(",\"ts\":");
    s.push_str(&ev.ts.to_string());
    if ph == "i" {
        s.push_str(",\"s\":\"t\""); // thread-scoped instant
    }
    match &ev.kind {
        EventKind::Counter(v) => {
            s.push_str(",\"args\":{\"value\":");
            push_f64(&mut s, *v);
            s.push('}');
        }
        _ if !ev.args.is_empty() => {
            s.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                escape_into(&mut s, k);
                s.push_str("\":");
                push_arg(&mut s, v);
            }
            s.push('}');
        }
        _ => {}
    }
    s.push('}');
    s
}

fn push_arg(s: &mut String, v: &ArgValue) {
    match v {
        ArgValue::Int(i) => s.push_str(&i.to_string()),
        ArgValue::UInt(u) => s.push_str(&u.to_string()),
        ArgValue::Float(f) => push_f64(s, *f),
        ArgValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
        ArgValue::Str(t) => {
            s.push('"');
            escape_into(s, t);
            s.push('"');
        }
    }
}

/// JSON has no NaN/Infinity literals; encode them as strings.
fn push_f64(s: &mut String, f: f64) {
    if f.is_finite() {
        s.push_str(&format!("{f}"));
    } else {
        s.push('"');
        s.push_str(&format!("{f}"));
        s.push('"');
    }
}

fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, Tracer};
    use std::borrow::Cow;

    fn ev(track: Track, name: &'static str, ts: u64, kind: EventKind) -> Event {
        Event { track, name: Cow::Borrowed(name), ts, kind, args: Vec::new() }
    }

    #[test]
    fn minimal_trace_is_well_formed() {
        let t = Tracer::new(TraceConfig::enabled());
        {
            let _g = t.span(Track::Compiler, "dce");
            t.counter_at(Track::GpuSim, "occupancy", 10, 0.75);
        }
        let json = t.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("compiler (ticks)"));
        assert_balanced(&json);
    }

    /// Cheap structural JSON check: braces/brackets balance outside strings.
    fn assert_balanced(json: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn orphaned_end_is_skipped() {
        // Simulates ring eviction of a Begin: E without B must not export.
        let events = vec![
            ev(Track::Runtime, "lost", 5, EventKind::End),
            ev(Track::Runtime, "kept", 6, EventKind::Begin),
            ev(Track::Runtime, "kept", 7, EventKind::End),
        ];
        let json = to_json(&events);
        assert!(!json.contains("lost"));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
    }

    #[test]
    fn unclosed_span_gets_synthetic_end() {
        let events = vec![
            ev(Track::GpuSim, "kernel", 100, EventKind::Begin),
            ev(Track::GpuSim, "mem", 250, EventKind::Instant),
        ];
        let json = to_json(&events);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert!(json.contains("\"incomplete\":true"));
        assert!(json.contains("\"ts\":250"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut e = ev(Track::Svm, "alloc", 1, EventKind::Instant);
        e.args.push(("site", ArgValue::Str("a\"b\\c\nd".into())));
        let json = to_json(&[e]);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
        assert_balanced(&json);
    }

    #[test]
    fn nonfinite_floats_encode_as_strings() {
        let e = ev(Track::CpuSim, "miss_rate", 1, EventKind::Counter(f64::NAN));
        let json = to_json(&[e]);
        assert!(json.contains("\"value\":\"NaN\""));
    }
}
