//! Deterministic text summary of a trace.
//!
//! Aggregates spans per (track, name) — count, total, mean, and max
//! duration in the track's clock unit — plus counter statistics (count,
//! last, max). Rows are sorted by track then name, so two traces of the
//! same run render identically and diff cleanly.

use crate::{Event, EventKind, Track};
use std::collections::BTreeMap;

#[derive(Default)]
struct SpanStat {
    count: u64,
    total: u64,
    max: u64,
}

#[derive(Default)]
struct CounterStat {
    count: u64,
    last: f64,
    max: f64,
}

/// Render the summary table for a buffered event list.
pub fn render(events: &[Event]) -> String {
    let mut spans: BTreeMap<(Track, String), SpanStat> = BTreeMap::new();
    let mut counters: BTreeMap<(Track, String), CounterStat> = BTreeMap::new();
    // Per-track stack of open Begins; orphaned Ends (Begin evicted from the
    // ring) and never-closed Begins are ignored rather than miscounted.
    let mut open: BTreeMap<Track, Vec<(String, u64)>> = BTreeMap::new();

    for ev in events {
        match &ev.kind {
            EventKind::Begin => {
                open.entry(ev.track).or_default().push((ev.name.to_string(), ev.ts));
            }
            EventKind::End => {
                if let Some((name, start)) = open.entry(ev.track).or_default().pop() {
                    let stat = spans.entry((ev.track, name)).or_default();
                    let dur = ev.ts.saturating_sub(start);
                    stat.count += 1;
                    stat.total += dur;
                    stat.max = stat.max.max(dur);
                }
            }
            EventKind::Instant => {}
            EventKind::Counter(v) => {
                let stat = counters.entry((ev.track, ev.name.to_string())).or_default();
                stat.count += 1;
                stat.last = *v;
                stat.max = if stat.count == 1 { *v } else { stat.max.max(*v) };
            }
        }
    }

    let mut out = String::new();
    out.push_str("trace summary\n");

    if spans.is_empty() {
        out.push_str("  (no completed spans)\n");
    } else {
        let mut rows: Vec<[String; 6]> = vec![[
            "span".into(),
            "track".into(),
            "count".into(),
            "total".into(),
            "mean".into(),
            "max".into(),
        ]];
        for ((track, name), s) in &spans {
            let mean = s.total as f64 / s.count as f64;
            rows.push([
                name.clone(),
                format!("{} ({})", track.name(), track.clock_unit()),
                s.count.to_string(),
                s.total.to_string(),
                format!("{mean:.1}"),
                s.max.to_string(),
            ]);
        }
        push_table(&mut out, &rows);
    }

    if !counters.is_empty() {
        out.push_str("counters\n");
        let mut rows: Vec<[String; 6]> = vec![[
            "counter".into(),
            "track".into(),
            "samples".into(),
            "last".into(),
            "max".into(),
            String::new(),
        ]];
        for ((track, name), c) in &counters {
            rows.push([
                name.clone(),
                track.name().to_string(),
                c.count.to_string(),
                format!("{:.4}", c.last),
                format!("{:.4}", c.max),
                String::new(),
            ]);
        }
        push_table(&mut out, &rows);
    }

    out
}

fn push_table(out: &mut String, rows: &[[String; 6]]) {
    let mut widths = [0usize; 6];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        for (j, cell) in row.iter().enumerate() {
            if widths[j] == 0 {
                continue;
            }
            if j > 0 {
                out.push_str("  ");
            }
            // Left-align the name column, right-align numbers.
            if j == 0 || j == 1 {
                out.push_str(&format!("{cell:<w$}", w = widths[j]));
            } else {
                out.push_str(&format!("{cell:>w$}", w = widths[j]));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if i == 0 {
            out.push_str("  ");
            for (j, w) in widths.iter().enumerate() {
                if *w == 0 {
                    continue;
                }
                if j > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, Tracer};

    #[test]
    fn aggregates_spans_per_name() {
        let t = Tracer::new(TraceConfig::enabled());
        for _ in 0..3 {
            let _g = t.span(Track::Compiler, "dce");
        }
        {
            let _g = t.span(Track::Runtime, "offload");
        }
        let s = t.summary();
        assert!(s.contains("dce"), "{s}");
        assert!(s.contains("offload"), "{s}");
        // dce ran 3 times.
        let dce_line = s.lines().find(|l| l.trim_start().starts_with("dce")).unwrap();
        assert!(dce_line.split_whitespace().any(|f| f == "3"), "{dce_line}");
    }

    #[test]
    fn counters_report_last_and_max() {
        let t = Tracer::new(TraceConfig::enabled());
        t.counter_at(Track::GpuSim, "l3_hit_rate", 10, 0.5);
        t.counter_at(Track::GpuSim, "l3_hit_rate", 20, 0.25);
        let s = t.summary();
        assert!(s.contains("l3_hit_rate"), "{s}");
        assert!(s.contains("0.2500"), "{s}");
        assert!(s.contains("0.5000"), "{s}");
    }

    #[test]
    fn render_is_deterministic() {
        let mk = || {
            let t = Tracer::new(TraceConfig::enabled());
            let _a = t.span(Track::Svm, "alloc");
            t.counter(Track::CpuSim, "c", 1.0);
            drop(_a);
            t.summary()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn empty_trace_renders() {
        assert!(render(&[]).contains("no completed spans"));
    }
}
