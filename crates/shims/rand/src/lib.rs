//! Minimal, deterministic, API-compatible stand-in for the subset of the
//! `rand` 0.8 crate this workspace uses.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `rand` cannot be fetched. The workloads only need a seeded,
//! reproducible stream — they verify device results against native
//! references generated from the *same* stream — so any high-quality
//! deterministic generator is sufficient. This shim implements
//! xoshiro256** seeded through SplitMix64 (the reference seeding scheme).
//!
//! Supported surface: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom::shuffle`.
//! The value streams differ from the real `rand::StdRng` (ChaCha12); all
//! in-repo consumers regenerate their references from the same stream, so
//! nothing observes the difference.

/// Core 64-bit generator state (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding trait mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`a..b`, `a..=b`, integer or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.sample_f64() < p
    }

    /// A uniform `f64` in `[0, 1)` (53-bit mantissa method).
    fn sample_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The standard seeded generator, mirroring `rand::rngs::StdRng`.
pub mod rngs {
    /// Deterministic seeded generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) super::Xoshiro256);

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng(super::Xoshiro256 { s: [next(), next(), next(), next()] })
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * rng.sample_f64() as f32
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * rng.sample_f64()
    }
}

/// Slice utilities, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0..9);
            assert!(u < 9);
            let w: i32 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&w));
            let f: f32 = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
