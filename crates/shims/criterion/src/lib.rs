//! Minimal stand-in for the subset of the `criterion` crate this workspace
//! uses (the build environment cannot fetch registries).
//!
//! Benchmarks run each function a fixed, small number of iterations and
//! print mean wall-clock time per iteration. No statistics, warm-up
//! calibration, or HTML reports — this keeps `cargo bench` working and the
//! bench sources compiling unchanged; absolute numbers are indicative only.

use std::time::Instant;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { name, sample_size: 10 }
    }

    /// Register one benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one("", &id.into(), 10, f);
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.into(), self.sample_size, f);
    }

    /// Finish the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    nanos: u128,
}

impl Bencher {
    /// Time `f`, keeping its output alive (like `criterion::black_box`).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        let out = f();
        self.nanos += start.elapsed().as_nanos();
        self.iters += 1;
        black_box(out);
    }
}

fn run_one(group: &str, id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.iters == 0 {
        println!("  {label}: no iterations");
    } else {
        let mean_ns = b.nanos / b.iters as u128;
        println!("  {label}: {mean_ns} ns/iter ({} iters)", b.iters);
    }
}

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
