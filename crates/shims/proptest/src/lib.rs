//! Minimal, deterministic stand-in for the subset of the `proptest` crate
//! this workspace uses (the build environment cannot fetch registries).
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via `prop_assert!`'s formatting); reproduce by
//!   rerunning — generation is deterministic per test name.
//! * **Fixed seeding.** Each test's RNG is seeded from a hash of the test
//!   name, so failures reproduce exactly and CI runs are stable.
//! * **Strategies are direct generators** (`Strategy::generate`), not
//!   value trees.
//!
//! Supported surface: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `proptest::collection::vec`, and character-class string patterns of the
//! form `"[<class>]{lo,hi}"`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps interpreter-heavy
        // properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one property test, seeded from the test name.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Marker returned by [`any`]; generates the type's full uniform domain.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the canonical whole-domain strategy.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        // Arbitrary bit patterns: exercises NaN/inf/subnormal handling.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// String strategies: a `&str` is interpreted as a character-class pattern
/// `[<class>]{lo,hi}` (the only regex shape used in this workspace); any
/// other pattern is treated as a literal alphabet.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self);
        let n = rng.gen_range(lo..hi + 1);
        (0..n)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parse `[<chars/ranges>]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let fallback = |s: &str| (s.chars().collect::<Vec<_>>(), s.chars().count(), s.chars().count());
    let Some(rest) = pat.strip_prefix('[') else { return fallback(pat) };
    let Some(close) = rest.find(']') else { return fallback(pat) };
    let class = &rest[..close];
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Escapes: \n \t \r \\ and literal anything-else.
        if chars[i] == '\\' && i + 1 < chars.len() {
            alphabet.push(match chars[i + 1] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                c => c,
            });
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a as u32..=b as u32 {
                if let Some(c) = char::from_u32(c) {
                    alphabet.push(c);
                }
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    let reps = &rest[close + 1..];
    let (lo, hi) = reps
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .and_then(|r| {
            let (a, b) = r.split_once(',')?;
            Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
        })
        .unwrap_or((1, 1));
    if alphabet.is_empty() {
        alphabet.push('a');
    }
    (alphabet, lo, hi)
}

/// Everything tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property; panics with context (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// The `proptest!` block: wraps each contained `fn name(arg in strategy)`
/// into a `#[test]` that runs `cases` deterministic generations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 3u64..17, y in -4i32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_hold(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn string_patterns_hold(s in "[a-c]{0,5}") {
            prop_assert!(s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn printable_class_with_newline_parses() {
        let (alpha, lo, hi) = super::parse_class_pattern("[ -~\\n]{0,400}");
        assert_eq!((lo, hi), (0, 400));
        assert!(alpha.contains(&'\n'));
        assert!(alpha.contains(&'a'));
        assert!(alpha.contains(&'~'));
        assert!(alpha.contains(&' '));
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        use rand::Rng;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
