//! Shared command-line parsing for the bench binaries.
//!
//! Every binary used to hand-roll its own `--target`/`--scale`/`--system`
//! handling, with subtly different diagnostics (and one silently treating
//! a typo as a default). The flag *vocabulary* lives here instead, parsed
//! with uniform error messages, so `--target warp9` fails the same way in
//! every tool. The binaries keep their own flag *loops* — which flags a
//! tool accepts is still its business.

use concord_energy::SystemConfig;
use concord_runtime::Target;
use concord_workloads::Scale;
use std::fmt;

/// A bad flag or flag value, with the message shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parse a `--scale` value.
///
/// # Errors
///
/// Names the bad value and the accepted set.
pub fn parse_scale(s: &str) -> Result<Scale, ArgError> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        _ => Err(ArgError(format!("unknown scale `{s}` (expected tiny|small|medium)"))),
    }
}

/// Parse a `--target` value.
///
/// # Errors
///
/// Names the bad value and the accepted set.
pub fn parse_target(s: &str) -> Result<Target, ArgError> {
    Target::parse(s).ok_or_else(|| {
        ArgError(format!(
            "unknown target `{s}` (expected cpu|gpu|auto|native|hybrid|hybrid:<fraction>)"
        ))
    })
}

/// Parse a `--system` value; `both` yields Ultrabook then desktop (paper
/// figure order).
///
/// # Errors
///
/// Names the bad value and the accepted set.
pub fn parse_systems(s: &str) -> Result<Vec<SystemConfig>, ArgError> {
    match s {
        "ultrabook" => Ok(vec![SystemConfig::ultrabook()]),
        "desktop" => Ok(vec![SystemConfig::desktop()]),
        "both" => Ok(vec![SystemConfig::ultrabook(), SystemConfig::desktop()]),
        _ => Err(ArgError(format!("unknown system `{s}` (expected ultrabook|desktop|both)"))),
    }
}

/// The value following `flag` in `args`. `Ok(None)` when the flag is
/// absent.
///
/// # Errors
///
/// The flag is present but the value is missing.
pub fn value_of<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, ArgError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.as_str())),
            None => Err(ArgError(format!("flag `{flag}` needs a value"))),
        },
    }
}

/// Whether a boolean flag is present.
#[must_use]
pub fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parse-or-exit adaptor for binaries: prints the diagnostic to stderr and
/// exits 2 (the conventional usage-error status) on failure.
pub fn or_usage<T>(result: Result<T, ArgError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn scale_values_parse() {
        assert_eq!(parse_scale("tiny").unwrap(), Scale::Tiny);
        assert_eq!(parse_scale("small").unwrap(), Scale::Small);
        assert_eq!(parse_scale("medium").unwrap(), Scale::Medium);
    }

    #[test]
    fn bad_scale_is_diagnosed() {
        let e = parse_scale("huge").unwrap_err();
        assert_eq!(e.0, "unknown scale `huge` (expected tiny|small|medium)");
    }

    #[test]
    fn target_values_parse() {
        assert_eq!(parse_target("cpu").unwrap(), Target::Cpu);
        assert_eq!(parse_target("gpu").unwrap(), Target::Gpu);
        assert_eq!(parse_target("auto").unwrap(), Target::Auto);
        assert_eq!(parse_target("native").unwrap(), Target::Native);
        assert!(matches!(
            parse_target("hybrid:0.25").unwrap(),
            Target::Hybrid { gpu_fraction } if (gpu_fraction - 0.25).abs() < 1e-12
        ));
    }

    #[test]
    fn bad_target_is_diagnosed() {
        let e = parse_target("warp9").unwrap_err();
        assert!(e.0.contains("unknown target `warp9`"), "got: {e}");
        assert!(e.0.contains("cpu|gpu|auto|native|hybrid"), "message lists the accepted set");
        // A malformed hybrid fraction is a bad value too, not a panic.
        assert!(parse_target("hybrid:fast").is_err());
    }

    #[test]
    fn systems_parse_in_paper_order() {
        assert_eq!(parse_systems("ultrabook").unwrap().len(), 1);
        assert_eq!(parse_systems("desktop").unwrap().len(), 1);
        let both = parse_systems("both").unwrap();
        assert_eq!(both.len(), 2);
        assert_eq!(both[0].name, "ultrabook", "figures 7+8 come first");
        assert_eq!(both[1].name, "desktop");
    }

    #[test]
    fn bad_system_is_diagnosed_not_defaulted() {
        // The old fig7_to_10 parser silently ran `both` on a typo.
        let e = parse_systems("mainframe").unwrap_err();
        assert_eq!(e.0, "unknown system `mainframe` (expected ultrabook|desktop|both)");
    }

    #[test]
    fn value_of_finds_values_and_missing_values() {
        let a = args(&["--target", "gpu", "--json", "out.json"]);
        assert_eq!(value_of(&a, "--target").unwrap(), Some("gpu"));
        assert_eq!(value_of(&a, "--json").unwrap(), Some("out.json"));
        assert_eq!(value_of(&a, "--scale").unwrap(), None);
        let e = value_of(&args(&["--target"]), "--target").unwrap_err();
        assert_eq!(e.0, "flag `--target` needs a value");
    }

    #[test]
    fn flag_presence() {
        let a = args(&["--tiny", "--json", "x"]);
        assert!(flag_present(&a, "--tiny"));
        assert!(!flag_present(&a, "--medium"));
    }
}
