//! # concord-bench
//!
//! Harness that regenerates every table and figure of the Concord paper's
//! evaluation (§5) on the simulated systems:
//!
//! * `table1` — workload origins and static characteristics.
//! * `fig6` — percentage of control-flow and memory IR operations.
//! * `fig7_to_10` — speedup and energy savings vs multicore CPU for the
//!   four configurations (`GPU`, `GPU+PTROPT`, `GPU+L3OPT`, `GPU+ALL`) on
//!   both systems.
//! * `svm_overhead` — §5.4: Concord's software SVM vs a hand-flattened
//!   OpenCL-1.2-style port of the Raytracer.
//!
//! Absolute numbers come from the simulators and cannot match the paper's
//! Haswell silicon; the harness targets the *shape* of the results.

use concord_compiler::GpuConfig;
use concord_energy::SystemConfig;
use concord_runtime::{RuntimeError, Target};
use concord_workloads::{all_workloads, measure, Measurement, Scale, Workload};

pub mod cli;

/// The four GPU configurations evaluated in Figures 7–10, in paper order.
pub fn configurations(gpu_cores: u32) -> [(&'static str, GpuConfig); 4] {
    [
        ("GPU", GpuConfig::baseline(gpu_cores)),
        ("GPU+PTROPT", GpuConfig::ptropt(gpu_cores)),
        ("GPU+L3OPT", GpuConfig::l3opt(gpu_cores)),
        ("GPU+ALL", GpuConfig::all(gpu_cores)),
    ]
}

/// One workload's row of Figures 7–10: CPU baseline + four GPU configs.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Workload name.
    pub name: &'static str,
    /// Multicore CPU measurement (the baseline).
    pub cpu: Measurement,
    /// `(config name, measurement)` for the four GPU configurations,
    /// each run under the row's device target (GPU, hybrid, or auto).
    pub gpu: Vec<(&'static str, Measurement)>,
}

impl FigureRow {
    /// Speedup of configuration `i` over the CPU baseline (Figures 7/9).
    pub fn speedup(&self, i: usize) -> f64 {
        self.cpu.totals.seconds / self.gpu[i].1.totals.seconds
    }

    /// Energy savings of configuration `i` (Figures 8/10).
    pub fn energy_savings(&self, i: usize) -> f64 {
        self.cpu.totals.joules / self.gpu[i].1.totals.joules
    }

    /// Whether every measurement in the row verified.
    pub fn all_verified(&self) -> bool {
        self.cpu.verified && self.gpu.iter().all(|(_, m)| m.verified)
    }
}

/// Run one workload through the CPU baseline and all four GPU
/// configurations on `system`. `target` is the device policy the four
/// configured runs use — `Target::Gpu` for the paper's figures, or
/// `Target::Hybrid`/`Target::Auto` to evaluate the work-partitioning
/// scheduler against the same CPU baseline.
///
/// # Errors
///
/// Compile, allocation, or trap errors from any run.
pub fn figure_row(
    workload: &dyn Workload,
    system: SystemConfig,
    scale: Scale,
    target: Target,
) -> Result<FigureRow, RuntimeError> {
    let name = workload.spec().name;
    // The CPU baseline is independent of the GPU config; use ALL.
    let cpu = measure(workload, system, GpuConfig::all(system.gpu.eus), scale, Target::Cpu)?;
    let mut gpu = Vec::new();
    for (label, cfg) in configurations(system.gpu.eus) {
        let m = measure(workload, system, cfg, scale, target)?;
        gpu.push((label, m));
    }
    Ok(FigureRow { name, cpu, gpu })
}

/// Run all nine workloads on `system` (Figures 7+8 for the Ultrabook,
/// 9+10 for the desktop) under `target`.
///
/// # Errors
///
/// Propagates the first failing workload run.
pub fn figure_rows(
    system: SystemConfig,
    scale: Scale,
    target: Target,
) -> Result<Vec<FigureRow>, RuntimeError> {
    figure_rows_for(&all_workloads(), system, scale, target)
}

/// [`figure_rows`] over an explicit workload set — the `--workload`
/// selector's entry point, which lets the figure harness measure the
/// frontier (`parallel_worklist_hetero`) workloads with the same CPU
/// baseline and GPU configurations as the Table 1 nine.
///
/// # Errors
///
/// Propagates the first failing workload run.
pub fn figure_rows_for(
    workloads: &[Box<dyn Workload>],
    system: SystemConfig,
    scale: Scale,
    target: Target,
) -> Result<Vec<FigureRow>, RuntimeError> {
    workloads.iter().map(|w| figure_row(w.as_ref(), system, scale, target)).collect()
}

/// Geometric mean helper for figure summaries.
pub fn geomean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in vals {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&mut out, &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    fn four_configurations_in_paper_order() {
        let cfgs = configurations(7);
        assert_eq!(cfgs[0].0, "GPU");
        assert_eq!(cfgs[1].0, "GPU+PTROPT");
        assert_eq!(cfgs[2].0, "GPU+L3OPT");
        assert_eq!(cfgs[3].0, "GPU+ALL");
        assert_eq!(cfgs[0].1.strategy, concord_compiler::Strategy::Lazy);
        assert_eq!(cfgs[1].1.strategy, concord_compiler::Strategy::Hybrid);
        assert!(!cfgs[1].1.l3opt);
        assert!(cfgs[3].1.l3opt);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["xxx".into(), "y".into()], vec!["z".into(), "wwww".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    bb"));
    }

    #[test]
    fn one_figure_row_end_to_end() {
        // Smoke test: BFS through all five measurements on the Ultrabook.
        let w = concord_workloads::bfs::Bfs;
        let row = figure_row(&w, SystemConfig::ultrabook(), Scale::Tiny, Target::Gpu).unwrap();
        assert!(row.all_verified(), "all configurations must verify");
        for i in 0..4 {
            assert!(row.speedup(i) > 0.0);
            assert!(row.energy_savings(i) > 0.0);
        }
    }

    #[test]
    fn hybrid_and_auto_rows_verify() {
        let w = concord_workloads::bfs::Bfs;
        for target in [Target::Hybrid { gpu_fraction: 0.5 }, Target::Auto] {
            let row = figure_row(&w, SystemConfig::ultrabook(), Scale::Tiny, target).unwrap();
            assert!(row.all_verified(), "{target} row must verify");
        }
    }
}
