//! Regenerates Figures 7–10: runtime speedup and energy savings relative
//! to multicore CPU execution, for the four GPU configurations, on the
//! Ultrabook (Figures 7+8) and the desktop (Figures 9+10).
//!
//! Usage:
//!
//! ```text
//! fig7_to_10 [--system ultrabook|desktop|both] [--tiny|--small|--medium]
//!            [--target gpu|hybrid|hybrid:<fraction>|auto]
//!            [--host-threads N]
//! ```
//!
//! `--target` selects the device policy of the four configured runs:
//! `gpu` (default) reproduces the paper's figures, `hybrid`/`auto`
//! evaluate the work-partitioning scheduler against the same CPU
//! baseline.
//!
//! `--host-threads N` fans the simulated cores and warps across N OS
//! threads (equivalent to setting `CONCORD_HOST_THREADS=N`). Every number
//! in the tables is identical for any N; only wall-clock time changes.

use concord_bench::{figure_rows, geomean, render_table, FigureRow};
use concord_energy::SystemConfig;
use concord_runtime::Target;
use concord_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(n) = args.iter().position(|a| a == "--host-threads").and_then(|i| args.get(i + 1)) {
        if n.parse::<usize>().map_or(true, |v| v == 0) {
            eprintln!("--host-threads needs a positive integer, got `{n}`");
            std::process::exit(2);
        }
        // Safe: set before any simulator thread exists (single-threaded main).
        std::env::set_var(concord_pool::HOST_THREADS_ENV, n);
    }
    let scale = if args.iter().any(|a| a == "--tiny") {
        Scale::Tiny
    } else if args.iter().any(|a| a == "--medium") {
        Scale::Medium
    } else {
        Scale::Small
    };
    let system_arg = args
        .iter()
        .position(|a| a == "--system")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("both");
    let systems: Vec<SystemConfig> = match system_arg {
        "ultrabook" => vec![SystemConfig::ultrabook()],
        "desktop" => vec![SystemConfig::desktop()],
        _ => vec![SystemConfig::ultrabook(), SystemConfig::desktop()],
    };
    let target = args
        .iter()
        .position(|a| a == "--target")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            Target::parse(s).unwrap_or_else(|| {
                eprintln!("unknown target `{s}` (use gpu|hybrid|hybrid:<fraction>|auto)");
                std::process::exit(2);
            })
        })
        .unwrap_or(Target::Gpu);
    for system in systems {
        let (fig_speed, fig_energy) = if system.name == "ultrabook" { (7, 8) } else { (9, 10) };
        eprintln!("running {} ({} workloads x 5 measurements)...", system.name, 9);
        let rows = figure_rows(system, scale, target).expect("figure rows");
        print_figure(
            &format!(
                "Figure {fig_speed}: runtime speedup of {target} vs multicore CPU ({})",
                system.name
            ),
            &rows,
            FigureRow::speedup,
        );
        print_figure(
            &format!(
                "Figure {fig_energy}: energy savings of {target} vs multicore CPU ({})",
                system.name
            ),
            &rows,
            FigureRow::energy_savings,
        );
    }
}

fn print_figure(title: &str, rows: &[FigureRow], metric: fn(&FigureRow, usize) -> f64) {
    println!("{title}\n");
    let mut table = Vec::new();
    for row in rows {
        assert!(row.all_verified(), "{}: verification failed", row.name);
        let mut cells = vec![row.name.to_string()];
        for i in 0..4 {
            cells.push(format!("{:.2}x", metric(row, i)));
        }
        table.push(cells);
    }
    let mut means = vec!["geomean".to_string()];
    for i in 0..4 {
        means.push(format!("{:.2}x", geomean(rows.iter().map(|r| metric(r, i)))));
    }
    table.push(means);
    print!("{}", render_table(&["Benchmark", "GPU", "GPU+PTROPT", "GPU+L3OPT", "GPU+ALL"], &table));
    println!();
}
