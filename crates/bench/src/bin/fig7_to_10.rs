//! Regenerates Figures 7–10: runtime speedup and energy savings relative
//! to multicore CPU execution, for the four GPU configurations, on the
//! Ultrabook (Figures 7+8) and the desktop (Figures 9+10).
//!
//! Usage:
//!
//! ```text
//! fig7_to_10 [--system ultrabook|desktop|both] [--tiny|--small|--medium]
//!            [--target gpu|native|hybrid|hybrid:<fraction>|auto]
//!            [--workload all|worklist|NAME[,NAME...]]
//!            [--host-threads N] [--json FILE]
//! ```
//!
//! `--target` selects the device policy of the four configured runs:
//! `gpu` (default) reproduces the paper's figures, `hybrid`/`auto`
//! evaluate the work-partitioning scheduler against the same CPU
//! baseline, and `native` measures the JIT backend (x86-64 Linux only —
//! elsewhere the run exits with a structured error).
//!
//! `--workload` selects the benchmarked set: `all` (default) is the
//! paper's Table 1 nine, `worklist` is the four frontier workloads
//! (FrontierBFS, WorklistCC, DeltaSSSP, KCore — `parallel_worklist_hetero`
//! end to end), and a comma-separated name list picks freely from both
//! sets.
//!
//! `--host-threads N` fans the simulated cores and warps across N OS
//! threads (equivalent to setting `CONCORD_HOST_THREADS=N`). Every number
//! in the tables is identical for any N; only wall-clock time changes.
//!
//! `--json FILE` additionally writes one machine-readable row per
//! (system, workload, configuration) pair — CPU baselines included — in
//! the schema documented in EXPERIMENTS.md.

use concord_bench::cli::{flag_present, or_usage, parse_systems, parse_target, value_of};
use concord_bench::{figure_rows_for, geomean, render_table, FigureRow};
use concord_energy::SystemConfig;
use concord_runtime::Target;
use concord_serve::json::Json;
use concord_workloads::{all_workloads, worklist_workloads, Measurement, Scale, Workload};

/// Resolve the `--workload` selector against both workload sets.
fn select_workloads(arg: Option<&str>) -> Vec<Box<dyn Workload>> {
    let frontier = || worklist_workloads().into_iter().map(|w| w as Box<dyn Workload>);
    match arg {
        None | Some("all") => all_workloads(),
        Some("worklist") => frontier().collect(),
        Some(list) => {
            let pool: Vec<Box<dyn Workload>> =
                all_workloads().into_iter().chain(frontier()).collect();
            let mut picked = Vec::new();
            for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                match pool.iter().position(|w| w.spec().name.eq_ignore_ascii_case(name)) {
                    Some(i) => {
                        if !picked.contains(&i) {
                            picked.push(i);
                        }
                    }
                    None => {
                        let known: Vec<&str> = pool.iter().map(|w| w.spec().name).collect();
                        eprintln!(
                            "unknown workload `{name}` (expected all, worklist, or one of: {})",
                            known.join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            if picked.is_empty() {
                eprintln!("--workload selected nothing");
                std::process::exit(2);
            }
            picked.sort_unstable();
            let mut pool: Vec<Option<Box<dyn Workload>>> = pool.into_iter().map(Some).collect();
            picked.into_iter().map(|i| pool[i].take().expect("unique index")).collect()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(n) = or_usage(value_of(&args, "--host-threads")) {
        if n.parse::<usize>().map_or(true, |v| v == 0) {
            eprintln!("--host-threads needs a positive integer, got `{n}`");
            std::process::exit(2);
        }
        // Safe: set before any simulator thread exists (single-threaded main).
        std::env::set_var(concord_pool::HOST_THREADS_ENV, n);
    }
    let scale = if flag_present(&args, "--tiny") {
        Scale::Tiny
    } else if flag_present(&args, "--medium") {
        Scale::Medium
    } else {
        Scale::Small
    };
    let systems: Vec<SystemConfig> =
        or_usage(parse_systems(or_usage(value_of(&args, "--system")).unwrap_or("both")));
    let target = match or_usage(value_of(&args, "--target")) {
        Some(s) => or_usage(parse_target(s)),
        None => Target::Gpu,
    };
    let json_path = or_usage(value_of(&args, "--json")).map(str::to_string);
    let workloads = select_workloads(or_usage(value_of(&args, "--workload")));

    let mut json_rows: Vec<Json> = Vec::new();
    for system in systems {
        let (fig_speed, fig_energy) = if system.name == "ultrabook" { (7, 8) } else { (9, 10) };
        eprintln!("running {} ({} workloads x 5 measurements)...", system.name, workloads.len());
        let rows = figure_rows_for(&workloads, system, scale, target).unwrap_or_else(|e| {
            // `native` on an unsupported host lands here as a structured
            // runtime error, not a panic.
            eprintln!("fig7_to_10: {e}");
            std::process::exit(1);
        });
        if json_path.is_some() {
            collect_json_rows(&mut json_rows, &rows, &system, target, scale);
        }
        print_figure(
            &format!(
                "Figure {fig_speed}: runtime speedup of {target} vs multicore CPU ({})",
                system.name
            ),
            &rows,
            FigureRow::speedup,
        );
        print_figure(
            &format!(
                "Figure {fig_energy}: energy savings of {target} vs multicore CPU ({})",
                system.name
            ),
            &rows,
            FigureRow::energy_savings,
        );
    }
    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("schema", Json::str("concord-fig7_to_10/v1")),
            ("rows", Json::Arr(json_rows)),
        ]);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("cannot write json file `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}

/// One JSON row per measurement in `rows`, CPU baselines included (the
/// baseline's speedup/energy_savings are 1.0 by construction).
fn collect_json_rows(
    out: &mut Vec<Json>,
    rows: &[FigureRow],
    system: &SystemConfig,
    target: Target,
    scale: Scale,
) {
    let row_json = |name: &str, config: &str, tgt: &str, m: &Measurement, speedup, savings| {
        Json::obj(vec![
            ("workload", Json::str(name)),
            ("config", Json::str(config)),
            ("system", Json::str(system.name)),
            ("target", Json::str(tgt)),
            ("scale", Json::str(format!("{scale:?}").to_lowercase())),
            ("seconds", m.totals.seconds.into()),
            ("joules", m.totals.joules.into()),
            ("speedup", Json::Num(speedup)),
            ("energy_savings", Json::Num(savings)),
            ("verified", m.verified.into()),
        ])
    };
    for row in rows {
        out.push(row_json(row.name, "CPU", "cpu", &row.cpu, 1.0, 1.0));
        for (i, (config, m)) in row.gpu.iter().enumerate() {
            out.push(row_json(
                row.name,
                config,
                &target.to_string(),
                m,
                row.speedup(i),
                row.energy_savings(i),
            ));
        }
    }
}

fn print_figure(title: &str, rows: &[FigureRow], metric: fn(&FigureRow, usize) -> f64) {
    println!("{title}\n");
    let mut table = Vec::new();
    for row in rows {
        assert!(row.all_verified(), "{}: verification failed", row.name);
        let mut cells = vec![row.name.to_string()];
        for i in 0..4 {
            cells.push(format!("{:.2}x", metric(row, i)));
        }
        table.push(cells);
    }
    let mut means = vec!["geomean".to_string()];
    for i in 0..4 {
        means.push(format!("{:.2}x", geomean(rows.iter().map(|r| metric(r, i)))));
    }
    table.push(means);
    print!("{}", render_table(&["Benchmark", "GPU", "GPU+PTROPT", "GPU+L3OPT", "GPU+ALL"], &table));
    println!();
}
