//! Regenerates Figure 6: percentage of IR operations that are control-flow
//! and memory related, per workload (the paper's static irregularity
//! measure, collected at the IR level over each kernel's closure).

use concord_ir::stats::kernel_closure_stats;
use concord_workloads::all_workloads;

fn main() {
    let mut rows = Vec::new();
    for w in all_workloads() {
        let spec = w.spec();
        let lp = concord_frontend::compile(spec.source).expect("workload compiles");
        // Measure the optimized CPU module, like compiling with -O2.
        let mut module = lp.module.clone();
        concord_compiler::optimize_for_cpu(&mut module);
        let k = lp.kernel(spec.kernel_class).expect("kernel exists");
        let mut stats = kernel_closure_stats(&module, k.operator_fn);
        if let Some(j) = k.join_fn {
            stats = stats + kernel_closure_stats(&module, j);
        }
        rows.push(vec![
            spec.name.to_string(),
            format!("{:>5.1}%", stats.control_pct()),
            format!("{:>5.1}%", stats.memory_pct()),
            format!("{:>5.1}%", 100.0 - stats.irregularity_pct()),
            format!("{:>5.1}%", stats.irregularity_pct()),
            format!("{}", stats.total()),
        ]);
    }
    println!("Figure 6: percent of IR operations that are control-flow and memory related\n");
    print!(
        "{}",
        concord_bench::render_table(
            &["Benchmark", "control", "memory", "remaining", "control+memory", "total ops"],
            &rows
        )
    );
    println!();
    println!(
        "The paper reads >25% control+memory as 'more than one in four instructions is \
         control flow or memory'."
    );
}
