//! Structured profiling of one workload run via `concord-trace`.
//!
//! Runs a paper workload with tracing enabled, writes the collected events
//! as a Chrome trace-event JSON file (load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>), and prints the deterministic text summary.
//!
//! ```text
//! cargo run -p concord-bench --bin profile -- --workload raytracer
//! cargo run -p concord-bench --bin profile -- --workload bfs --target cpu --scale small
//! cargo run -p concord-bench --bin profile -- --workload sssp --out sssp.json --wall-clock
//! ```

use concord_bench::cli::{or_usage, parse_scale, parse_target};
use concord_runtime::{Concord, Options, Target};
use concord_trace::TraceConfig;
use concord_workloads::{all_workloads, Scale, Workload};

struct Cli {
    workload: String,
    scale: Scale,
    target: Target,
    out: String,
    wall_clock: bool,
}

fn usage_text() -> String {
    format!(
        "usage: profile [--workload NAME] [--scale tiny|small|medium] \
         [--target cpu|gpu|native|hybrid|hybrid:<fraction>|auto] [--out FILE] [--wall-clock]\n\
         workloads: {}",
        all_workloads().iter().map(|w| w.spec().name.to_lowercase()).collect::<Vec<_>>().join(", ")
    )
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        workload: "raytracer".to_string(),
        scale: Scale::Tiny,
        target: Target::Gpu,
        out: "trace.json".to_string(),
        wall_clock: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" | "-w" => cli.workload = value(&mut args).to_lowercase(),
            "--scale" | "-s" => cli.scale = or_usage(parse_scale(&value(&mut args))),
            "--target" | "-t" => cli.target = or_usage(parse_target(&value(&mut args))),
            "--out" | "-o" => cli.out = value(&mut args),
            "--wall-clock" => cli.wall_clock = true,
            "--help" | "-h" => {
                println!("{}", usage_text());
                std::process::exit(0);
            }
            _ => usage(),
        }
    }
    cli
}

fn find_workload(name: &str) -> Box<dyn Workload> {
    all_workloads().into_iter().find(|w| w.spec().name.to_lowercase() == name).unwrap_or_else(
        || {
            eprintln!("unknown workload `{name}`");
            usage()
        },
    )
}

fn main() {
    let cli = parse_args();
    let workload = find_workload(&cli.workload);
    let spec = workload.spec();
    let mut trace = TraceConfig::enabled();
    if cli.wall_clock {
        trace = trace.with_wall_clock();
    }
    let opts = Options { trace, ..Options::default() };
    let system = concord_energy::SystemConfig::ultrabook();

    // Runtime failures — `--target native` on an unsupported host
    // included — exit with a structured diagnostic, not a panic.
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("profile: {e}");
        std::process::exit(1);
    };
    let mut cc = Concord::new(system, spec.source, opts).unwrap_or_else(|e| fail(&e));
    let mut inst = workload.build(&mut cc, cli.scale).unwrap_or_else(|e| fail(&e));
    let totals = inst.run(&mut cc, cli.target).unwrap_or_else(|e| fail(&e));
    let verified = inst.verify(&cc).is_ok();

    let json = cc.tracer().chrome_json();
    if let Err(e) = std::fs::write(&cli.out, &json) {
        eprintln!("cannot write trace file `{}`: {e}", cli.out);
        std::process::exit(1);
    }

    println!(
        "{} on {} ({:?}): {:.3} ms ({:.3} ms JIT), {:.3} J, {} offloads, verified: {}",
        spec.name,
        cli.target,
        cli.scale,
        totals.seconds * 1e3,
        totals.jit_seconds * 1e3,
        totals.joules,
        totals.offloads,
        verified,
    );
    let dropped = cc.tracer().dropped();
    if dropped > 0 {
        println!("note: ring buffer dropped {dropped} oldest events (raise TraceConfig capacity)");
    }
    println!(
        "wrote {} ({} events) — load it at chrome://tracing or https://ui.perfetto.dev\n",
        cli.out,
        cc.tracer().events().len(),
    );
    print!("{}", cc.tracer().summary());
}
