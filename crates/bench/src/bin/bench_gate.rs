//! CI latency-regression gate over `bench_client` summaries.
//!
//! ```text
//! bench_gate --current BENCH_serve.json [--history BENCH_history.jsonl]
//!            [--threshold 1.25] [--floor-ms 0.5] [--seed-baseline]
//! ```
//!
//! Reads the current run's JSON summary and a history file of one summary
//! per line (ci.sh appends each gated run after it passes). History
//! entries count as baselines only when their configuration key — mode,
//! clients, iters, target, host threads — matches the current run's, so a
//! mixed-session run is never judged against a standard one.
//!
//! The gate fails (exit 1) when the current p99 exceeds the best matching
//! baseline p99 by more than `--threshold` (default 1.25, i.e. a >25%
//! regression) **and** sits above the absolute floor (default 0.5 ms —
//! sub-floor latencies are noise-dominated on a loopback socket, and a
//! 25% swing there is not a signal).
//!
//! A configuration with **no matching baseline is an error**, not a free
//! pass: an ungated run in CI means the gate silently stopped gating
//! (typically because a config-key field changed). The first run of a
//! genuinely new configuration is seeded explicitly with
//! `--seed-baseline`, which passes loudly so the caller's history append
//! establishes the baseline.

use concord_serve::json::{parse, Json};
use std::process::ExitCode;

/// The configuration key under which runs are comparable.
fn config_key(doc: &Json) -> String {
    let s = |name: &str| doc.get(name).and_then(Json::as_str).unwrap_or("?").to_string();
    let u = |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0);
    format!(
        "mode={} clients={} iters={} target={} host_threads={}",
        s("mode"),
        u("clients"),
        u("iters"),
        s("target"),
        u("host_threads"),
    )
}

fn value_of<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: bench_gate --current FILE [--history FILE] [--threshold X] [--floor-ms X] \
             [--seed-baseline]"
        );
        return ExitCode::SUCCESS;
    }
    let seed_baseline = args.iter().any(|a| a == "--seed-baseline");
    let Some(current_path) = value_of(&args, "--current") else {
        eprintln!("bench_gate: missing required flag --current FILE");
        return ExitCode::from(2);
    };
    let history_path = value_of(&args, "--history").unwrap_or("BENCH_history.jsonl");
    let threshold: f64 = match value_of(&args, "--threshold").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(1.25),
        Err(_) => {
            eprintln!("bench_gate: --threshold must be a number");
            return ExitCode::from(2);
        }
    };
    let floor_ms: f64 = match value_of(&args, "--floor-ms").map(str::parse).transpose() {
        Ok(f) => f.unwrap_or(0.5),
        Err(_) => {
            eprintln!("bench_gate: --floor-ms must be a number");
            return ExitCode::from(2);
        }
    };

    let current_text = match std::fs::read_to_string(current_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: cannot read `{current_path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match parse(current_text.trim()) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_gate: `{current_path}` is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(p99) = current.get("p99_ms").and_then(Json::as_f64) else {
        eprintln!("bench_gate: `{current_path}` has no numeric `p99_ms`");
        return ExitCode::from(2);
    };
    let key = config_key(&current);

    // A missing history file is a first run, not an error.
    let history = std::fs::read_to_string(history_path).unwrap_or_default();
    let baselines: Vec<f64> = history
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter_map(|l| parse(l).ok())
        .filter(|doc| config_key(doc) == key)
        .filter_map(|doc| doc.get("p99_ms").and_then(Json::as_f64))
        .filter(|v| *v > 0.0)
        .collect();
    let Some(best) =
        baselines.iter().copied().fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.min(v))))
    else {
        if seed_baseline {
            println!("bench_gate: SEEDING baseline for [{key}] in {history_path}: p99 {p99:.3} ms");
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "bench_gate: FAIL — no baseline for [{key}] in {history_path}; an ungated run is a \
             gate hole, not a pass. Rerun with --seed-baseline to establish this configuration."
        );
        return ExitCode::FAILURE;
    };

    let limit = best * threshold;
    println!(
        "bench_gate: [{key}] p99 {p99:.3} ms vs best-of-{} baseline {best:.3} ms \
         (limit {limit:.3} ms, floor {floor_ms:.3} ms)",
        baselines.len()
    );
    if p99 > limit && p99 > floor_ms {
        eprintln!(
            "bench_gate: FAIL — p99 regressed {:.1}% over the best baseline (> {:.0}% allowed)",
            (p99 / best - 1.0) * 100.0,
            (threshold - 1.0) * 100.0,
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: ok");
    ExitCode::SUCCESS
}
