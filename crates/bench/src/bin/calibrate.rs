//! Internal calibration dump: raw per-workload times and counters for both
//! devices (not a paper figure; used to tune the timing model).
use concord_energy::SystemConfig;
use concord_runtime::Target;
use concord_workloads::{all_workloads, measure, Scale};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("--small") => Scale::Small,
        _ => Scale::Tiny,
    };
    for system in [SystemConfig::ultrabook(), SystemConfig::desktop()] {
        println!("== {} ==", system.name);
        for w in all_workloads() {
            let name = w.spec().name;
            let cfg = concord_compiler::GpuConfig::all(system.gpu.eus);
            let cpu = measure(w.as_ref(), system, cfg, scale, Target::Cpu).unwrap();
            let gpu = measure(w.as_ref(), system, cfg, scale, Target::Gpu).unwrap();
            println!(
                "{name:<20} cpu {:>9.3}ms | gpu {:>9.3}ms busy={:<4.2} winsts={:<9} tx={:<9} cont={:<8} trans={:<9} | speed {:>5.2}x energy {:>5.2}x off={} v={}{}",
                cpu.totals.seconds*1e3,
                gpu.totals.seconds*1e3, gpu.totals.avg_busy_fraction(),
                gpu.totals.insts, gpu.totals.transactions, gpu.totals.contended,
                gpu.totals.translations,
                cpu.totals.seconds/gpu.totals.seconds,
                cpu.totals.joules/gpu.totals.joules,
                gpu.totals.offloads,
                cpu.verified as u8, gpu.verified as u8,
            );
        }
    }
}
