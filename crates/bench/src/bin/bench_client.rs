//! Load generator for `concord-serve`: N concurrent clients run mixed
//! workloads (some sharing kernel source, to exercise the cross-session
//! JIT-artifact cache) and report throughput and latency percentiles.
//!
//! ```text
//! bench_client [--addr HOST:PORT] [--clients N] [--iters N]
//!              [--workers N] [--queue N]
//!              [--target cpu|gpu|auto|native|hybrid[:f]] [--json FILE]
//! ```
//!
//! Without `--addr`, an in-process loopback server is spawned (sized by
//! `--workers`/`--queue`) and its final statistics — artifact-cache hits
//! included — are printed after the run.
//!
//! `--target` sets the session-default launch target for every client
//! (`auto` when absent); `native` on an unsupported server host makes the
//! first launch fail with the server's structured `native_unsupported`
//! error. The latency summary is also written as JSON — `BENCH_serve.json`
//! by default, `--json FILE` to relocate — in the
//! `concord-bench_client/v1` schema documented in EXPERIMENTS.md.

use concord_bench::cli::{or_usage, parse_target, value_of, ArgError};
use concord_bench::render_table;
use concord_serve::json::Json;
use concord_serve::{Launch, ServeConfig, Server, SessionHandle, SessionOptions};
use std::time::{Duration, Instant};

/// Element-wise kernel; every even-numbered client opens a session with
/// this source, so all but the first open hits the artifact cache.
const DOUBLE: &str = r#"
    class Double {
    public:
        int* out; int n;
        void operator()(int i) { out[i] = i * 2 + 1; }
    };
"#;

/// Reduction kernel shared by the odd-numbered clients.
const SUM: &str = r#"
    class Sum {
    public:
        float* data; float acc;
        void operator()(int i) { acc += data[i]; }
        void join(Sum* other) { acc += other->acc; }
    };
"#;

const N: u32 = 256;

fn usage_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    or_usage(value_of(args, flag)).map(|v| {
        or_usage(
            v.parse::<T>().map_err(|_| ArgError(format!("flag `{flag}` has a bad value `{v}`"))),
        )
    })
}

/// One client's run: open a session (with `target` as the session-default
/// launch target when given), issue `iters` launches, return the
/// per-request latencies.
fn run_client(
    addr: std::net::SocketAddr,
    client: usize,
    iters: usize,
    target: Option<&str>,
) -> Vec<Duration> {
    let even = client.is_multiple_of(2);
    let source = if even { DOUBLE } else { SUM };
    let opts = SessionOptions { target: target.map(str::to_string), ..SessionOptions::default() };
    let mut s = SessionHandle::connect(addr, source, &opts).expect("open session");
    let mut latencies = Vec::with_capacity(iters);
    if even {
        let out = s.malloc(u64::from(N) * 4).expect("alloc");
        let body = s.malloc(16).expect("alloc");
        s.write_ptr(body, out).expect("write");
        s.write_i32(body + 8, N as i32).expect("write");
        for _ in 0..iters {
            let start = Instant::now();
            let report = s.parallel_for(&Launch::new("Double", body, N)).expect("launch");
            latencies.push(start.elapsed());
            assert!(report.exec_seconds > 0.0);
        }
        let last = i64::from(N) - 1;
        assert_eq!(s.read_i32(out + u64::from(N - 1) * 4).expect("read"), (last * 2 + 1) as i32);
    } else {
        let data = s.malloc(u64::from(N) * 4).expect("alloc");
        for i in 0..N {
            s.write_f32(data + u64::from(i) * 4, (i % 5) as f32).expect("write");
        }
        let body = s.malloc(16).expect("alloc");
        s.write_ptr(body, data).expect("write");
        for _ in 0..iters {
            s.write_f32(body + 8, 0.0).expect("reset acc");
            let start = Instant::now();
            let report = s.parallel_reduce(&Launch::new("Sum", body, N)).expect("launch");
            latencies.push(start.elapsed());
            assert!(report.exec_seconds > 0.0);
        }
    }
    s.close().expect("close session");
    latencies
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: bench_client [--addr HOST:PORT] [--clients N] [--iters N] \
             [--workers N] [--queue N] \
             [--target cpu|gpu|auto|native|hybrid[:f]] [--json FILE]"
        );
        return;
    }
    let clients = usage_value::<usize>(&args, "--clients").unwrap_or(4).max(1);
    let iters = usage_value::<usize>(&args, "--iters").unwrap_or(16).max(1);
    // Validate the target vocabulary client-side (uniform diagnostics with
    // the other bench tools), but ship the raw string: the server owns the
    // parse that matters.
    let target = or_usage(value_of(&args, "--target"));
    if let Some(t) = target {
        or_usage(parse_target(t));
    }
    let json_path = or_usage(value_of(&args, "--json")).unwrap_or("BENCH_serve.json");

    // Either aim at an external daemon or spin up a loopback server.
    let local = match or_usage(value_of(&args, "--addr")) {
        Some(_) => None,
        None => {
            let mut config = ServeConfig::default();
            if let Some(w) = usage_value::<usize>(&args, "--workers") {
                config.workers = w.max(1);
            }
            if let Some(q) = usage_value::<usize>(&args, "--queue") {
                config.queue_depth = q.max(1);
            }
            Some(Server::bind(&config).expect("bind loopback server"))
        }
    };
    let addr = match &local {
        Some(server) => server.addr(),
        None => or_usage(value_of(&args, "--addr")).unwrap().parse().unwrap_or_else(|e| {
            eprintln!("bad --addr: {e}");
            std::process::exit(2);
        }),
    };

    eprintln!("{clients} clients x {iters} launches against {addr}...");
    let wall = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..clients).map(|c| scope.spawn(move || run_client(addr, c, iters, target))).collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = wall.elapsed();
    latencies.sort();

    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let (p50, p90, p99) =
        (percentile(&latencies, 0.50), percentile(&latencies, 0.90), percentile(&latencies, 0.99));
    let ms = |d: Duration| format!("{:.3} ms", d.as_secs_f64() * 1e3);
    let rows =
        vec![vec![total.to_string(), format!("{throughput:.1} req/s"), ms(p50), ms(p90), ms(p99)]];
    print!("{}", render_table(&["requests", "throughput", "p50", "p90", "p99"], &rows));

    let doc = Json::obj(vec![
        ("schema", Json::str("concord-bench_client/v1")),
        ("clients", (clients as u64).into()),
        ("iters", (iters as u64).into()),
        ("target", Json::str(target.unwrap_or("auto"))),
        ("requests", (total as u64).into()),
        ("elapsed_seconds", elapsed.as_secs_f64().into()),
        ("throughput_rps", throughput.into()),
        ("p50_ms", (p50.as_secs_f64() * 1e3).into()),
        ("p90_ms", (p90.as_secs_f64() * 1e3).into()),
        ("p99_ms", (p99.as_secs_f64() * 1e3).into()),
    ]);
    if let Err(e) = std::fs::write(json_path, format!("{doc}\n")) {
        eprintln!("cannot write json file `{json_path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");

    if let Some(server) = local {
        server.request_shutdown();
        let stats = server.join();
        println!(
            "\nserver: {} connections, {} requests completed; artifact cache: {} entries, \
             {} hits, {} misses",
            stats.connections,
            stats.completed,
            stats.cache_entries,
            stats.cache_hits,
            stats.cache_misses,
        );
    }
}
