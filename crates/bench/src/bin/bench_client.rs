//! Load generator for `concord-serve`: N concurrent clients run mixed
//! workloads (some sharing kernel source, to exercise the cross-session
//! JIT-artifact cache) and report throughput and latency percentiles.
//!
//! ```text
//! bench_client [--addr HOST:PORT] [--clients N] [--iters N]
//!              [--workers N] [--queue N] [--mixed-session]
//!              [--target cpu|gpu|auto|native|hybrid[:f]] [--json FILE]
//! ```
//!
//! Without `--addr`, an in-process loopback server is spawned (sized by
//! `--workers`/`--queue`) and its final statistics — artifact-cache hits
//! included — are printed after the run.
//!
//! `--target` sets the session-default launch target for every client
//! (`auto` when absent); `native` on an unsupported server host makes the
//! first launch fail with the server's structured `native_unsupported`
//! error. The latency summary is also written as JSON — `BENCH_serve.json`
//! by default, `--json FILE` to relocate — in the
//! `concord-bench_client/v1` schema documented in EXPERIMENTS.md.
//!
//! `--mixed-session` switches to the launch-graph benchmark: each client
//! issues pairs of provably independent cpu+gpu launches, first as two
//! serialized requests and then as one `parallel_batch` routed through the
//! server's dependency-aware launch graph. The summary's headline
//! percentiles cover the batched phase; `mixed.serialized_p50_ms` holds
//! the serialized reference, and the server's overlap/stall counters ride
//! along.
//!
//! `--workload worklist` switches to the frontier benchmark: every client
//! uploads a CSR road network and drains a `parallel_worklist` frontier
//! BFS through the server `--iters` times, verifying the first drain
//! against the host reference. The summary keeps the same schema (so
//! `bench_gate` keys and gates it like any other mode), adds a
//! `worklist` object with the drain shape, and defaults its output to
//! `BENCH_worklist.json`.

use concord_bench::cli::{or_usage, parse_target, value_of, ArgError};
use concord_bench::render_table;
use concord_serve::json::Json;
use concord_serve::{
    BatchEntry, Client, Launch, ServeConfig, Server, SessionHandle, SessionOptions,
};
use concord_workloads::graph;
use concord_workloads::worklist::FrontierBfs;
use concord_workloads::Workload;
use std::time::{Duration, Instant};

/// Element-wise kernel; every even-numbered client opens a session with
/// this source, so all but the first open hits the artifact cache.
const DOUBLE: &str = r#"
    class Double {
    public:
        int* out; int n;
        void operator()(int i) { out[i] = i * 2 + 1; }
    };
"#;

/// Reduction kernel shared by the odd-numbered clients.
const SUM: &str = r#"
    class Sum {
    public:
        float* data; float acc;
        void operator()(int i) { acc += data[i]; }
        void join(Sum* other) { acc += other->acc; }
    };
"#;

const N: u32 = 256;

fn usage_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    or_usage(value_of(args, flag)).map(|v| {
        or_usage(
            v.parse::<T>().map_err(|_| ArgError(format!("flag `{flag}` has a bad value `{v}`"))),
        )
    })
}

/// One client's run: open a session (with `target` as the session-default
/// launch target when given), issue `iters` launches, return the
/// per-request latencies.
fn run_client(
    addr: std::net::SocketAddr,
    client: usize,
    iters: usize,
    target: Option<&str>,
) -> Vec<Duration> {
    let even = client.is_multiple_of(2);
    let source = if even { DOUBLE } else { SUM };
    let opts = SessionOptions { target: target.map(str::to_string), ..SessionOptions::default() };
    let mut s = SessionHandle::connect(addr, source, &opts).expect("open session");
    let mut latencies = Vec::with_capacity(iters);
    if even {
        let out = s.malloc(u64::from(N) * 4).expect("alloc");
        let body = s.malloc(16).expect("alloc");
        s.write_ptr(body, out).expect("write");
        s.write_i32(body + 8, N as i32).expect("write");
        for _ in 0..iters {
            let start = Instant::now();
            let report = s.parallel_for(&Launch::new("Double", body, N)).expect("launch");
            latencies.push(start.elapsed());
            assert!(report.exec_seconds > 0.0);
        }
        let last = i64::from(N) - 1;
        assert_eq!(s.read_i32(out + u64::from(N - 1) * 4).expect("read"), (last * 2 + 1) as i32);
    } else {
        let data = s.malloc(u64::from(N) * 4).expect("alloc");
        for i in 0..N {
            s.write_f32(data + u64::from(i) * 4, (i % 5) as f32).expect("write");
        }
        let body = s.malloc(16).expect("alloc");
        s.write_ptr(body, data).expect("write");
        for _ in 0..iters {
            s.write_f32(body + 8, 0.0).expect("reset acc");
            let start = Instant::now();
            let report = s.parallel_reduce(&Launch::new("Sum", body, N)).expect("launch");
            latencies.push(start.elapsed());
            assert!(report.exec_seconds > 0.0);
        }
    }
    s.close().expect("close session");
    latencies
}

/// One mixed-session client: a single session, two disjoint (out, body)
/// pairs, warmed up once, then `iters` serialized launch pairs followed by
/// `iters` one-request `parallel_batch` pairs. Returns the two phases'
/// per-pair latencies.
fn run_mixed_client(addr: std::net::SocketAddr, iters: usize) -> (Vec<Duration>, Vec<Duration>) {
    let mut s = SessionHandle::connect(addr, DOUBLE, &SessionOptions::default())
        .expect("open mixed session");
    let mut pair = || {
        let out = s.malloc(u64::from(N) * 4).expect("alloc");
        let body = s.malloc(16).expect("alloc");
        (out, body)
    };
    let (out_a, body_a) = pair();
    let (out_b, body_b) = pair();
    for (out, body) in [(out_a, body_a), (out_b, body_b)] {
        s.write_ptr(body, out).expect("write");
        s.write_i32(body + 8, N as i32).expect("write");
    }
    // Warm the JIT artifacts outside the timed phases so both phases run
    // against the same cache state.
    s.parallel_for(&Launch::new("Double", body_a, N).target("cpu")).expect("warmup");
    s.parallel_for(&Launch::new("Double", body_b, N).target("gpu")).expect("warmup");

    let mut serialized = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        s.parallel_for(&Launch::new("Double", body_a, N).target("cpu")).expect("launch");
        s.parallel_for(&Launch::new("Double", body_b, N).target("gpu")).expect("launch");
        serialized.push(start.elapsed());
    }
    let entries = [
        BatchEntry::new("Double", body_a, N).target("cpu"),
        BatchEntry::new("Double", body_b, N).target("gpu"),
    ];
    let mut batched = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let outcome = s.parallel_batch(&entries, None).expect("batch");
        batched.push(start.elapsed());
        assert!(outcome.reports.iter().all(Result::is_ok), "batched launches succeed");
    }
    let last = i64::from(N) - 1;
    let expect = (last * 2 + 1) as i32;
    assert_eq!(s.read_i32(out_a + u64::from(N - 1) * 4).expect("read"), expect);
    assert_eq!(s.read_i32(out_b + u64::from(N - 1) * 4).expect("read"), expect);
    s.close().expect("close session");
    (serialized, batched)
}

/// One worklist client: upload a 16x16 CSR road network, then drain the
/// frontier BFS `iters` times (resetting the level array between drains).
/// The first drain is verified against the host-side reference. Returns
/// the per-drain latencies plus the drain shape (rounds, drained items) —
/// identical for every drain by the determinism contract.
fn run_worklist_client(
    addr: std::net::SocketAddr,
    iters: usize,
    target: Option<&str>,
) -> (Vec<Duration>, Vec<u32>) {
    let spec = FrontierBfs.spec();
    let opts = SessionOptions { target: target.map(str::to_string), ..SessionOptions::default() };
    let mut s = SessionHandle::connect(addr, spec.source, &opts).expect("open worklist session");

    let g = graph::road_network(16, 16, 0xBF5);
    let row_off = g.row_offsets();
    let cols: Vec<u32> = g.adj.iter().flat_map(|a| a.iter().map(|&(u, _)| u)).collect();
    let le_bytes =
        |vals: &[u32]| -> Vec<u8> { vals.iter().flat_map(|v| v.to_le_bytes()).collect() };

    let n = g.n as u64;
    let row_addr = s.malloc((n + 1) * 4).expect("alloc row_off");
    s.write(row_addr, &le_bytes(&row_off)).expect("upload row_off");
    let cols_addr = s.malloc((cols.len() as u64).max(1) * 4).expect("alloc cols");
    s.write(cols_addr, &le_bytes(&cols)).expect("upload cols");
    let level_addr = s.malloc(n * 4).expect("alloc level");
    let body = s.malloc(3 * 8).expect("alloc body");
    s.write_ptr(body, row_addr).expect("write");
    s.write_ptr(body + 8, cols_addr).expect("write");
    s.write_ptr(body + 16, level_addr).expect("write");

    let mut unvisited = vec![0u8; g.n * 4];
    for chunk in unvisited.chunks_mut(4) {
        chunk.copy_from_slice(&(-1i32).to_le_bytes());
    }
    unvisited[..4].copy_from_slice(&0i32.to_le_bytes());

    let mut latencies = Vec::with_capacity(iters);
    let mut shape: Vec<u32> = Vec::new();
    for iter in 0..iters {
        s.write(level_addr, &unvisited).expect("reset levels");
        let start = Instant::now();
        let outcome =
            s.parallel_worklist(spec.kernel_class, body, &[0], target).expect("drain frontier");
        latencies.push(start.elapsed());
        assert!(outcome.rounds() > 0, "seeded drain runs at least one round");
        if iter == 0 {
            shape = outcome.frontier_sizes.clone();
            let expected: Vec<u8> =
                graph::reference_bfs(&g, 0).iter().flat_map(|v| v.to_le_bytes()).collect();
            let got = s.read(level_addr, n * 4).expect("read levels");
            assert_eq!(got, expected, "served drain diverges from the host reference");
        } else {
            assert_eq!(outcome.frontier_sizes, shape, "drain shape must be deterministic");
        }
    }
    s.close().expect("close session");
    (latencies, shape)
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: bench_client [--addr HOST:PORT] [--clients N] [--iters N] \
             [--workers N] [--queue N] [--mixed-session] [--workload serve|worklist] \
             [--target cpu|gpu|auto|native|hybrid[:f]] [--json FILE]"
        );
        return;
    }
    let mixed = args.iter().any(|a| a == "--mixed-session");
    let workload = or_usage(value_of(&args, "--workload")).unwrap_or("serve");
    if !matches!(workload, "serve" | "worklist") {
        eprintln!("--workload must be `serve` or `worklist`, got `{workload}`");
        std::process::exit(2);
    }
    let worklist = workload == "worklist";
    if mixed && worklist {
        eprintln!("--mixed-session and --workload worklist are separate benchmarks; pick one");
        std::process::exit(2);
    }
    let clients = usage_value::<usize>(&args, "--clients").unwrap_or(4).max(1);
    let iters = usage_value::<usize>(&args, "--iters").unwrap_or(16).max(1);
    // Validate the target vocabulary client-side (uniform diagnostics with
    // the other bench tools), but ship the raw string: the server owns the
    // parse that matters.
    let target = or_usage(value_of(&args, "--target"));
    if let Some(t) = target {
        or_usage(parse_target(t));
    }
    let default_json = if worklist { "BENCH_worklist.json" } else { "BENCH_serve.json" };
    let json_path = or_usage(value_of(&args, "--json")).unwrap_or(default_json);

    // Either aim at an external daemon or spin up a loopback server.
    let local = match or_usage(value_of(&args, "--addr")) {
        Some(_) => None,
        None => {
            let mut config = ServeConfig::default();
            if let Some(w) = usage_value::<usize>(&args, "--workers") {
                config.workers = w.max(1);
            }
            if let Some(q) = usage_value::<usize>(&args, "--queue") {
                config.queue_depth = q.max(1);
            }
            Some(Server::bind(&config).expect("bind loopback server"))
        }
    };
    let addr = match &local {
        Some(server) => server.addr(),
        None => or_usage(value_of(&args, "--addr")).unwrap().parse().unwrap_or_else(|e| {
            eprintln!("bad --addr: {e}");
            std::process::exit(2);
        }),
    };

    let mode = if mixed {
        "mixed-session"
    } else if worklist {
        "worklist"
    } else {
        "standard"
    };
    eprintln!("{clients} clients x {iters} launches against {addr} ({mode})...");
    let wall = Instant::now();
    let mut drain_shape: Vec<u32> = Vec::new();
    let (mut latencies, mut serialized): (Vec<Duration>, Vec<Duration>) = if mixed {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..clients).map(|_| scope.spawn(move || run_mixed_client(addr, iters))).collect();
            let mut all_s = Vec::new();
            let mut all_b = Vec::new();
            for h in handles {
                let (s, b) = h.join().expect("client thread");
                all_s.extend(s);
                all_b.extend(b);
            }
            (all_b, all_s)
        })
    } else if worklist {
        let all = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| scope.spawn(move || run_worklist_client(addr, iters, target)))
                .collect();
            let mut all = Vec::new();
            let mut shape: Option<Vec<u32>> = None;
            for h in handles {
                let (lat, s) = h.join().expect("client thread");
                all.extend(lat);
                match &shape {
                    None => shape = Some(s),
                    Some(first) => {
                        assert_eq!(&s, first, "drain shape must agree across clients");
                    }
                }
            }
            drain_shape = shape.unwrap_or_default();
            all
        });
        (all, Vec::new())
    } else {
        let batched = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| scope.spawn(move || run_client(addr, c, iters, target)))
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
        });
        (batched, Vec::new())
    };
    let elapsed = wall.elapsed();
    latencies.sort();
    serialized.sort();

    let total = latencies.len();
    let throughput = total as f64 / elapsed.as_secs_f64();
    let (p50, p90, p99) =
        (percentile(&latencies, 0.50), percentile(&latencies, 0.90), percentile(&latencies, 0.99));
    let ms = |d: Duration| format!("{:.3} ms", d.as_secs_f64() * 1e3);
    let rows =
        vec![vec![total.to_string(), format!("{throughput:.1} req/s"), ms(p50), ms(p90), ms(p99)]];
    print!("{}", render_table(&["requests", "throughput", "p50", "p90", "p99"], &rows));

    // The server's full metrics snapshot — connections, queue depth,
    // cache hit/miss/disk counters, per-tenant admission books — fetched
    // over the wire so an external daemon reports them too. The overlap
    // counters keep their top-level summary fields; the whole snapshot is
    // recorded under `server`.
    let server_snapshot = Client::connect(addr).ok().and_then(|mut c| c.stats().ok());
    let graph_counters = server_snapshot
        .as_ref()
        .map(|s| {
            let u = |name: &str| s.get(name).and_then(Json::as_u64).unwrap_or(0);
            (u("overlapped"), u("conflict_stalls"))
        })
        .unwrap_or((0, 0));

    let mut fields = vec![
        ("schema", Json::str("concord-bench_client/v1")),
        ("mode", Json::str(mode)),
        ("host_threads", (concord_pool::host_threads() as u64).into()),
        ("clients", (clients as u64).into()),
        ("iters", (iters as u64).into()),
        ("target", Json::str(target.unwrap_or("auto"))),
        ("requests", (total as u64).into()),
        ("elapsed_seconds", elapsed.as_secs_f64().into()),
        ("throughput_rps", throughput.into()),
        ("p50_ms", (p50.as_secs_f64() * 1e3).into()),
        ("p90_ms", (p90.as_secs_f64() * 1e3).into()),
        ("p99_ms", (p99.as_secs_f64() * 1e3).into()),
        ("overlapped", graph_counters.0.into()),
        ("conflict_stalls", graph_counters.1.into()),
    ];
    if mixed {
        let sp50 = percentile(&serialized, 0.50);
        let sp99 = percentile(&serialized, 0.99);
        eprintln!(
            "mixed-session: serialized pair p50 {} -> batched pair p50 {} \
             ({} overlap waves, {} conflict stalls)",
            ms(sp50),
            ms(p50),
            graph_counters.0,
            graph_counters.1,
        );
        fields.push((
            "mixed",
            Json::obj(vec![
                ("serialized_p50_ms", (sp50.as_secs_f64() * 1e3).into()),
                ("serialized_p99_ms", (sp99.as_secs_f64() * 1e3).into()),
                ("batched_p50_ms", (p50.as_secs_f64() * 1e3).into()),
                (
                    "p50_speedup",
                    if p50.as_secs_f64() > 0.0 {
                        (sp50.as_secs_f64() / p50.as_secs_f64()).into()
                    } else {
                        0.0.into()
                    },
                ),
            ]),
        ));
    }
    if worklist {
        let drained: u64 = drain_shape.iter().map(|&n| u64::from(n)).sum();
        eprintln!(
            "worklist: {} rounds, {} items drained per run (schema concord-bench_client/v1, \
             mode worklist)",
            drain_shape.len(),
            drained,
        );
        fields.push((
            "worklist",
            Json::obj(vec![
                ("workload", Json::str("FrontierBFS")),
                ("rounds", (drain_shape.len() as u64).into()),
                ("drained_items", drained.into()),
                ("frontier_sizes", Json::Arr(drain_shape.iter().map(|&n| Json::from(n)).collect())),
            ]),
        ));
    }
    if let Some(Json::Obj(snapshot)) = server_snapshot {
        // Everything the stats frame reported except its framing fields.
        let metrics: Vec<(String, Json)> =
            snapshot.into_iter().filter(|(k, _)| k != "type" && k != "id").collect();
        fields.push(("server", Json::Obj(metrics)));
    }
    let doc = Json::obj(fields);
    if let Err(e) = std::fs::write(json_path, format!("{doc}\n")) {
        eprintln!("cannot write json file `{json_path}`: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {json_path}");

    if let Some(server) = local {
        server.request_shutdown();
        let stats = server.join();
        println!(
            "\nserver: {} connections, {} requests completed; artifact cache: {} entries, \
             {} hits, {} misses",
            stats.connections,
            stats.completed,
            stats.cache_entries,
            stats.cache_hits,
            stats.cache_misses,
        );
    }
}
