//! `concord-lint`: run the static race/safety analyzer over kernel
//! sources and report findings without executing anything.
//!
//! ```text
//! concord-lint [--builtin] [FILE ...] [--json]
//!              [--snapshot FILE | --write-snapshot FILE]
//! ```
//!
//! `--builtin` lints all nine paper workloads; positional arguments are
//! kernel-language source files. Every kernel class in each program is
//! analyzed under its intended launch convention (`reduce` when the class
//! has a `join` method, `for` otherwise) — the same rule the server's
//! deny-gated `open_session` pre-screen applies.
//!
//! Findings print one canonical line each, sorted, so the output diffs
//! cleanly. `--snapshot FILE` compares against a committed baseline of
//! known findings (CI uses this: new or vanished findings fail the run);
//! `--write-snapshot FILE` regenerates that baseline.
//!
//! Exit status: 0 clean / snapshot match, 1 findings at `error` severity
//! or snapshot mismatch or compile failure, 2 usage error.

use concord_analyze::{analyze_kernel, Mode, Severity};
use concord_bench::cli::{flag_present, or_usage, value_of};
use std::process::ExitCode;

/// One program to lint: a display name and its kernel-language source.
struct Target {
    name: String,
    source: String,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: concord-lint [--builtin] [FILE ...] [--json] \
         [--snapshot FILE | --write-snapshot FILE]"
    );
    ExitCode::from(2)
}

/// Positional (non-flag) arguments: everything that is neither a flag nor
/// the value consumed by a value-taking flag.
fn positional(args: &[String]) -> Vec<String> {
    const VALUE_FLAGS: [&str; 2] = ["--snapshot", "--write-snapshot"];
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip = true;
        } else if !a.starts_with("--") {
            out.push(a.clone());
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if flag_present(&args, "--help") {
        return usage();
    }
    let json = flag_present(&args, "--json");
    let snapshot = or_usage(value_of(&args, "--snapshot")).map(str::to_string);
    let write_snapshot = or_usage(value_of(&args, "--write-snapshot")).map(str::to_string);
    if snapshot.is_some() && write_snapshot.is_some() {
        eprintln!("--snapshot and --write-snapshot are mutually exclusive");
        return ExitCode::from(2);
    }

    let mut targets = Vec::new();
    if flag_present(&args, "--builtin") {
        for w in concord_workloads::all_workloads() {
            let spec = w.spec();
            targets.push(Target { name: spec.name.to_string(), source: spec.source.to_string() });
        }
        // The frontier (worklist) workloads are part of the builtin
        // surface too: their guarded `push` bodies must stay clean enough
        // to launch under a `Deny` gate, and the snapshot pins that.
        for w in concord_workloads::worklist_workloads() {
            let spec = w.spec();
            targets.push(Target { name: spec.name.to_string(), source: spec.source.to_string() });
        }
    }
    for path in positional(&args) {
        match std::fs::read_to_string(&path) {
            Ok(source) => targets.push(Target { name: path, source }),
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if targets.is_empty() {
        return usage();
    }

    // Analyze every kernel of every target. Lines are the canonical,
    // sorted, snapshot-stable representation.
    let mut lines: Vec<String> = Vec::new();
    let mut json_entries: Vec<String> = Vec::new();
    let mut kernels = 0usize;
    let mut errors = 0usize;
    for t in &targets {
        let program = match concord_frontend::compile(&t.source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: compile error: {e}", t.name);
                return ExitCode::from(1);
            }
        };
        // Analyze the CPU-optimized module: CSE canonicalizes address
        // computations, which is the analyzer's documented precondition.
        let mut module = program.module.clone();
        concord_compiler::optimize_for_cpu(&mut module);
        for k in &program.kernels {
            kernels += 1;
            let mode = if k.join_fn.is_some() { Mode::Reduce } else { Mode::For };
            let report = analyze_kernel(&module, k.operator_fn, mode);
            errors += report.count_at(Severity::Error);
            for d in &report.diagnostics {
                lines.push(format!("{}/{}: {}", t.name, k.class_name, d.to_line()));
            }
            json_entries.push(format!(
                "{{\"target\":\"{}\",\"class\":\"{}\",\"report\":{}}}",
                t.name,
                k.class_name,
                report.to_json()
            ));
        }
    }
    lines.sort();

    if let Some(path) = write_snapshot {
        let mut body = String::from(
            "# concord-lint snapshot: known findings, one canonical line each.\n\
             # Regenerate with: concord-lint --builtin --write-snapshot <this file>\n",
        );
        for l in &lines {
            body.push_str(l);
            body.push('\n');
        }
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write `{path}`: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {} finding(s) to {path}", lines.len());
        return ExitCode::SUCCESS;
    }

    if json {
        println!("[{}]", json_entries.join(","));
    } else {
        for l in &lines {
            println!("{l}");
        }
        println!(
            "{} finding(s) ({} error(s)) across {} kernel(s) in {} program(s)",
            lines.len(),
            errors,
            kernels,
            targets.len()
        );
    }

    if let Some(path) = snapshot {
        let expected = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read snapshot `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let mut expected: Vec<&str> = expected
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        expected.sort_unstable();
        let actual: Vec<&str> = lines.iter().map(String::as_str).collect();
        if expected != actual {
            for l in &actual {
                if !expected.contains(l) {
                    eprintln!("new finding (not in snapshot): {l}");
                }
            }
            for l in &expected {
                if !actual.contains(l) {
                    eprintln!("stale snapshot line (finding gone): {l}");
                }
            }
            eprintln!("snapshot mismatch against {path}");
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
