//! Regenerates Table 1: workload origins and static characteristics.

use concord_workloads::{all_workloads, Scale};

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    for w in all_workloads() {
        let spec = w.spec();
        let lp = concord_frontend::compile(spec.source).expect("workload compiles");
        // Build once so a broken generator fails loudly here rather than in
        // the figure harness.
        let mut cc = concord_runtime::Concord::new(
            concord_energy::SystemConfig::ultrabook(),
            spec.source,
            concord_runtime::Options::default(),
        )
        .expect("runtime");
        let _ = w.build(&mut cc, scale).expect("build");
        rows.push(vec![
            spec.name.to_string(),
            spec.origin.to_string(),
            format!("{}", lp.source_info.total_lines),
            format!("{}", lp.source_info.device_lines),
            spec.data_structure.to_string(),
            spec.construct.to_string(),
        ]);
    }
    println!("Table 1: Concord workloads and their characteristics (scale: {scale:?})\n");
    print!(
        "{}",
        concord_bench::render_table(
            &["Benchmark", "Origin", "LoC", "Device LoC", "Data structure", "Parallel construct"],
            &rows
        )
    );
    println!();
    println!(
        "LoC counts are for the kernel-language port (the paper's Table 1 counts full C++ sources)."
    );
}

fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        Some("--tiny") => Scale::Tiny,
        Some("--medium") => Scale::Medium,
        _ => Scale::Small,
    }
}
