//! Regenerates the §5.4 study: overhead of Concord's software SVM.
//!
//! The paper ports the pointer-based Concord Raytracer to plain OpenCL 1.2,
//! which has no pointer sharing: the host must flatten the scene graph
//! into linear arrays and the kernel must traverse it with integer
//! offsets (and without virtual dispatch). Comparing the two isolates the
//! cost of the SVM pointer translations: the paper measures ≤6% at the
//! largest image size.
//!
//! `--json FILE` additionally writes one machine-readable row per image
//! size, in the schema documented in EXPERIMENTS.md.

use concord_bench::cli::{or_usage, value_of};
use concord_energy::SystemConfig;
use concord_runtime::{Concord, Options, Target};
use concord_serve::json::Json;
use concord_svm::{CpuAddr, VtableArea};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pointer-based Concord version (virtual dispatch over a scene graph).
const CONCORD_SRC: &str = r#"
class Shape {
public:
    float cx; float cy; float cz; float p0;
    virtual float intersect(float ox, float oy, float oz,
                            float dx, float dy, float dz) { return -1.0f; }
};
class Sphere : public Shape {
public:
    float intersect(float ox, float oy, float oz,
                    float dx, float dy, float dz) {
        float lx = cx - ox; float ly = cy - oy; float lz = cz - oz;
        float tca = lx*dx + ly*dy + lz*dz;
        float d2 = lx*lx + ly*ly + lz*lz - tca*tca;
        float r2 = p0 * p0;
        if (d2 > r2) { return -1.0f; }
        float thc = sqrtf(r2 - d2);
        float t = tca - thc;
        if (t < 0.001f) { t = tca + thc; }
        if (t < 0.001f) { return -1.0f; }
        return t;
    }
};
class Plane : public Shape {
public:
    float intersect(float ox, float oy, float oz,
                    float dx, float dy, float dz) {
        if (fabsf(dy) < 0.0001f) { return -1.0f; }
        float t = (cy - oy) / dy;
        if (t < 0.001f) { return -1.0f; }
        return t;
    }
};
class RayBody {
public:
    Shape** shapes; int nshapes;
    float* image; int width; int height;
    void operator()(int i) {
        int pxi = i % width;
        int pyi = i / width;
        float ox = ((float)pxi / (float)width) * 4.0f - 2.0f;
        float oy = ((float)pyi / (float)height) * 3.0f - 1.0f;
        float oz = 5.0f;
        float dx = ox * 0.05f; float dy = oy * 0.05f; float dz = -1.0f;
        float dl = sqrtf(dx*dx + dy*dy + dz*dz);
        dx /= dl; dy /= dl; dz /= dl;
        float best = 1000000.0f;
        for (int s = 0; s < nshapes; s++) {
            float t = shapes[s]->intersect(ox, oy, oz, dx, dy, dz);
            if (t > 0.0f && t < best) { best = t; }
        }
        image[i] = best < 1000000.0f ? best : 0.0f;
    }
};
"#;

/// Hand-flattened OpenCL-1.2-style version: linear arrays + type tags, no
/// shared pointers, no virtual functions.
const FLAT_SRC: &str = r#"
class FlatRayBody {
public:
    float* sx; float* sy; float* sz; float* sr;
    int* stype; int nshapes;
    float* image; int width; int height;
    void operator()(int i) {
        // Hand-tuned port: hoist array bases into registers, as the
        // paper's OpenCL-1.2 version does with kernel arguments.
        float* lsx = sx;
        float* lsy = sy;
        float* lsz = sz;
        float* lsr = sr;
        int* lst = stype;
        int ns = nshapes;
        int pxi = i % width;
        int pyi = i / width;
        float ox = ((float)pxi / (float)width) * 4.0f - 2.0f;
        float oy = ((float)pyi / (float)height) * 3.0f - 1.0f;
        float oz = 5.0f;
        float dx = ox * 0.05f; float dy = oy * 0.05f; float dz = -1.0f;
        float dl = sqrtf(dx*dx + dy*dy + dz*dz);
        dx /= dl; dy /= dl; dz /= dl;
        float best = 1000000.0f;
        for (int s = 0; s < ns; s++) {
            float t = -1.0f;
            if (lst[s] == 0) {
                float lx = lsx[s] - ox; float ly = lsy[s] - oy; float lz = lsz[s] - oz;
                float tca = lx*dx + ly*dy + lz*dz;
                float d2 = lx*lx + ly*ly + lz*lz - tca*tca;
                float r2 = lsr[s] * lsr[s];
                if (d2 <= r2) {
                    float thc = sqrtf(r2 - d2);
                    t = tca - thc;
                    if (t < 0.001f) { t = tca + thc; }
                    if (t < 0.001f) { t = -1.0f; }
                }
            } else {
                if (fabsf(dy) >= 0.0001f) {
                    t = (lsy[s] - oy) / dy;
                    if (t < 0.001f) { t = -1.0f; }
                }
            }
            if (t > 0.0f && t < best) { best = t; }
        }
        image[i] = best < 1000000.0f ? best : 0.0f;
    }
};
"#;

struct Scene {
    spheres: Vec<([f32; 3], f32)>,
    plane_y: f32,
}

fn scene(nspheres: usize) -> Scene {
    let mut rng = StdRng::seed_from_u64(0x54D);
    Scene {
        spheres: (0..nspheres)
            .map(|_| {
                (
                    [
                        rng.gen_range(-1.8..1.8f32),
                        rng.gen_range(-0.6..1.4f32),
                        rng.gen_range(-1.5..1.5f32),
                    ],
                    rng.gen_range(0.15..0.45f32),
                )
            })
            .collect(),
        plane_y: -1.0,
    }
}

fn run_concord(system: SystemConfig, sc: &Scene, w: usize, h: usize) -> (f64, Vec<f32>) {
    let mut cc = Concord::new(system, CONCORD_SRC, Options::default()).expect("compile");
    let nshapes = sc.spheres.len() + 1;
    let ptrs = cc.malloc(nshapes as u64 * 8).expect("alloc");
    let sphere_vt = VtableArea::addr_of(concord_ir::ClassId(1));
    let plane_vt = VtableArea::addr_of(concord_ir::ClassId(2));
    for (s, (c, r)) in sc.spheres.iter().enumerate() {
        let obj = cc.malloc(24).expect("alloc");
        cc.region_mut().write_ptr(obj, sphere_vt).expect("write");
        cc.region_mut().write_f32(obj.offset(8), c[0]).expect("write");
        cc.region_mut().write_f32(obj.offset(12), c[1]).expect("write");
        cc.region_mut().write_f32(obj.offset(16), c[2]).expect("write");
        cc.region_mut().write_f32(obj.offset(20), *r).expect("write");
        cc.region_mut().write_ptr(CpuAddr(ptrs.0 + s as u64 * 8), obj).expect("write");
    }
    let plane = cc.malloc(24).expect("alloc");
    cc.region_mut().write_ptr(plane, plane_vt).expect("write");
    cc.region_mut().write_f32(plane.offset(12), sc.plane_y).expect("write");
    cc.region_mut().write_ptr(CpuAddr(ptrs.0 + sc.spheres.len() as u64 * 8), plane).expect("write");
    let n = (w * h) as u32;
    let image = cc.malloc(n as u64 * 4).expect("alloc");
    let body = cc.malloc(40).expect("alloc");
    cc.region_mut().write_ptr(body, ptrs).expect("write");
    cc.region_mut().write_i32(body.offset(8), nshapes as i32).expect("write");
    cc.region_mut().write_ptr(body.offset(16), image).expect("write");
    cc.region_mut().write_i32(body.offset(24), w as i32).expect("write");
    cc.region_mut().write_i32(body.offset(28), h as i32).expect("write");
    // Warm the JIT cache, then measure the steady-state kernel.
    cc.parallel_for_hetero("RayBody", body, n, Target::Gpu).expect("warmup");
    let r = cc.parallel_for_hetero("RayBody", body, n, Target::Gpu).expect("run");
    if std::env::var("SVM_DEBUG").is_ok() {
        eprintln!(
            "concord {w}x{h}: insts={} tx={} trans={} busy={:.2}",
            r.insts, r.transactions, r.translations, r.busy_fraction
        );
    }
    let img = (0..n as u64)
        .map(|i| cc.region().read_f32(CpuAddr(image.0 + i * 4)).expect("read"))
        .collect();
    (r.total_seconds(), img)
}

fn run_flat(system: SystemConfig, sc: &Scene, w: usize, h: usize) -> (f64, Vec<f32>) {
    let mut cc = Concord::new(system, FLAT_SRC, Options::default()).expect("compile");
    let nshapes = sc.spheres.len() + 1;
    let sx = cc.malloc(nshapes as u64 * 4).expect("alloc");
    let sy = cc.malloc(nshapes as u64 * 4).expect("alloc");
    let sz = cc.malloc(nshapes as u64 * 4).expect("alloc");
    let sr = cc.malloc(nshapes as u64 * 4).expect("alloc");
    let stype = cc.malloc(nshapes as u64 * 4).expect("alloc");
    for (s, (c, r)) in sc.spheres.iter().enumerate() {
        let o = s as u64 * 4;
        cc.region_mut().write_f32(CpuAddr(sx.0 + o), c[0]).expect("write");
        cc.region_mut().write_f32(CpuAddr(sy.0 + o), c[1]).expect("write");
        cc.region_mut().write_f32(CpuAddr(sz.0 + o), c[2]).expect("write");
        cc.region_mut().write_f32(CpuAddr(sr.0 + o), *r).expect("write");
        cc.region_mut().write_i32(CpuAddr(stype.0 + o), 0).expect("write");
    }
    let o = sc.spheres.len() as u64 * 4;
    cc.region_mut().write_f32(CpuAddr(sy.0 + o), sc.plane_y).expect("write");
    cc.region_mut().write_i32(CpuAddr(stype.0 + o), 1).expect("write");
    let n = (w * h) as u32;
    let image = cc.malloc(n as u64 * 4).expect("alloc");
    let body = cc.malloc(64).expect("alloc");
    for (slot, a) in [sx, sy, sz, sr, stype].iter().enumerate() {
        cc.region_mut().write_ptr(body.offset(slot as u64 * 8), *a).expect("write");
    }
    cc.region_mut().write_i32(body.offset(40), nshapes as i32).expect("write");
    cc.region_mut().write_ptr(body.offset(48), image).expect("write");
    cc.region_mut().write_i32(body.offset(56), w as i32).expect("write");
    cc.region_mut().write_i32(body.offset(60), h as i32).expect("write");
    cc.parallel_for_hetero("FlatRayBody", body, n, Target::Gpu).expect("warmup");
    let r = cc.parallel_for_hetero("FlatRayBody", body, n, Target::Gpu).expect("run");
    if std::env::var("SVM_DEBUG").is_ok() {
        eprintln!(
            "flat    {w}x{h}: insts={} tx={} trans={} busy={:.2}",
            r.insts, r.transactions, r.translations, r.busy_fraction
        );
    }
    let img = (0..n as u64)
        .map(|i| cc.region().read_f32(CpuAddr(image.0 + i * 4)).expect("read"))
        .collect();
    (r.total_seconds(), img)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = or_usage(value_of(&args, "--json")).map(str::to_string);
    let sizes: &[(usize, usize)] = &[(32, 24), (64, 48), (128, 96), (192, 144)];
    let sc = scene(16);
    let system = SystemConfig::ultrabook();
    println!(
        "Section 5.4: overhead of software SVM (Concord Raytracer vs hand-flattened OpenCL port)\n"
    );
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &(w, h) in sizes {
        eprintln!("rendering {w}x{h}...");
        let (t_concord, img_c) = run_concord(system, &sc, w, h);
        let (t_flat, img_f) = run_flat(system, &sc, w, h);
        // Both versions must render the same depths.
        for (i, (a, b)) in img_c.iter().zip(&img_f).enumerate() {
            assert!((a - b).abs() < 1e-4, "pixel {i} differs: {a} vs {b}");
        }
        let overhead = (t_concord - t_flat) / t_flat * 100.0;
        rows.push(vec![
            format!("{w}x{h}"),
            format!("{:.3} ms", t_concord * 1e3),
            format!("{:.3} ms", t_flat * 1e3),
            format!("{overhead:+.1}%"),
        ]);
        json_rows.push(Json::obj(vec![
            ("image", Json::str(format!("{w}x{h}"))),
            ("concord_seconds", t_concord.into()),
            ("flat_seconds", t_flat.into()),
            ("overhead_pct", overhead.into()),
        ]));
    }
    print!(
        "{}",
        concord_bench::render_table(
            &["Image", "Concord (SVM)", "Flattened (no SVM)", "SVM overhead"],
            &rows
        )
    );
    println!(
        "\nThe paper reports negligible overhead for small images and ~6% at the largest size."
    );
    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("schema", Json::str("concord-svm_overhead/v1")),
            ("rows", Json::Arr(json_rows)),
        ]);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("cannot write json file `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
