//! `concord-serve` daemon: multiplexes independent Concord sessions from
//! many TCP clients over one process-wide JIT-artifact cache.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue N] [--trace]
//! ```
//!
//! Runs until SIGINT/SIGTERM (or a client's `shutdown` request), then
//! drains every queued request before exiting. With `--trace`, the
//! deterministic trace summary (including `Server` track events) is
//! printed on shutdown.

use concord_bench::cli::{flag_present, or_usage, value_of, ArgError};
use concord_serve::{signal, ServeConfig, Server};
use concord_trace::TraceConfig;
use std::time::Duration;

fn usage_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    or_usage(value_of(args, flag)).map(|v| {
        or_usage(
            v.parse::<T>().map_err(|_| ArgError(format!("flag `{flag}` has a bad value `{v}`"))),
        )
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if flag_present(&args, "--help") || flag_present(&args, "-h") {
        println!("usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--trace]");
        return;
    }
    let mut config = ServeConfig::default();
    if let Some(addr) = or_usage(value_of(&args, "--addr")) {
        config.addr = addr.to_string();
    }
    if let Some(workers) = usage_value::<usize>(&args, "--workers") {
        config.workers = workers.max(1);
    }
    if let Some(queue) = usage_value::<usize>(&args, "--queue") {
        config.queue_depth = queue.max(1);
    }
    let tracing = flag_present(&args, "--trace");
    if tracing {
        config.trace = TraceConfig::enabled();
    }

    signal::install();
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind `{}`: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "concord-serve listening on {} ({} workers, queue depth {})",
        server.addr(),
        config.workers,
        config.queue_depth
    );

    while !signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutting down: draining in-flight requests...");
    server.request_shutdown();
    // The tracer is a clone-shared ring buffer, so drain-time events are
    // still visible through this handle after `join` consumes the server.
    let tracer = server.tracer().clone();
    let stats = server.join();
    let summary = tracer.summary();
    println!(
        "served {} connections, {} sessions; {} admitted, {} completed, \
         {} rejected, {} deadline-missed; artifact cache: {} entries, \
         {} hits, {} misses",
        stats.connections,
        stats.sessions,
        stats.admitted,
        stats.completed,
        stats.rejected,
        stats.deadline_missed,
        stats.cache_entries,
        stats.cache_hits,
        stats.cache_misses,
    );
    if tracing {
        print!("{summary}");
    }
}
