//! `concord-serve` daemon: multiplexes independent Concord sessions from
//! many TCP clients over one process-wide JIT-artifact cache.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache-dir DIR]
//!       [--tenant-max-inflight N] [--tenant-queue-share PCT] [--trace]
//! ```
//!
//! `--cache-dir` makes the JIT artifact cache persistent: compiled
//! entries are spilled to `DIR` (checksummed) and a restarted daemon over
//! the same directory serves them without recompiling. The tenant flags
//! turn on per-tenant admission quotas (`quota_exceeded` refusals once a
//! tenant's pending requests hit the cap).
//!
//! Runs until SIGINT/SIGTERM (or a client's `shutdown` request), then
//! drains every queued request before exiting. With `--trace`, the
//! deterministic trace summary (including `Server` track events) is
//! printed on shutdown.

use concord_bench::cli::{flag_present, or_usage, value_of, ArgError};
use concord_serve::{signal, ServeConfig, Server};
use concord_trace::TraceConfig;
use std::time::Duration;

fn usage_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    or_usage(value_of(args, flag)).map(|v| {
        or_usage(
            v.parse::<T>().map_err(|_| ArgError(format!("flag `{flag}` has a bad value `{v}`"))),
        )
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if flag_present(&args, "--help") || flag_present(&args, "-h") {
        println!(
            "usage: serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache-dir DIR] \
             [--tenant-max-inflight N] [--tenant-queue-share PCT] [--trace]"
        );
        return;
    }
    let mut config = ServeConfig::default();
    if let Some(addr) = or_usage(value_of(&args, "--addr")) {
        config.addr = addr.to_string();
    }
    if let Some(workers) = usage_value::<usize>(&args, "--workers") {
        config.workers = workers.max(1);
    }
    if let Some(queue) = usage_value::<usize>(&args, "--queue") {
        config.queue_depth = queue.max(1);
    }
    if let Some(dir) = or_usage(value_of(&args, "--cache-dir")) {
        config.cache_dir = Some(dir.to_string());
    }
    if let Some(cap) = usage_value::<usize>(&args, "--tenant-max-inflight") {
        config.tenant_max_inflight = cap;
    }
    if let Some(share) = usage_value::<u8>(&args, "--tenant-queue-share") {
        config.tenant_queue_share = share.min(100);
    }
    let tracing = flag_present(&args, "--trace");
    if tracing {
        config.trace = TraceConfig::enabled();
    }

    signal::install();
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind `{}`: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "concord-serve listening on {} ({} workers, queue depth {}{})",
        server.addr(),
        config.workers,
        config.queue_depth,
        match &config.cache_dir {
            Some(dir) => format!(", cache dir {dir}"),
            None => String::new(),
        }
    );

    while !signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutting down: draining in-flight requests...");
    server.request_shutdown();
    // The tracer is a clone-shared ring buffer, so drain-time events are
    // still visible through this handle after `join` consumes the server.
    let tracer = server.tracer().clone();
    let stats = server.join();
    let summary = tracer.summary();
    println!(
        "served {} connections, {} sessions; {} admitted, {} completed, \
         {} rejected, {} quota-rejected, {} deadline-missed; artifact cache: {} entries, \
         {} hits, {} misses; disk: {} hits, {} compiles, {} spills, {} corrupt-evicted",
        stats.connections,
        stats.sessions,
        stats.admitted,
        stats.completed,
        stats.rejected,
        stats.quota_rejected,
        stats.deadline_missed,
        stats.cache_entries,
        stats.cache_hits,
        stats.cache_misses,
        stats.disk_hits,
        stats.compiles,
        stats.disk_writes,
        stats.corrupt_evicted,
    );
    if tracing {
        print!("{summary}");
    }
}
