//! Criterion micro-benchmarks: one group per paper figure, timing the
//! simulator-driven workload pipeline at Tiny scale (regression tracking
//! for the harness itself; the figures use the dedicated binaries).

use concord_bench::figure_row;
use concord_energy::SystemConfig;
use concord_workloads::{all_workloads, measure, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_workload_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipeline");
    group.sample_size(10);
    for w in all_workloads() {
        let name = w.spec().name;
        // One representative measurement per workload (GPU+ALL, Ultrabook).
        group.bench_function(format!("{name}/gpu_all_ultrabook"), |b| {
            b.iter(|| {
                measure(
                    w.as_ref(),
                    SystemConfig::ultrabook(),
                    concord_compiler::GpuConfig::all(40),
                    Scale::Tiny,
                    concord_runtime::Target::Gpu,
                )
                .expect("measurement")
            })
        });
    }
    group.finish();
}

fn bench_full_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_row");
    group.sample_size(10);
    let w = concord_workloads::bfs::Bfs;
    group.bench_function("bfs/ultrabook_all_configs", |b| {
        b.iter(|| {
            figure_row(&w, SystemConfig::ultrabook(), Scale::Tiny, concord_runtime::Target::Gpu)
                .expect("row")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workload_measurement, bench_full_row);
criterion_main!(benches);
