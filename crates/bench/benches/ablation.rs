//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! pointer-translation strategy (lazy vs eager vs hybrid) and the L3
//! contention transform, measured as executed-translation counts and
//! simulated kernel time on a streaming kernel.

use concord_compiler::{lower_for_gpu, GpuConfig, Strategy};
use concord_energy::SystemConfig;
use concord_gpusim::GpuSim;
use concord_svm::{SharedAllocator, SharedRegion, VtableArea};
use criterion::{criterion_group, criterion_main, Criterion};

const STREAM_SRC: &str = r#"
class K {
public:
    float* a; int n; float* out;
    void operator()(int i) {
        float s = 0.0f;
        for (int j = 0; j < n; j++) { s += a[j]; }
        out[i] = s;
    }
};
"#;

fn run_config(cfg: GpuConfig) -> f64 {
    let lp = concord_frontend::compile(STREAM_SRC).expect("compile");
    let art = lower_for_gpu(&lp.module, cfg);
    let kf = art
        .module
        .functions
        .iter()
        .position(|f| f.kernel.is_some())
        .map(|i| concord_ir::FuncId(i as u32))
        .expect("kernel");
    let reserved = VtableArea::reserve_for(art.module.classes.len());
    let mut region = SharedRegion::new(1 << 22, reserved);
    let mut heap = SharedAllocator::new(&region);
    VtableArea::install(&mut region, &art.module).expect("vtables");
    let n = 256u32;
    let inner = 128i32;
    let a = heap.malloc(inner as u64 * 4).expect("alloc");
    let out = heap.malloc(n as u64 * 4).expect("alloc");
    let body = heap.malloc(24).expect("alloc");
    region.write_ptr(body, a).expect("write");
    region.write_i32(body.offset(8), inner).expect("write");
    region.write_ptr(body.offset(16), out).expect("write");
    let mut sim = GpuSim::new(SystemConfig::ultrabook().gpu);
    let r = sim.parallel_for(&mut region, &art.module, kf, body, n).expect("run");
    r.critical_cycles
}

fn bench_translation_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_strategy");
    group.sample_size(10);
    for (name, strategy) in
        [("lazy", Strategy::Lazy), ("eager", Strategy::Eager), ("hybrid", Strategy::Hybrid)]
    {
        let cfg = GpuConfig { strategy, l3opt: false, gpu_cores: 40 };
        group.bench_function(name, |b| b.iter(|| run_config(cfg)));
    }
    group.finish();
}

fn bench_l3opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("l3opt");
    group.sample_size(10);
    group.bench_function("off", |b| b.iter(|| run_config(GpuConfig::ptropt(40))));
    group.bench_function("on", |b| b.iter(|| run_config(GpuConfig::all(40))));
    group.finish();
}

criterion_group!(benches, bench_translation_strategies, bench_l3opt);
criterion_main!(benches);
