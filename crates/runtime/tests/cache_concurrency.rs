//! [`ArtifactCache`] under concurrent submitters: a burst of sessions
//! over two distinct sources must compile each source exactly once —
//! for the frontend/GPU pipeline (cache entries), the GPU JIT charge
//! (shared jit set), and the native machine-code slot
//! (`SharedNativeModule`) alike.

use concord_energy::SystemConfig;
use concord_runtime::{ArtifactCache, Concord, Options, Target};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SRC_A: &str = r#"
    class Scale2 {
    public:
        int* out; int n;
        void operator()(int i) { out[i] = i * 2; }
    };
"#;

const SRC_B: &str = r#"
    class Scale3 {
    public:
        int* out; int n;
        void operator()(int i) { out[i] = i * 3; }
    };
"#;

fn run_one(cache: &ArtifactCache, src: &str, class: &str, target: Target) -> f64 {
    let mut cc =
        Concord::new_with_cache(SystemConfig::ultrabook(), src, Options::default(), cache).unwrap();
    let out = cc.malloc(64 * 4).unwrap();
    let body = cc.malloc(16).unwrap();
    cc.region_mut().write_ptr(body, out).unwrap();
    let r = cc.parallel_for_hetero(class, body, 64, target).unwrap();
    for i in 0..64u64 {
        let mult = if class == "Scale2" { 2 } else { 3 };
        let got = cc.region().read_i32(concord_svm::CpuAddr(out.0 + i * 4)).unwrap();
        assert_eq!(got, i as i32 * mult, "{class} on {target}");
    }
    r.jit_seconds
}

#[test]
fn concurrent_sessions_compile_each_source_exactly_once() {
    const THREADS: usize = 8;
    let cache = Arc::new(ArtifactCache::new());
    let gpu_jit_charges = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let charges = Arc::clone(&gpu_jit_charges);
            s.spawn(move || {
                let (src, class) = if t % 2 == 0 { (SRC_A, "Scale2") } else { (SRC_B, "Scale3") };
                let jit = run_one(&cache, src, class, Target::Gpu);
                if jit > 0.0 {
                    charges.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(cache.entries(), 2, "two sources -> two cache entries");
    assert_eq!(cache.misses(), 2, "each source compiles exactly once");
    assert_eq!(cache.hits(), (THREADS - 2) as u64, "everyone else hits the cache");
    assert_eq!(
        gpu_jit_charges.load(Ordering::Relaxed),
        2,
        "the GPU JIT charge is paid exactly once per source, process-wide"
    );
}

#[test]
fn concurrent_native_sessions_share_the_compiled_module() {
    if !concord_native::supported() {
        return;
    }
    const THREADS: usize = 8;
    let cache = Arc::new(ArtifactCache::new());
    let native_compiles = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let compiles = Arc::clone(&native_compiles);
            s.spawn(move || {
                let (src, class) = if t % 2 == 0 { (SRC_A, "Scale2") } else { (SRC_B, "Scale3") };
                let jit = run_one(&cache, src, class, Target::Native);
                if jit > 0.0 {
                    compiles.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(cache.entries(), 2);
    assert_eq!(cache.misses(), 2);
    assert_eq!(
        native_compiles.load(Ordering::Relaxed),
        2,
        "native codegen runs exactly once per source through SharedNativeModule"
    );
}
