//! On-disk [`ArtifactCache`] persistence: restart reuse, corruption
//! eviction (truncated / bit-flipped / wrong-version files), and sibling
//! caches racing on one spill directory.

use concord_energy::SystemConfig;
use concord_runtime::{ArtifactCache, Concord, Options, Target};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SRC_A: &str = r#"
    class Scale2 {
    public:
        int* out; int n;
        void operator()(int i) { out[i] = i * 2; }
    };
"#;

const SRC_B: &str = r#"
    class Scale3 {
    public:
        int* out; int n;
        void operator()(int i) { out[i] = i * 3; }
    };
"#;

/// Fresh scratch directory under the target dir (unique per test name, so
/// parallel test threads never share one).
fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("concord-disk-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_one(cache: &ArtifactCache, src: &str, class: &str) {
    let mut cc =
        Concord::new_with_cache(SystemConfig::ultrabook(), src, Options::default(), cache).unwrap();
    let out = cc.malloc(64 * 4).unwrap();
    let body = cc.malloc(16).unwrap();
    cc.region_mut().write_ptr(body, out).unwrap();
    cc.parallel_for_hetero(class, body, 64, Target::Gpu).unwrap();
    let mult = if class == "Scale2" { 2 } else { 3 };
    for i in 0..64u64 {
        let got = cc.region().read_i32(concord_svm::CpuAddr(out.0 + i * 4)).unwrap();
        assert_eq!(got, i as i32 * mult, "{class} result after cache path");
    }
}

/// The single `.cca` entry file in `dir`.
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "cca"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one artifact file in {dir:?}");
    entries.pop().unwrap()
}

#[test]
fn restart_reuses_disk_entries_with_zero_recompiles() {
    let dir = scratch_dir("restart");

    // "First process": compiles once, spills once, second session memory-hits.
    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    run_one(&cache, SRC_A, "Scale2");
    assert_eq!((cache.misses(), cache.hits()), (1, 1));
    assert_eq!(cache.compiles(), 1);
    assert_eq!(cache.disk_writes(), 1);
    assert_eq!(cache.disk_hits(), 0);
    drop(cache);

    // "Restarted process": a fresh cache over the same directory must load
    // the artifact from disk and execute it correctly without recompiling.
    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    assert_eq!(cache.disk_hits(), 1, "restart must be served from disk");
    assert_eq!(cache.compiles(), 0, "restart must not recompile");
    assert_eq!(cache.corrupt_evicted(), 0);
    assert_eq!(cache.misses(), 1, "a disk hit is still an in-memory miss");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_evicted_and_recompiled() {
    let dir = scratch_dir("truncated");
    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    drop(cache);

    let path = entry_file(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    assert_eq!(cache.corrupt_evicted(), 1, "truncated file must be detected");
    assert_eq!(cache.compiles(), 1, "and recompiled transparently");
    assert_eq!(cache.disk_hits(), 0);
    assert_eq!(cache.disk_writes(), 1, "the rebuilt entry is spilled again");
    drop(cache);

    // The rewritten entry is valid again.
    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    assert_eq!((cache.disk_hits(), cache.compiles()), (1, 0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_entry_fails_its_checksum() {
    let dir = scratch_dir("bitflip");
    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    drop(cache);

    let path = entry_file(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // one flipped bit deep in the payload
    std::fs::write(&path, &bytes).unwrap();

    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    assert_eq!(cache.corrupt_evicted(), 1, "bit flip must fail the checksum");
    assert_eq!(cache.compiles(), 1);
    assert_eq!(cache.disk_hits(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_version_entry_is_evicted() {
    let dir = scratch_dir("version");
    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    drop(cache);

    let path = entry_file(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // Byte 8 starts the little-endian format-version word after the magic.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let cache = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&cache, SRC_A, "Scale2");
    assert_eq!(cache.corrupt_evicted(), 1, "future-version file must not be misread");
    assert_eq!(cache.compiles(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sibling_caches_racing_on_one_directory_stay_consistent() {
    let dir = scratch_dir("race");
    // Two caches over the same directory model two server processes racing.
    let a = Arc::new(ArtifactCache::with_disk(&dir).unwrap());
    let b = Arc::new(ArtifactCache::with_disk(&dir).unwrap());
    std::thread::scope(|s| {
        for t in 0..8usize {
            let cache = if t % 2 == 0 { Arc::clone(&a) } else { Arc::clone(&b) };
            s.spawn(move || {
                let (src, class) = if t < 4 { (SRC_A, "Scale2") } else { (SRC_B, "Scale3") };
                run_one(&cache, src, class);
            });
        }
    });
    // Every miss was resolved by exactly one of: a real compile or a disk
    // load of the other process's entry — and never corrupted anything.
    for cache in [&a, &b] {
        assert_eq!(cache.misses(), cache.compiles() + cache.disk_hits());
        assert_eq!(cache.corrupt_evicted(), 0);
    }
    assert!(a.compiles() + b.compiles() >= 2, "each source compiled somewhere");
    drop((a, b));

    // Whatever the interleaving, the files left behind are valid: a fresh
    // cache replays both sources from disk with zero recompiles.
    let fresh = ArtifactCache::with_disk(&dir).unwrap();
    run_one(&fresh, SRC_A, "Scale2");
    run_one(&fresh, SRC_B, "Scale3");
    assert_eq!((fresh.disk_hits(), fresh.compiles()), (2, 0));
    assert_eq!(fresh.corrupt_evicted(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}
