//! The dependency-aware launch graph behind [`Concord::submit_for`] /
//! [`Concord::complete`](crate::Concord::complete).
//!
//! The serial offload path brackets every construct with its own fence
//! pair and runs constructs strictly one after another. This module holds
//! the bookkeeping that lets the runtime do better *without changing a
//! single output byte*: every submitted launch carries a [`Footprint`] —
//! the set of shared-region allocation blocks it may touch, each tagged
//! with the strongest [`AccessMode`] the static summary inferred — and a
//! pairwise [`Conflict`] test decides what the drain loop may do:
//!
//! * [`Conflict::Independent`] — no byte one launch writes is read or
//!   written by the other: the launches may execute concurrently
//!   (snapshot-and-log, commit in submission order) or share a fence
//!   pair.
//! * [`Conflict::Coalesce`] — the launches overlap only through
//!   commutative accumulation (`atomic_add`/`atomic_min`): they must
//!   still execute in submission order, but may share one fence pair.
//! * [`Conflict::Order`] — anything involving a write, or a read against
//!   an accumulate: full serialization, own fence pairs, exactly the
//!   serial path.
//!
//! Footprints are *block-granular*: the runtime widens every resolved
//! access to the allocation that backs it, which makes the disjointness
//! test sound without per-item range reasoning. A launch whose accesses
//! could not all be resolved (opaque summary, unresolvable field pointer,
//! gated operations) gets an opaque footprint that conflicts with
//! everything — it degrades to exactly the serial behaviour.
//!
//! [`Concord::submit_for`]: crate::Concord::submit_for

use concord_analyze::AccessMode;
use concord_ir::FuncId;
use concord_svm::CpuAddr;
use std::collections::VecDeque;

use crate::scheduler::Target;
use crate::ConstructKind;

/// Identifier of a submitted launch, in submission order. Returned by
/// [`Concord::submit_for`](crate::Concord::submit_for) and redeemed at
/// [`Concord::complete`](crate::Concord::complete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaunchId(pub u64);

impl std::fmt::Display for LaunchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "launch#{}", self.0)
    }
}

/// One resolved byte range of a footprint: the half-open region
/// `[lo, hi)` of shared-region address space, touched with `mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootRange {
    /// First byte (absolute CPU-space address, inclusive).
    pub lo: u64,
    /// One past the last byte (exclusive).
    pub hi: u64,
    /// Strongest access mode inferred for this range.
    pub mode: AccessMode,
}

/// What the drain loop may do with two launches, from their footprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// Provably disjoint writes: concurrent execution is byte-identical
    /// to serial execution.
    Independent,
    /// Overlap only through commutative accumulation: ordered execution,
    /// but one fence pair may cover both launches.
    Coalesce,
    /// A real dependency: full serialization in submission order.
    Order,
}

/// The set of shared-region blocks one launch may touch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    /// True when the launch's accesses could not all be resolved to
    /// allocation blocks: the launch conservatively conflicts with
    /// everything (and with every host access).
    pub opaque: bool,
    /// Resolved block ranges. Ranges may overlap each other (e.g. the
    /// body block appears once per inferred mode); the conflict test is
    /// pairwise and does not require canonical form.
    pub ranges: Vec<FootRange>,
}

impl Footprint {
    /// The footprint that conflicts with everything.
    #[must_use]
    pub fn opaque() -> Self {
        Footprint { opaque: true, ranges: Vec::new() }
    }

    /// Does this footprint touch any byte of `[lo, hi)` in any mode?
    /// Host-side writes and frees must order against *reads* too (the
    /// serial program ran the launch before the host op).
    #[must_use]
    pub fn touches(&self, lo: u64, hi: u64) -> bool {
        self.opaque || self.ranges.iter().any(|r| r.lo < hi && lo < r.hi)
    }

    /// The conflict between this launch and a later one.
    #[must_use]
    pub fn conflict(&self, other: &Footprint) -> Conflict {
        if self.opaque || other.opaque {
            return Conflict::Order;
        }
        let mut worst = Conflict::Independent;
        for a in &self.ranges {
            for b in &other.ranges {
                if a.hi <= b.lo || b.hi <= a.lo {
                    continue;
                }
                match (a.mode, b.mode) {
                    (AccessMode::Read, AccessMode::Read) => {}
                    (AccessMode::Accumulate, AccessMode::Accumulate) => {
                        worst = Conflict::Coalesce;
                    }
                    _ => return Conflict::Order,
                }
            }
        }
        worst
    }
}

/// Scheduling counters of one launch graph, exposed through
/// [`Concord::graph_stats`](crate::Concord::graph_stats) and the serving
/// layer's `stats` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Launches submitted to the graph.
    pub submitted: u64,
    /// Launches executed (drained from the graph).
    pub completed: u64,
    /// Launches that executed concurrently with another launch (counted
    /// per overlap wave).
    pub overlapped: u64,
    /// Times a launch could not join a wave because of an ordering
    /// conflict with an earlier pending launch.
    pub conflict_stalls: u64,
    /// Launches that joined a shared-fence batch through a
    /// [`Conflict::Coalesce`] relationship.
    pub coalesced: u64,
    /// Fence pairs elided by batching consecutive GPU launches under one
    /// pair (mirrors the region's `fences_elided` counter).
    pub fences_elided: u64,
}

/// A submitted-but-not-yet-executed launch: everything the drain loop
/// needs to run it exactly as the serial path would have.
pub(crate) struct PendingLaunch {
    pub id: u64,
    pub class: String,
    pub func: FuncId,
    pub kind: ConstructKind,
    pub body: CpuAddr,
    pub n: u32,
    pub target: Target,
    pub gpu_allowed: bool,
    /// Kernel uses order-dependent gated ops (`device_malloc`,
    /// compare-and-swap): never wave with anything.
    pub gated: bool,
    pub footprint: Footprint,
}

/// The submission-ordered queue of pending launches plus its counters.
#[derive(Default)]
pub(crate) struct LaunchGraph {
    pending: VecDeque<PendingLaunch>,
    stats: GraphStats,
    next_id: u64,
}

impl LaunchGraph {
    pub(crate) fn submit(&mut self, mut launch: PendingLaunch) -> LaunchId {
        let id = self.next_id;
        self.next_id += 1;
        launch.id = id;
        self.stats.submitted += 1;
        self.pending.push_back(launch);
        LaunchId(id)
    }

    /// Pop the next launch in submission order.
    pub(crate) fn pop(&mut self) -> Option<PendingLaunch> {
        let p = self.pending.pop_front();
        if p.is_some() {
            self.stats.completed += 1;
        }
        p
    }

    pub(crate) fn pending(&self) -> &VecDeque<PendingLaunch> {
        &self.pending
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    pub(crate) fn has(&self, id: u64) -> bool {
        self.pending.iter().any(|p| p.id == id)
    }

    /// Index (from the front) of the last pending launch whose footprint
    /// touches `[lo, hi)`, if any — everything up to and including it
    /// must drain before a host write to that range.
    pub(crate) fn touches(&self, lo: u64, hi: u64) -> bool {
        self.pending.iter().any(|p| p.footprint.touches(lo, hi))
    }

    pub(crate) fn stats(&self) -> GraphStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut GraphStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(ranges: &[(u64, u64, AccessMode)]) -> Footprint {
        Footprint {
            opaque: false,
            ranges: ranges.iter().map(|&(lo, hi, mode)| FootRange { lo, hi, mode }).collect(),
        }
    }

    #[test]
    fn disjoint_blocks_are_independent() {
        let a = fp(&[(0, 64, AccessMode::Write), (100, 200, AccessMode::Read)]);
        let b = fp(&[(64, 100, AccessMode::Write), (100, 200, AccessMode::Read)]);
        assert_eq!(a.conflict(&b), Conflict::Independent);
    }

    #[test]
    fn shared_reads_are_independent() {
        let a = fp(&[(0, 64, AccessMode::Read)]);
        let b = fp(&[(0, 64, AccessMode::Read)]);
        assert_eq!(a.conflict(&b), Conflict::Independent);
    }

    #[test]
    fn overlapping_write_orders() {
        let a = fp(&[(0, 64, AccessMode::Write)]);
        for mode in [AccessMode::Read, AccessMode::Accumulate, AccessMode::Write] {
            let b = fp(&[(32, 96, mode)]);
            assert_eq!(a.conflict(&b), Conflict::Order, "write vs {mode:?}");
        }
    }

    #[test]
    fn accumulate_pairs_coalesce_but_read_against_accumulate_orders() {
        let acc = fp(&[(0, 64, AccessMode::Accumulate)]);
        assert_eq!(acc.conflict(&acc.clone()), Conflict::Coalesce);
        let rd = fp(&[(0, 64, AccessMode::Read)]);
        assert_eq!(acc.conflict(&rd), Conflict::Order);
        assert_eq!(rd.conflict(&acc), Conflict::Order);
    }

    #[test]
    fn opaque_conflicts_with_everything_and_touches_everything() {
        let op = Footprint::opaque();
        let rd = fp(&[(1000, 1064, AccessMode::Read)]);
        assert_eq!(op.conflict(&rd), Conflict::Order);
        assert_eq!(rd.conflict(&op), Conflict::Order);
        assert_eq!(op.conflict(&op.clone()), Conflict::Order);
        assert!(op.touches(0, 1));
    }

    #[test]
    fn touches_is_any_mode_any_overlap() {
        let a = fp(&[(64, 128, AccessMode::Read)]);
        assert!(a.touches(0, 65));
        assert!(a.touches(127, 200));
        assert!(!a.touches(0, 64));
        assert!(!a.touches(128, 256));
    }

    #[test]
    fn coalesce_only_when_no_order_pair_exists() {
        // Same accumulate range, but one launch also writes a block the
        // other reads: the write wins and the pair must order.
        let a = fp(&[(0, 64, AccessMode::Accumulate), (64, 128, AccessMode::Write)]);
        let b = fp(&[(0, 64, AccessMode::Accumulate), (64, 128, AccessMode::Read)]);
        assert_eq!(a.conflict(&b), Conflict::Order);
    }
}
