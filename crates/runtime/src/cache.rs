//! Process-wide compile/JIT-artifact sharing across [`Concord`] sessions.
//!
//! A [`Concord`] built with [`Concord::new`] compiles its source privately
//! and JIT-caches GPU binaries per instance (§3.4). A multi-session host —
//! `concord-serve` multiplexing independent clients, or any embedder that
//! spins up many contexts over the same kernels — would repeat that work
//! once per session. [`ArtifactCache`] hoists it to the process: entries
//! are keyed by **(source hash, [`GpuConfig`])** and hold the fully
//! compiled CPU module, the GPU-lowered artifact, and the set of kernels
//! already JIT-charged, so the second session over identical source
//! compiles nothing and pays no JIT cost the first session already paid.
//!
//! The cache is deliberately coarse (whole translation units, not
//! individual kernels): the frontend compiles translation units, and a
//! client of the serving layer submits exactly one unit per session.
//!
//! [`Concord`]: crate::Concord
//! [`Concord::new`]: crate::Concord::new

use concord_compiler::{GpuArtifact, GpuConfig};
use concord_frontend::LoweredProgram;
use concord_ir::codec::{fnv1a_64, ByteReader, ByteWriter, Codec};
use concord_ir::FuncId;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic prefix of an on-disk artifact file.
const DISK_MAGIC: &[u8; 8] = b"CONCACHE";

/// On-disk format version. Bumped whenever any codec layout changes; files
/// carrying another version are evicted and recompiled, never misread.
const DISK_FORMAT_VERSION: u32 = 1;

/// The per-kernel "already JIT-compiled" set shared by every session that
/// hit the same cache entry. The GPU backend charges `jit_ms` only on the
/// first insertion of a kernel's [`FuncId`] — process-wide, when sessions
/// share this set through the cache.
pub type SharedJitSet = Arc<Mutex<HashSet<FuncId>>>;

/// Lazily-compiled native machine code shared by every session that hit
/// the same cache entry: `None` until the first `Target::Native` launch
/// compiles the module, after which every session reuses the same
/// executable buffer and reports `jit_seconds == 0` for native codegen.
pub type SharedNativeModule = Arc<Mutex<Option<Arc<concord_native::NativeModule>>>>;

/// Deterministic 64-bit FNV-1a hash of kernel source text — the first half
/// of a cache key. Stable across processes and platforms so keys are
/// loggable and comparable.
#[must_use]
pub fn source_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached compilation: everything [`crate::Concord`] derives from
/// source text that is independent of the session's region and simulators.
pub(crate) struct CachedArtifact {
    pub(crate) program: LoweredProgram,
    pub(crate) gpu_artifact: GpuArtifact,
    pub(crate) jitted: SharedJitSet,
    pub(crate) native: SharedNativeModule,
}

/// A process-wide, thread-safe compile/JIT-artifact cache keyed by
/// (source hash, [`GpuConfig`]).
///
/// Construct one per serving process (or per test) and build sessions
/// through [`crate::Concord::new_with_cache`]. Hit/miss counters are
/// monotonic and cheap to read, so a server can surface cache
/// effectiveness in its stats output.
#[derive(Default)]
pub struct ArtifactCache {
    entries: Mutex<HashMap<(u64, GpuConfig), Arc<CachedArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Spill directory; `None` for a purely in-memory cache.
    disk: Option<PathBuf>,
    disk_hits: AtomicU64,
    compiles: AtomicU64,
    corrupt_evicted: AtomicU64,
    disk_writes: AtomicU64,
}

impl ArtifactCache {
    /// An empty in-memory cache.
    #[must_use]
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// A cache that additionally spills compiled artifacts to `dir` and
    /// satisfies in-memory misses from it, so restarted or sibling
    /// processes reuse compiles. The directory is created if absent.
    ///
    /// Entries are one file per (source hash, [`GpuConfig`]) key, written
    /// atomically (temp file + rename) and validated on load by magic,
    /// format version, key echo, and an FNV-1a checksum over the payload —
    /// a corrupt or stale file is evicted and recompiled transparently.
    /// Native machine code is *not* persisted (it is re-JITed per process);
    /// a disk hit therefore skips frontend + GPU lowering but still pays
    /// first-launch JIT cost.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create `dir`.
    pub fn with_disk(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactCache { disk: Some(dir), ..ArtifactCache::default() })
    }

    /// The spill directory, when disk persistence is enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Compilations served from the in-memory map so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compilations that had to run because the key was absent.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// In-memory misses satisfied by a valid on-disk entry (no recompile).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Full frontend + GPU-lowering compiles actually executed. Always
    /// `misses() - disk_hits()`; "zero recompiles after restart" means this
    /// stays 0 while `disk_hits` grows.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// On-disk entries rejected by validation (bad magic, wrong version,
    /// key mismatch, checksum failure, undecodable payload) and deleted.
    pub fn corrupt_evicted(&self) -> u64 {
        self.corrupt_evicted.load(Ordering::Relaxed)
    }

    /// Artifact files successfully spilled to disk.
    pub fn disk_writes(&self) -> u64 {
        self.disk_writes.load(Ordering::Relaxed)
    }

    /// Distinct (source, config) entries currently cached.
    pub fn entries(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether `(source, config)` is already cached. Informational — a
    /// concurrent insert can race this probe; use the return of the build
    /// path for exact accounting.
    #[must_use]
    pub fn contains(&self, source: &str, config: GpuConfig) -> bool {
        self.entries.lock().unwrap().contains_key(&(source_hash(source), config))
    }

    /// Fetch the artifact for `(source, config)`, compiling and inserting
    /// it on a miss via `compile`. The map lock is held across the compile
    /// so a burst of identical sessions compiles exactly once.
    pub(crate) fn lookup_or_compile<E>(
        &self,
        source: &str,
        config: GpuConfig,
        compile: impl FnOnce() -> Result<(LoweredProgram, GpuArtifact), E>,
    ) -> Result<(Arc<CachedArtifact>, bool), E> {
        let key = (source_hash(source), config);
        let mut entries = self.entries.lock().unwrap();
        if let Some(hit) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        if let Some(entry) = self.load_from_disk(&key) {
            entries.insert(key, Arc::clone(&entry));
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((entry, false));
        }
        let (program, gpu_artifact) = compile()?;
        let entry = Arc::new(CachedArtifact {
            program,
            gpu_artifact,
            jitted: Arc::new(Mutex::new(HashSet::new())),
            native: Arc::new(Mutex::new(None)),
        });
        // Spilled while the map lock is held, which serializes in-process
        // writers; cross-process writers are isolated by per-pid temp names
        // and the atomic rename.
        self.store_to_disk(&key, &entry);
        entries.insert(key, Arc::clone(&entry));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        Ok((entry, false))
    }

    /// Filename of the on-disk entry for `key` (stable across processes).
    fn entry_path(dir: &Path, key: &(u64, GpuConfig)) -> PathBuf {
        dir.join(format!("{:016x}-{}.cca", key.0, key.1.cache_tag()))
    }

    /// Try to satisfy `key` from disk. Validation failures evict the file
    /// and count toward `corrupt_evicted`; a missing file is just a miss.
    fn load_from_disk(&self, key: &(u64, GpuConfig)) -> Option<Arc<CachedArtifact>> {
        let dir = self.disk.as_ref()?;
        let path = Self::entry_path(dir, key);
        let bytes = std::fs::read(&path).ok()?;
        match Self::decode_entry(&bytes, key) {
            Ok(entry) => Some(Arc::new(entry)),
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                self.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Validate and decode one artifact file.
    fn decode_entry(bytes: &[u8], key: &(u64, GpuConfig)) -> Result<CachedArtifact, String> {
        let mut r = ByteReader::new(bytes);
        let magic = r.u64().map_err(|e| e.to_string())?;
        if magic != u64::from_le_bytes(*DISK_MAGIC) {
            return Err("bad magic".into());
        }
        let version = r.u32().map_err(|e| e.to_string())?;
        if version != DISK_FORMAT_VERSION {
            return Err(format!("format version {version} != {DISK_FORMAT_VERSION}"));
        }
        let hash = r.u64().map_err(|e| e.to_string())?;
        let config = GpuConfig::decode(&mut r).map_err(|e| e.to_string())?;
        if (hash, config) != *key {
            return Err("key echo mismatch".into());
        }
        let checksum = r.u64().map_err(|e| e.to_string())?;
        let payload = &bytes[r.offset()..];
        if fnv1a_64(payload) != checksum {
            return Err("checksum mismatch".into());
        }
        let program = LoweredProgram::decode(&mut r).map_err(|e| e.to_string())?;
        let gpu_artifact = GpuArtifact::decode(&mut r).map_err(|e| e.to_string())?;
        if !r.is_done() {
            return Err("trailing bytes after payload".into());
        }
        Ok(CachedArtifact {
            program,
            gpu_artifact,
            jitted: Arc::new(Mutex::new(HashSet::new())),
            native: Arc::new(Mutex::new(None)),
        })
    }

    /// Best-effort spill of a freshly compiled entry: failures leave the
    /// cache purely in-memory for this key, they are never fatal.
    fn store_to_disk(&self, key: &(u64, GpuConfig), entry: &CachedArtifact) {
        let Some(dir) = self.disk.as_ref() else { return };
        let mut payload = ByteWriter::new();
        entry.program.encode(&mut payload);
        entry.gpu_artifact.encode(&mut payload);
        let payload = payload.into_bytes();

        let mut w = ByteWriter::new();
        w.raw(DISK_MAGIC);
        w.u32(DISK_FORMAT_VERSION);
        w.u64(key.0);
        key.1.encode(&mut w);
        w.u64(fnv1a_64(&payload));
        w.raw(&payload);

        let path = Self::entry_path(dir, key);
        let tmp =
            dir.join(format!("{:016x}-{}.tmp.{}", key.0, key.1.cache_tag(), std::process::id()));
        let ok =
            std::fs::write(&tmp, w.into_bytes()).is_ok() && std::fs::rename(&tmp, &path).is_ok();
        if ok {
            self.disk_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("entries", &self.entries())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("disk", &self.disk)
            .field("disk_hits", &self.disk_hits())
            .field("compiles", &self.compiles())
            .field("corrupt_evicted", &self.corrupt_evicted())
            .field("disk_writes", &self.disk_writes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_hash_is_stable_and_discriminates() {
        assert_eq!(source_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(source_hash("class K {};"), source_hash("class K {};"));
        assert_ne!(source_hash("class K {};"), source_hash("class J {};"));
    }

    #[test]
    fn same_source_different_config_is_a_different_entry() {
        let cache = ArtifactCache::new();
        let compile = || {
            let program = concord_frontend::compile(
                "class K { public: int out; void operator()(int i) { out = i; } };",
            )
            .unwrap();
            let art = concord_compiler::lower_for_gpu(
                &program.module,
                concord_compiler::GpuConfig::all(7),
            );
            Ok::<_, std::convert::Infallible>((program, art))
        };
        let src = "class K { public: int out; void operator()(int i) { out = i; } };";
        let (_, hit) = cache.lookup_or_compile(src, GpuConfig::all(7), compile).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup_or_compile(src, GpuConfig::all(7), compile).unwrap();
        assert!(hit);
        let (_, hit) = cache.lookup_or_compile(src, GpuConfig::baseline(7), compile).unwrap();
        assert!(!hit, "GpuConfig is part of the key");
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }
}
