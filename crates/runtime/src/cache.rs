//! Process-wide compile/JIT-artifact sharing across [`Concord`] sessions.
//!
//! A [`Concord`] built with [`Concord::new`] compiles its source privately
//! and JIT-caches GPU binaries per instance (§3.4). A multi-session host —
//! `concord-serve` multiplexing independent clients, or any embedder that
//! spins up many contexts over the same kernels — would repeat that work
//! once per session. [`ArtifactCache`] hoists it to the process: entries
//! are keyed by **(source hash, [`GpuConfig`])** and hold the fully
//! compiled CPU module, the GPU-lowered artifact, and the set of kernels
//! already JIT-charged, so the second session over identical source
//! compiles nothing and pays no JIT cost the first session already paid.
//!
//! The cache is deliberately coarse (whole translation units, not
//! individual kernels): the frontend compiles translation units, and a
//! client of the serving layer submits exactly one unit per session.
//!
//! [`Concord`]: crate::Concord
//! [`Concord::new`]: crate::Concord::new

use concord_compiler::{GpuArtifact, GpuConfig};
use concord_frontend::LoweredProgram;
use concord_ir::FuncId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The per-kernel "already JIT-compiled" set shared by every session that
/// hit the same cache entry. The GPU backend charges `jit_ms` only on the
/// first insertion of a kernel's [`FuncId`] — process-wide, when sessions
/// share this set through the cache.
pub type SharedJitSet = Arc<Mutex<HashSet<FuncId>>>;

/// Lazily-compiled native machine code shared by every session that hit
/// the same cache entry: `None` until the first `Target::Native` launch
/// compiles the module, after which every session reuses the same
/// executable buffer and reports `jit_seconds == 0` for native codegen.
pub type SharedNativeModule = Arc<Mutex<Option<Arc<concord_native::NativeModule>>>>;

/// Deterministic 64-bit FNV-1a hash of kernel source text — the first half
/// of a cache key. Stable across processes and platforms so keys are
/// loggable and comparable.
#[must_use]
pub fn source_hash(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached compilation: everything [`crate::Concord`] derives from
/// source text that is independent of the session's region and simulators.
pub(crate) struct CachedArtifact {
    pub(crate) program: LoweredProgram,
    pub(crate) gpu_artifact: GpuArtifact,
    pub(crate) jitted: SharedJitSet,
    pub(crate) native: SharedNativeModule,
}

/// A process-wide, thread-safe compile/JIT-artifact cache keyed by
/// (source hash, [`GpuConfig`]).
///
/// Construct one per serving process (or per test) and build sessions
/// through [`crate::Concord::new_with_cache`]. Hit/miss counters are
/// monotonic and cheap to read, so a server can surface cache
/// effectiveness in its stats output.
#[derive(Default)]
pub struct ArtifactCache {
    entries: Mutex<HashMap<(u64, GpuConfig), Arc<CachedArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// Compilations served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compilations that had to run because the key was absent.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct (source, config) entries currently cached.
    pub fn entries(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether `(source, config)` is already cached. Informational — a
    /// concurrent insert can race this probe; use the return of the build
    /// path for exact accounting.
    #[must_use]
    pub fn contains(&self, source: &str, config: GpuConfig) -> bool {
        self.entries.lock().unwrap().contains_key(&(source_hash(source), config))
    }

    /// Fetch the artifact for `(source, config)`, compiling and inserting
    /// it on a miss via `compile`. The map lock is held across the compile
    /// so a burst of identical sessions compiles exactly once.
    pub(crate) fn lookup_or_compile<E>(
        &self,
        source: &str,
        config: GpuConfig,
        compile: impl FnOnce() -> Result<(LoweredProgram, GpuArtifact), E>,
    ) -> Result<(Arc<CachedArtifact>, bool), E> {
        let key = (source_hash(source), config);
        let mut entries = self.entries.lock().unwrap();
        if let Some(hit) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        let (program, gpu_artifact) = compile()?;
        let entry = Arc::new(CachedArtifact {
            program,
            gpu_artifact,
            jitted: Arc::new(Mutex::new(HashSet::new())),
            native: Arc::new(Mutex::new(None)),
        });
        entries.insert(key, Arc::clone(&entry));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((entry, false))
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("entries", &self.entries())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_hash_is_stable_and_discriminates() {
        assert_eq!(source_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(source_hash("class K {};"), source_hash("class K {};"));
        assert_ne!(source_hash("class K {};"), source_hash("class J {};"));
    }

    #[test]
    fn same_source_different_config_is_a_different_entry() {
        let cache = ArtifactCache::new();
        let compile = || {
            let program = concord_frontend::compile(
                "class K { public: int out; void operator()(int i) { out = i; } };",
            )
            .unwrap();
            let art = concord_compiler::lower_for_gpu(
                &program.module,
                concord_compiler::GpuConfig::all(7),
            );
            Ok::<_, std::convert::Infallible>((program, art))
        };
        let src = "class K { public: int out; void operator()(int i) { out = i; } };";
        let (_, hit) = cache.lookup_or_compile(src, GpuConfig::all(7), compile).unwrap();
        assert!(!hit);
        let (_, hit) = cache.lookup_or_compile(src, GpuConfig::all(7), compile).unwrap();
        assert!(hit);
        let (_, hit) = cache.lookup_or_compile(src, GpuConfig::baseline(7), compile).unwrap();
        assert!(!hit, "GpuConfig is part of the key");
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }
}
