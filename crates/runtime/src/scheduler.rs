//! Work partitioning across devices: the [`Target`] policy enum, the
//! per-kernel [`ProfileHistory`], and the [`plan`] function that turns a
//! policy plus history into a concrete device split.
//!
//! Everything here is deterministic: `Target::Auto` rebalances from
//! *simulated* per-device throughput recorded in the history, never from
//! wall-clock time, so the same call sequence on a fresh [`crate::Concord`]
//! always yields the same splits, the same reports, and the same memory.

use crate::backend::Span;
use concord_energy::Device;
use std::collections::HashMap;

/// Where a heterogeneous construct should execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// All iterations on the multicore CPU.
    Cpu,
    /// All iterations on the integrated GPU (CPU fallback when the kernel
    /// is GPU-restricted, §3.1).
    Gpu,
    /// Static split: the first `round(n * gpu_fraction)` iterations run on
    /// the GPU, the rest on the CPU, concurrently under one fence pair.
    /// `gpu_fraction` is clamped to `[0, 1]`; degenerate splits collapse
    /// to the pure single-device plans.
    Hybrid {
        /// Fraction of the iteration space given to the GPU.
        gpu_fraction: f64,
    },
    /// Adaptive split from per-kernel profile history: the first call for
    /// a kernel probes both devices with a 50/50 split, later calls split
    /// proportionally to the observed items/sec of each device.
    Auto,
    /// All iterations on the host CPU through the native JIT backend
    /// (`concord-native`) instead of the cycle-level CPU interpreter.
    /// Requires x86-64 Linux; elsewhere the runtime reports
    /// [`crate::RuntimeError::NativeUnsupported`].
    Native,
}

impl Target {
    /// Parse a CLI-style target name: `cpu`, `gpu`, `hybrid`,
    /// `hybrid:<fraction>`, `auto`, or `native`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Target> {
        match s {
            "cpu" => Some(Target::Cpu),
            "gpu" => Some(Target::Gpu),
            "auto" => Some(Target::Auto),
            "native" => Some(Target::Native),
            "hybrid" => Some(Target::Hybrid { gpu_fraction: 0.5 }),
            _ => {
                let frac = s.strip_prefix("hybrid:")?.parse::<f64>().ok()?;
                frac.is_finite().then_some(Target::Hybrid { gpu_fraction: frac })
            }
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Cpu => write!(f, "cpu"),
            Target::Gpu => write!(f, "gpu"),
            Target::Hybrid { gpu_fraction } => write!(f, "hybrid:{gpu_fraction}"),
            Target::Auto => write!(f, "auto"),
            Target::Native => write!(f, "native"),
        }
    }
}

/// Observed execution totals for one kernel on one device.
#[derive(Debug, Clone, Copy, Default)]
struct DeviceRate {
    items: u64,
    seconds: f64,
}

impl DeviceRate {
    /// Items per simulated second, if anything was observed.
    fn rate(&self) -> Option<f64> {
        (self.items > 0 && self.seconds > 0.0).then(|| self.items as f64 / self.seconds)
    }
}

/// A device *class* the profile history tracks throughput for. Unlike
/// [`Device`] (the energy model's two simulated devices), this also
/// distinguishes the native JIT path, which runs on the CPU device but has
/// a throughput profile of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// Interpreted multicore CPU (cycle-level simulator).
    Cpu,
    /// Integrated GPU simulator.
    Gpu,
    /// Host CPU running JIT-compiled machine code (`concord-native`).
    Native,
}

impl From<Device> for DeviceClass {
    fn from(device: Device) -> DeviceClass {
        match device {
            Device::Cpu => DeviceClass::Cpu,
            Device::Gpu => DeviceClass::Gpu,
        }
    }
}

/// Per-kernel record of observed per-device throughput, accumulated
/// across every construct a [`crate::Concord`] executes. `Target::Auto`
/// reads it to pick splits; all targets feed it.
#[derive(Debug, Default)]
pub struct ProfileHistory {
    kernels: HashMap<String, [DeviceRate; 3]>,
}

fn slot(class: DeviceClass) -> usize {
    match class {
        DeviceClass::Cpu => 0,
        DeviceClass::Gpu => 1,
        DeviceClass::Native => 2,
    }
}

impl ProfileHistory {
    /// Record `items` executed in `seconds` on a device class. Simulated
    /// devices pass their [`Device`] (simulated seconds); the native
    /// backend records wall-clock seconds under [`DeviceClass::Native`].
    pub fn record(
        &mut self,
        kernel: &str,
        class: impl Into<DeviceClass>,
        items: u64,
        seconds: f64,
    ) {
        let e = &mut self.kernels.entry(kernel.to_string()).or_default()[slot(class.into())];
        e.items += items;
        e.seconds += seconds;
    }

    /// The GPU's share of combined throughput for `kernel`, if both
    /// simulated devices have been observed.
    #[must_use]
    pub fn gpu_share(&self, kernel: &str) -> Option<f64> {
        let rates = self.kernels.get(kernel)?;
        let cpu = rates[slot(DeviceClass::Cpu)].rate()?;
        let gpu = rates[slot(DeviceClass::Gpu)].rate()?;
        Some(gpu / (gpu + cpu))
    }

    /// Observed items/sec for `kernel` on a device class, if recorded.
    #[must_use]
    pub fn rate(&self, kernel: &str, class: DeviceClass) -> Option<f64> {
        self.kernels.get(kernel)?[slot(class)].rate()
    }
}

/// A concrete execution plan for one construct: which device runs which
/// sub-range. GPU part (if any) comes first so fences and JIT are charged
/// before CPU work conceptually runs alongside.
#[derive(Debug)]
pub struct Plan {
    /// Sub-ranges in execution order. At most one per device.
    pub parts: Vec<(Device, Span)>,
    /// True when a GPU-targeted plan was redirected to the CPU because
    /// the kernel is GPU-restricted.
    pub fell_back: bool,
    /// The fraction of items the plan gives the GPU.
    pub gpu_fraction: f64,
    /// Which policy produced the plan (for scheduler-decision traces).
    pub policy: &'static str,
}

fn single(device: Device, n: u32, fell_back: bool, policy: &'static str) -> Plan {
    let gpu_fraction = if device == Device::Gpu { 1.0 } else { 0.0 };
    Plan { parts: vec![(device, Span::full(n))], fell_back, gpu_fraction, policy }
}

fn split(n: u32, gpu_fraction: f64, policy: &'static str) -> Plan {
    let frac = gpu_fraction.clamp(0.0, 1.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let g = (f64::from(n) * frac).round() as u32;
    if g == 0 {
        return single(Device::Cpu, n, false, policy);
    }
    if g >= n {
        return single(Device::Gpu, n, false, policy);
    }
    Plan {
        parts: vec![
            (Device::Gpu, Span { lo: 0, hi: g, grid: n }),
            (Device::Cpu, Span { lo: g, hi: n, grid: n }),
        ],
        fell_back: false,
        gpu_fraction: f64::from(g) / f64::from(n),
        policy,
    }
}

/// Decide how to split `[0, n)` for `kernel` under `target`.
///
/// When the kernel cannot run on the GPU (`gpu_allowed == false`), every
/// policy collapses to the CPU and GPU-requesting plans are marked
/// `fell_back` (§3.1's conservative fallback).
#[must_use]
pub fn plan(
    target: Target,
    n: u32,
    gpu_allowed: bool,
    history: &ProfileHistory,
    kernel: &str,
) -> Plan {
    // Native runs on the host CPU, so GPU restrictions never apply to it
    // and it never counts as a fallback.
    if target == Target::Native {
        return single(Device::Cpu, n, false, "native");
    }
    if !gpu_allowed {
        return single(Device::Cpu, n, target != Target::Cpu, "fallback");
    }
    match target {
        Target::Cpu => single(Device::Cpu, n, false, "cpu"),
        Target::Native => single(Device::Cpu, n, false, "native"),
        Target::Gpu => single(Device::Gpu, n, false, "gpu"),
        _ if n == 0 => single(Device::Cpu, n, false, "empty"),
        Target::Hybrid { gpu_fraction } => split(n, gpu_fraction, "hybrid"),
        Target::Auto => match history.gpu_share(kernel) {
            Some(share) => split(n, share, "auto"),
            None => split(n, 0.5, "auto-probe"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["cpu", "gpu", "auto", "native", "hybrid:0.25"] {
            assert_eq!(Target::parse(s).unwrap().to_string(), s);
        }
        assert_eq!(Target::parse("hybrid"), Some(Target::Hybrid { gpu_fraction: 0.5 }));
        assert_eq!(Target::parse("hybrid:nan"), None);
        assert_eq!(Target::parse("tpu"), None);
    }

    #[test]
    fn hybrid_splits_cover_the_range_without_overlap() {
        for n in [1u32, 2, 7, 100] {
            for frac in [0.0, 0.1, 0.5, 0.9, 1.0, -3.0, 2.0] {
                let p = plan(
                    Target::Hybrid { gpu_fraction: frac },
                    n,
                    true,
                    &ProfileHistory::default(),
                    "K",
                );
                let total: u32 = p.parts.iter().map(|(_, s)| s.items()).sum();
                assert_eq!(total, n, "n={n} frac={frac}");
                let mut next = 0;
                for (_, s) in p
                    .parts
                    .iter()
                    .rev()
                    .filter(|(d, _)| *d == Device::Cpu)
                    .chain(p.parts.iter().filter(|(d, _)| *d == Device::Gpu))
                {
                    assert_eq!(s.grid, n);
                    assert!(s.lo <= s.hi);
                }
                // Parts are [Gpu [0,g), Cpu [g,n)] or a single full span.
                for (_, s) in &p.parts {
                    assert_eq!(s.lo, next);
                    next = s.hi;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn degenerate_fractions_collapse_to_single_device() {
        let h = ProfileHistory::default();
        let p = plan(Target::Hybrid { gpu_fraction: 0.0 }, 10, true, &h, "K");
        assert_eq!(p.parts, vec![(Device::Cpu, Span::full(10))]);
        let p = plan(Target::Hybrid { gpu_fraction: 1.0 }, 10, true, &h, "K");
        assert_eq!(p.parts, vec![(Device::Gpu, Span::full(10))]);
    }

    #[test]
    fn auto_probes_then_follows_history() {
        let mut h = ProfileHistory::default();
        let p = plan(Target::Auto, 100, true, &h, "K");
        assert_eq!(p.policy, "auto-probe");
        assert_eq!(p.parts.len(), 2);
        assert_eq!(p.parts[0], (Device::Gpu, Span { lo: 0, hi: 50, grid: 100 }));

        // GPU observed 3x faster -> 75/25 split.
        h.record("K", Device::Gpu, 300, 1.0);
        h.record("K", Device::Cpu, 100, 1.0);
        let p = plan(Target::Auto, 100, true, &h, "K");
        assert_eq!(p.policy, "auto");
        assert_eq!(p.parts[0], (Device::Gpu, Span { lo: 0, hi: 75, grid: 100 }));
        assert_eq!(p.parts[1], (Device::Cpu, Span { lo: 75, hi: 100, grid: 100 }));

        // History is per kernel.
        let p = plan(Target::Auto, 100, true, &h, "Other");
        assert_eq!(p.policy, "auto-probe");
    }

    #[test]
    fn native_plans_on_cpu_and_never_falls_back() {
        let h = ProfileHistory::default();
        for allowed in [true, false] {
            let p = plan(Target::Native, 10, allowed, &h, "K");
            assert_eq!(p.parts, vec![(Device::Cpu, Span::full(10))]);
            assert!(!p.fell_back);
            assert_eq!(p.policy, "native");
        }
    }

    #[test]
    fn profile_history_tracks_native_as_its_own_class() {
        let mut h = ProfileHistory::default();
        h.record("K", Device::Cpu, 100, 1.0);
        h.record("K", DeviceClass::Native, 5000, 1.0);
        assert_eq!(h.rate("K", DeviceClass::Native), Some(5000.0));
        // Native observations are not GPU evidence for Auto splits.
        assert_eq!(h.gpu_share("K"), None);
        h.record("K", Device::Gpu, 300, 1.0);
        assert!((h.gpu_share("K").unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gpu_restricted_kernels_fall_back() {
        let h = ProfileHistory::default();
        for t in [Target::Gpu, Target::Hybrid { gpu_fraction: 0.5 }, Target::Auto] {
            let p = plan(t, 10, false, &h, "K");
            assert_eq!(p.parts, vec![(Device::Cpu, Span::full(10))]);
            assert!(p.fell_back);
        }
        assert!(!plan(Target::Cpu, 10, false, &h, "K").fell_back);
    }
}
