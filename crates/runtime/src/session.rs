//! Session journaling: record a session's host-visible operations so the
//! same workload can be replayed through either launch path.
//!
//! [`Concord::record_session`](crate::Concord::record_session) turns on a
//! journal of everything a driver does to the runtime — allocations,
//! frees, host writes into the shared region (captured by the region's
//! own write journal), and construct launches. The recorded op stream
//! replays two ways:
//!
//! * [`Concord::replay_serial`](crate::Concord::replay_serial) re-issues
//!   every op through the blocking `parallel_*_hetero` entry points —
//!   the reference execution.
//! * [`Concord::replay_graph`](crate::Concord::replay_graph) routes
//!   launches through [`Concord::submit_for`](crate::Concord::submit_for)
//!   / `submit_reduce`, deferring completion so independent launches can
//!   wave together; host writes and frees first drain every pending
//!   launch whose footprint touches the affected bytes, preserving the
//!   recorded happens-before edges.
//!
//! Replay preserves the *exact* recorded global order of host ops (the
//! journal stores absolute addresses, so the allocator must reproduce
//! them), which is what makes the two replays byte-comparable: the
//! differential battery asserts whole-region bytes, per-launch reports,
//! and trap choices are identical between the two paths.

use crate::scheduler::Target;
use concord_svm::CpuAddr;

/// One recorded session operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    /// `malloc(bytes)` returned `addr` (replay asserts the same address).
    Malloc {
        /// Requested size.
        bytes: u64,
        /// The address the recording session's allocator returned.
        addr: CpuAddr,
    },
    /// `free(addr)`.
    Free {
        /// The freed allocation.
        addr: CpuAddr,
    },
    /// A host write of `bytes` at absolute CPU address `addr` (captured
    /// through the shared region's write journal).
    Write {
        /// Absolute CPU-space address.
        addr: u64,
        /// The written bytes.
        bytes: Vec<u8>,
    },
    /// A `parallel_worklist_hetero` call. The construct is internally
    /// iterative (and already deterministic per target), so the journal
    /// records only the seed; frontier staging writes are not recorded.
    Worklist {
        /// Kernel class name.
        class: String,
        /// Body object address.
        body: CpuAddr,
        /// Seed frontier items, as passed by the caller.
        seed: Vec<i32>,
        /// Requested target.
        target: Target,
    },
    /// A `parallel_for_hetero` / `parallel_reduce_hetero` call.
    Launch {
        /// Kernel class name.
        class: String,
        /// Body object address.
        body: CpuAddr,
        /// Iteration count.
        n: u32,
        /// Requested target.
        target: Target,
        /// True for `parallel_reduce_hetero`.
        reduce: bool,
    },
}
