//! # concord-runtime
//!
//! The Concord runtime (§3): compiles a kernel-language program once,
//! holds the shared virtual memory region, and dispatches
//! `parallel_for_hetero` / `parallel_reduce_hetero` calls to the CPU
//! and/or GPU simulator — with JIT caching of GPU binaries (§3.4), memory
//! consistency fences at offload boundaries (§2.3), CPU fallback for
//! kernels that violate GPU restrictions (§2.1), and package-energy
//! accounting (§5.1).
//!
//! Execution devices sit behind the [`DeviceBackend`] trait
//! ([`backend`]); which device runs which sub-range is decided by the
//! [`scheduler`]. Besides the paper's `Cpu`/`Gpu` flags, [`Target`]
//! offers `Hybrid { gpu_fraction }` (static split across both devices
//! under one fence pair), `Auto` (deterministic adaptive split from
//! per-kernel profile history), and `Native` (JIT-compiled x86-64 machine
//! code on the host CPU via `concord-native`, bit-identical results to
//! `Cpu` at wall-clock speed).
//!
//! ## Example
//!
//! ```
//! use concord_runtime::{Concord, Options, Target};
//!
//! # fn main() -> Result<(), concord_runtime::RuntimeError> {
//! let src = r#"
//!     struct Node { Node* next; };
//!     class LoopBody {
//!     public:
//!         Node* nodes;
//!         void operator()(int i) { nodes[i].next = &(nodes[i+1]); }
//!     };
//! "#;
//! let mut cc = Concord::new(concord_energy::SystemConfig::ultrabook(), src, Options::default())?;
//! let nodes = cc.malloc(101 * 8)?;
//! let body = cc.malloc(8)?;
//! cc.region_mut().write_ptr(body, nodes)?;
//! let report = cc.parallel_for_hetero("LoopBody", body, 100, Target::Auto)?;
//! assert!(report.total_seconds() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod cache;
pub mod graph;
pub mod scheduler;
pub mod session;

pub use backend::{
    CpuBackend, DeviceBackend, ExecCtx, GpuBackend, LaunchStats, NativeBackend, ScratchGuard, Span,
};
pub use cache::{source_hash, ArtifactCache, SharedJitSet, SharedNativeModule};
pub use concord_analyze::{
    AccessBase, AccessMode, AccessPattern, AccessSummary, Gate as AnalysisGate,
    Mode as AnalysisMode, Report as AnalysisReport,
};
pub use graph::{Conflict, FootRange, Footprint, GraphStats, LaunchId};
pub use scheduler::{DeviceClass, Plan, ProfileHistory, Target};
pub use session::SessionOp;

use concord_compiler::{lower_for_gpu_traced, GpuArtifact, GpuConfig};
use concord_cpusim::CpuSim;
use concord_energy::{Device, EnergyMeter, PhaseReport, SystemConfig};
use concord_frontend::{CompileError, LoweredProgram};
use concord_gpusim::GpuSim;
use concord_ir::eval::Trap;
use concord_ir::FuncId;
use concord_svm::{AllocError, CpuAddr, SharedAllocator, SharedRegion, VtableArea};
use concord_trace::{TraceConfig, Tracer, Track};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

// Sessions migrate across `concord-pool` workers in the serving layer, so
// the context, its reports, and everything they own must be `Send`. These
// are compile-time assertions: a non-`Send` field anywhere in the graph
// fails the build here, not at a distant spawn site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Concord>();
    assert_send::<OffloadReport>();
    assert_send::<RuntimeError>();
};

/// Any error the runtime can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Kernel-language compilation failed.
    Compile(CompileError),
    /// Shared-region allocation failed.
    Alloc(AllocError),
    /// A kernel trapped at runtime.
    Trap(Trap),
    /// The named kernel class does not exist.
    NoSuchKernel(String),
    /// `parallel_reduce_hetero` on a class without a `join` method.
    NoJoin(String),
    /// `Target::Native` on a host where the native backend cannot run
    /// (not x86-64 Linux) or cannot lower the module.
    NativeUnsupported(String),
    /// The pre-launch static analysis gate ([`Options::analysis`] =
    /// [`AnalysisGate::Deny`]) found error-severity defects.
    AnalysisDenied {
        /// The kernel class that was refused.
        kernel: String,
        /// The full analysis report (render with
        /// [`AnalysisReport::to_text`] or [`AnalysisReport::to_json`]).
        report: AnalysisReport,
    },
    /// [`Concord::complete`] on a launch id that was never submitted (or
    /// whose result was already taken).
    UnknownLaunch(LaunchId),
    /// A [`Concord::replay_serial`] / [`Concord::replay_graph`] op stream
    /// diverged from the recording session (different allocator layout or
    /// region size).
    ReplayDiverged(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "{e}"),
            RuntimeError::Alloc(e) => write!(f, "{e}"),
            RuntimeError::Trap(t) => write!(f, "kernel trapped: {t}"),
            RuntimeError::NoSuchKernel(n) => write!(f, "no kernel class named `{n}`"),
            RuntimeError::NoJoin(n) => {
                write!(f, "class `{n}` has no join method for parallel_reduce")
            }
            RuntimeError::NativeUnsupported(why) => {
                write!(f, "native backend unavailable: {why}")
            }
            RuntimeError::AnalysisDenied { kernel, report } => {
                write!(
                    f,
                    "kernel `{kernel}` denied by static analysis ({} error(s)):\n{}",
                    report.count_at(concord_analyze::Severity::Error),
                    report.to_text()
                )
            }
            RuntimeError::UnknownLaunch(id) => {
                write!(f, "no pending or completed {id}")
            }
            RuntimeError::ReplayDiverged(why) => {
                write!(f, "session replay diverged from the recording: {why}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Compile(e)
    }
}

impl From<AllocError> for RuntimeError {
    fn from(e: AllocError) -> Self {
        RuntimeError::Alloc(e)
    }
}

impl From<Trap> for RuntimeError {
    fn from(t: Trap) -> Self {
        RuntimeError::Trap(t)
    }
}

/// Runtime construction options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Shared-region capacity in bytes.
    pub region_bytes: u64,
    /// GPU compilation configuration (which of the paper's four evaluated
    /// configurations to use).
    pub gpu_config: Option<GpuConfig>,
    /// Tracing configuration (disabled by default; see [`concord_trace`]).
    pub trace: TraceConfig,
    /// Host OS threads the simulators may fan simulated cores and warps
    /// across. `None` reads `CONCORD_HOST_THREADS` (default 1). Every
    /// report, trace, and byte of workload output is identical for any
    /// value — execution uses snapshot-and-log isolation with a fixed
    /// chunk-order merge.
    pub host_threads: Option<usize>,
    /// Pre-launch static analysis gate (see `concord-analyze`): `Off`
    /// skips the analyzer, `Warn` (the default) traces findings but
    /// always launches, `Deny` refuses kernels with error-severity
    /// findings with [`RuntimeError::AnalysisDenied`].
    pub analysis: AnalysisGate,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            region_bytes: 64 << 20,
            gpu_config: None,
            trace: TraceConfig::default(),
            host_threads: None,
            analysis: AnalysisGate::default(),
        }
    }
}

/// Result of one heterogeneous construct invocation. A hybrid construct
/// merges its per-device sub-reports with [`OffloadReport::merge_parallel`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OffloadReport {
    /// Seconds spent JIT-compiling the GPU binary for this construct
    /// (non-zero only on the first GPU launch of a kernel, §3.4).
    pub jit_seconds: f64,
    /// Seconds spent executing the construct (fences, launches, kernel,
    /// and for reductions the host-side final join). Concurrent
    /// sub-launches of a hybrid split contribute their maximum.
    pub exec_seconds: f64,
    /// Package energy in joules for the construct (sum over devices).
    pub joules: f64,
    /// True when any part of the construct ran on the GPU.
    pub on_gpu: bool,
    /// True when a GPU request fell back to the CPU (restriction).
    pub fell_back: bool,
    /// Executed pointer translations (summed over devices).
    pub translations: u64,
    /// Shared-memory transactions (GPU only).
    pub transactions: u64,
    /// Contended transactions (GPU only).
    pub contended: u64,
    /// Device busy fraction: GPU EU issue occupancy when the construct
    /// touched the GPU, 1.0 for pure-CPU launches.
    pub busy_fraction: f64,
    /// GPU L3 hit rate (GPU only).
    pub l3_hit_rate: f64,
    /// Instructions executed (summed over devices).
    pub insts: u64,
}

impl OffloadReport {
    /// Total wall-clock seconds for the construct: JIT plus execution.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.jit_seconds + self.exec_seconds
    }

    /// Merge per-device sub-reports of one construct executed
    /// concurrently under a single fence pair.
    ///
    /// Invariants (tested): `joules`, `insts`, `translations`,
    /// `transactions`, and `contended` are sums; `exec_seconds` is the
    /// maximum (the devices run side by side); `jit_seconds` is the sum
    /// (only a GPU part ever charges it, at most once per kernel);
    /// `busy_fraction` and `l3_hit_rate` come from the GPU part when
    /// present; `on_gpu` / `fell_back` are ORs.
    #[must_use]
    pub fn merge_parallel(parts: &[OffloadReport]) -> OffloadReport {
        let mut merged = OffloadReport::default();
        for p in parts {
            merged.jit_seconds += p.jit_seconds;
            merged.exec_seconds = merged.exec_seconds.max(p.exec_seconds);
            merged.joules += p.joules;
            merged.translations += p.translations;
            merged.transactions += p.transactions;
            merged.contended += p.contended;
            merged.insts += p.insts;
            merged.on_gpu |= p.on_gpu;
            merged.fell_back |= p.fell_back;
        }
        // The GPU's occupancy and cache behaviour are the interesting ones
        // for a mixed construct; fall back to the first part (a pure-CPU
        // merge) otherwise.
        let rates = parts.iter().find(|p| p.on_gpu).or_else(|| parts.first());
        if let Some(p) = rates {
            merged.busy_fraction = p.busy_fraction;
            merged.l3_hit_rate = p.l3_hit_rate;
        }
        merged
    }
}

/// Result of one `parallel_worklist_hetero` invocation: the per-round
/// frontier sizes (the workload's convergence shape) plus the merged
/// offload report over all rounds.
#[derive(Debug, Clone, Default)]
pub struct WorklistReport {
    /// Frontier size of each executed round, in round order. Deterministic
    /// for every target and host-thread count: the frontier merge is
    /// a sorted, deduplicated union of the rounds' pushes.
    pub frontier_sizes: Vec<u32>,
    /// Construct-level counters summed over all rounds (`exec_seconds`
    /// adds — rounds run one after another).
    pub offload: OffloadReport,
}

impl WorklistReport {
    /// Number of executed rounds (empty-seed invocations run zero).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.frontier_sizes.len()
    }

    /// Total work items drained across all rounds.
    #[must_use]
    pub fn total_items(&self) -> u64 {
        self.frontier_sizes.iter().map(|&n| u64::from(n)).sum()
    }

    /// Fold one round's report into the running totals (sequential
    /// composition: seconds add, rates come from the latest round that
    /// has them).
    fn absorb(&mut self, round: &OffloadReport) {
        let acc = &mut self.offload;
        acc.jit_seconds += round.jit_seconds;
        acc.exec_seconds += round.exec_seconds;
        acc.joules += round.joules;
        acc.translations += round.translations;
        acc.transactions += round.transactions;
        acc.contended += round.contended;
        acc.insts += round.insts;
        acc.on_gpu |= round.on_gpu;
        acc.fell_back |= round.fell_back;
        acc.busy_fraction = round.busy_fraction;
        acc.l3_hit_rate = round.l3_hit_rate;
    }
}

/// SVM-backed double-buffered frontier queues for
/// `parallel_worklist_hetero`. Each round stages the current frontier
/// into one buffer (the canonical shared-memory image the fences cover);
/// the merged pushes become the next round's frontier in the other
/// buffer, and the buffers swap roles. Capacity grows in powers of two,
/// so the allocation sequence — and with it the allocator layout every
/// later `malloc` sees — is a deterministic function of the frontier
/// sizes alone.
struct FrontierQueues {
    bufs: [CpuAddr; 2],
    capacity: u32,
    cur: usize,
}

/// What a construct does with its iteration space — the only difference
/// between `parallel_for_hetero` and `parallel_reduce_hetero` once the
/// generic offload path takes over.
#[derive(Clone, Copy)]
enum ConstructKind {
    For,
    Reduce { join: FuncId, body_size: u64 },
}

impl ConstructKind {
    fn name(self) -> &'static str {
        match self {
            ConstructKind::For => "parallel_for",
            ConstructKind::Reduce { .. } => "parallel_reduce",
        }
    }
}

/// What the drain loop decided to do with the front of the launch queue.
enum WavePlan {
    /// One launch through the full serial offload path.
    Solo,
    /// A CPU-targeted and a GPU-targeted `parallel_for` executing
    /// concurrently (disjoint footprints, commit in submission order).
    Pair,
    /// `size` consecutive GPU `parallel_for`s under one fence pair, of
    /// which `coalesced` joined through accumulate-mode overlap.
    Batch { size: usize, coalesced: u64 },
}

/// Meter, profile, and package one wave member's launch stats exactly as
/// the serial offload path does for a single-part plan.
#[allow(clippy::too_many_arguments)]
fn part_report(
    system: &SystemConfig,
    meter: &mut EnergyMeter,
    profile: &mut ProfileHistory,
    class: &str,
    device: Device,
    span: Span,
    jit_seconds: f64,
    stats: LaunchStats,
) -> OffloadReport {
    let phase = match device {
        Device::Gpu => {
            PhaseReport { seconds: stats.seconds + jit_seconds, busy_fraction: stats.busy_fraction }
        }
        Device::Cpu => PhaseReport { seconds: stats.seconds, busy_fraction: 1.0 },
    };
    let before = meter.joules();
    meter.record(system, device, phase);
    profile.record(class, DeviceClass::from(device), u64::from(span.items()), stats.seconds);
    OffloadReport {
        jit_seconds,
        exec_seconds: stats.seconds,
        joules: meter.joules() - before,
        on_gpu: device == Device::Gpu,
        fell_back: false,
        translations: stats.translations,
        transactions: stats.transactions,
        contended: stats.contended,
        busy_fraction: stats.busy_fraction,
        l3_hit_rate: stats.l3_hit_rate,
        insts: stats.insts,
    }
}

/// The Concord runtime context.
pub struct Concord {
    system: SystemConfig,
    program: LoweredProgram,
    gpu_artifact: GpuArtifact,
    region: SharedRegion,
    heap: SharedAllocator,
    vtables: VtableArea,
    cpu: CpuBackend,
    gpu: GpuBackend,
    native: NativeBackend,
    meter: EnergyMeter,
    profile: ProfileHistory,
    /// Kernels that cannot run on the GPU (restriction warnings).
    cpu_only: HashSet<String>,
    tracer: Tracer,
    /// The pre-launch gate level ([`Options::analysis`]).
    analysis: AnalysisGate,
    /// Memoized analysis reports: the module is immutable after build, so
    /// one (kernel, mode) pair always produces the same report.
    analysis_cache: HashMap<(FuncId, AnalysisMode), AnalysisReport>,
    /// Memoized per-kernel access summaries (footprint inference).
    access_cache: HashMap<(FuncId, AnalysisMode), AccessSummary>,
    /// Pending launches submitted through [`Concord::submit_for`] /
    /// [`Concord::submit_reduce`], in submission order.
    launch_graph: graph::LaunchGraph,
    /// Results of drained launches, keyed by launch id, awaiting
    /// [`Concord::complete`].
    finished: HashMap<u64, Result<OffloadReport, RuntimeError>>,
    /// Session-op journal (see [`Concord::record_session`]).
    session_log: Option<Vec<SessionOp>>,
}

impl std::fmt::Debug for Concord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Concord")
            .field("system", &self.system.name)
            .field("kernels", &self.program.kernels.len())
            .field("region_bytes", &self.region.capacity())
            .field("energy_joules", &self.meter.joules())
            .finish_non_exhaustive()
    }
}

impl Concord {
    /// Compile `source` and set up the shared region, vtables, and both
    /// device backends for `system`.
    ///
    /// # Errors
    ///
    /// Compilation errors and vtable installation faults.
    pub fn new(system: SystemConfig, source: &str, opts: Options) -> Result<Self, RuntimeError> {
        Self::build(system, source, opts, None)
    }

    /// Like [`Concord::new`], but sharing compile and JIT artifacts through
    /// a process-wide [`ArtifactCache`]. When another session already
    /// compiled identical source under the same `GpuConfig`, this session
    /// reuses the compiled modules (no frontend/pipeline work) *and* the
    /// per-kernel JIT charge set — its first GPU launch of an
    /// already-JITted kernel reports `jit_seconds == 0`, exactly like a
    /// repeat launch within one session (§3.4, lifted process-wide).
    ///
    /// # Errors
    ///
    /// Compilation errors and vtable installation faults.
    pub fn new_with_cache(
        system: SystemConfig,
        source: &str,
        opts: Options,
        cache: &ArtifactCache,
    ) -> Result<Self, RuntimeError> {
        Self::build(system, source, opts, Some(cache))
    }

    fn build(
        system: SystemConfig,
        source: &str,
        opts: Options,
        cache: Option<&ArtifactCache>,
    ) -> Result<Self, RuntimeError> {
        let tracer = Tracer::new(opts.trace);
        let gpu_cfg = opts.gpu_config.unwrap_or(GpuConfig::all(system.gpu.eus));
        let compile = || -> Result<(LoweredProgram, GpuArtifact), RuntimeError> {
            let sp = tracer.span(Track::Compiler, "frontend");
            let mut program = concord_frontend::compile(source)?;
            sp.end();
            let gpu_artifact = lower_for_gpu_traced(&program.module, gpu_cfg, &tracer);
            concord_compiler::optimize_for_cpu_traced(&mut program.module, &tracer);
            // Function ids must stay stable across the GPU lowering clone:
            // the backends address a kernel in either module with the same
            // FuncId.
            for k in &program.kernels {
                debug_assert_eq!(
                    program.module.function(k.operator_fn).name,
                    gpu_artifact.module.function(k.operator_fn).name,
                    "function ids diverged between CPU and GPU modules"
                );
            }
            Ok((program, gpu_artifact))
        };
        let (program, gpu_artifact, jitted, native_slot) = match cache {
            Some(cache) => {
                let (entry, hit) = cache.lookup_or_compile(source, gpu_cfg, compile)?;
                tracer.instant(
                    Track::Runtime,
                    "artifact_cache",
                    vec![("hit", hit.into()), ("source_hash", cache::source_hash(source).into())],
                );
                (
                    entry.program.clone(),
                    entry.gpu_artifact.clone(),
                    Arc::clone(&entry.jitted),
                    Arc::clone(&entry.native),
                )
            }
            None => {
                let (program, gpu_artifact) = compile()?;
                (
                    program,
                    gpu_artifact,
                    Arc::new(Mutex::new(HashSet::new())),
                    Arc::new(Mutex::new(None)),
                )
            }
        };
        let reserved = VtableArea::reserve_for(program.module.classes.len());
        let mut region = SharedRegion::new(opts.region_bytes, reserved);
        region.set_tracer(tracer.clone());
        let mut heap = SharedAllocator::new(&region);
        heap.set_tracer(tracer.clone());
        let vtables = VtableArea::install(&mut region, &program.module)?;
        // The frontend emits one warning per affected kernel root; map each
        // back to its kernel class conservatively (a warning anywhere marks
        // every kernel that can reach the offending function — the frontend
        // already scoped the check to kernel closures).
        let cpu_only: HashSet<String> = if program.warnings.is_empty() {
            HashSet::new()
        } else {
            program.kernels.iter().map(|k| k.class_name.clone()).collect()
        };
        let host_threads = opts.host_threads.unwrap_or_else(concord_pool::host_threads).max(1);
        let mut cpu = CpuSim::new(system.cpu);
        cpu.set_tracer(tracer.clone());
        cpu.host_threads = host_threads;
        let mut gpu = GpuSim::new(system.gpu);
        gpu.set_tracer(tracer.clone());
        gpu.host_threads = host_threads;
        Ok(Concord {
            cpu: CpuBackend::new(cpu),
            gpu: GpuBackend::new(gpu, jitted),
            native: NativeBackend::new(system.cpu.cores, host_threads, native_slot),
            system,
            program,
            gpu_artifact,
            region,
            heap,
            vtables,
            meter: EnergyMeter::new(),
            profile: ProfileHistory::default(),
            cpu_only,
            tracer,
            analysis: opts.analysis,
            analysis_cache: HashMap::new(),
            access_cache: HashMap::new(),
            launch_graph: graph::LaunchGraph::default(),
            finished: HashMap::new(),
            session_log: None,
        })
    }

    /// The tracer shared by the runtime, compiler pipelines, and both
    /// simulators. Disabled (and free) unless [`Options::trace`] enabled it;
    /// use it to pull the collected events, Chrome JSON, or summary table.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The compiled program (kernels, signatures, source statistics).
    pub fn program(&self) -> &LoweredProgram {
        &self.program
    }

    /// The GPU-lowered artifact (module + pipeline statistics).
    pub fn gpu_artifact(&self) -> &GpuArtifact {
        &self.gpu_artifact
    }

    /// The system configuration.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Shared-region access.
    pub fn region(&self) -> &SharedRegion {
        &self.region
    }

    /// Mutable shared-region access (host-side data structure building).
    pub fn region_mut(&mut self) -> &mut SharedRegion {
        &mut self.region
    }

    /// Allocate in the shared region (the `malloc` redirection of §3.1).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Alloc`] when the region is exhausted.
    pub fn malloc(&mut self, bytes: u64) -> Result<CpuAddr, RuntimeError> {
        let addr = self.heap.malloc(bytes)?;
        self.record_op(|| SessionOp::Malloc { bytes, addr });
        Ok(addr)
    }

    /// Free a shared allocation.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Alloc`] on invalid frees.
    pub fn free(&mut self, addr: CpuAddr) -> Result<(), RuntimeError> {
        self.heap.free(addr)?;
        self.record_op(|| SessionOp::Free { addr });
        Ok(())
    }

    /// Bytes currently free in the shared heap. Runtime-internal scratch
    /// (reduction partials) is released on every exit path, including
    /// kernel traps, so this returns to its pre-construct value after
    /// each construct.
    pub fn heap_free_bytes(&self) -> u64 {
        self.heap.free_bytes()
    }

    /// Total package energy accumulated so far (the
    /// `MSR_PKG_ENERGY_STATUS` reading).
    pub fn energy_joules(&self) -> f64 {
        self.meter.joules()
    }

    /// The per-kernel device-throughput history `Target::Auto` splits by.
    pub fn profile(&self) -> &ProfileHistory {
        &self.profile
    }

    /// Enable device-side allocation (`device_malloc` in kernel code) by
    /// carving a `bytes`-sized arena out of the shared region. Lifts the
    /// §2.1 "no memory allocation on GPU" restriction the paper plans as
    /// future work. Without this call, `device_malloc` returns null.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Alloc`] when the region cannot fit the arena.
    pub fn enable_device_heap(&mut self, bytes: u64) -> Result<(), RuntimeError> {
        let arena = self.heap.malloc(bytes)?;
        self.region.init_device_heap(arena, bytes)?;
        Ok(())
    }

    fn kernel(&self, class: &str) -> Result<concord_frontend::KernelInfo, RuntimeError> {
        self.program
            .kernel(class)
            .cloned()
            .ok_or_else(|| RuntimeError::NoSuchKernel(class.to_string()))
    }

    /// Run the static analyzer (see `concord-analyze`) for the operator
    /// of `class` under launch convention `mode`, independent of the
    /// configured gate level. Reports are memoized per (kernel, mode) —
    /// the module never changes after construction — so repeat calls and
    /// repeat launches are free.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoSuchKernel`].
    pub fn analyze_kernel(
        &mut self,
        class: &str,
        mode: AnalysisMode,
    ) -> Result<AnalysisReport, RuntimeError> {
        let k = self.kernel(class)?;
        Ok(self.analysis_report(class, k.operator_fn, mode))
    }

    fn analysis_report(&mut self, class: &str, func: FuncId, mode: AnalysisMode) -> AnalysisReport {
        if let Some(r) = self.analysis_cache.get(&(func, mode)) {
            self.tracer.instant(
                Track::Analysis,
                "cache_hit",
                vec![("kernel", class.into()), ("mode", mode.name().into())],
            );
            return r.clone();
        }
        let mut sp = self.tracer.span_with(
            Track::Analysis,
            "analyze",
            vec![("kernel", class.into()), ("mode", mode.name().into())],
        );
        let report = concord_analyze::analyze_kernel(&self.program.module, func, mode);
        sp.arg("findings", report.diagnostics.len() as i64);
        sp.arg("errors", report.count_at(concord_analyze::Severity::Error) as i64);
        sp.end();
        for d in &report.diagnostics {
            self.tracer.instant(
                Track::Analysis,
                d.lint.id(),
                vec![
                    ("severity", d.severity.name().into()),
                    ("function", d.function.as_str().into()),
                    ("message", d.message.as_str().into()),
                ],
            );
        }
        self.analysis_cache.insert((func, mode), report.clone());
        report
    }

    /// The pre-launch gate: no-op at `Off`, analyze-and-trace at `Warn`,
    /// refuse error-severity kernels at `Deny`.
    fn gate_launch(
        &mut self,
        class: &str,
        func: FuncId,
        mode: AnalysisMode,
    ) -> Result<(), RuntimeError> {
        if self.analysis == AnalysisGate::Off {
            return Ok(());
        }
        let report = self.analysis_report(class, func, mode);
        if self.analysis == AnalysisGate::Deny && report.has_errors() {
            self.tracer.instant(
                Track::Analysis,
                "denied",
                vec![("kernel", class.into()), ("mode", mode.name().into())],
            );
            return Err(RuntimeError::AnalysisDenied { kernel: class.to_string(), report });
        }
        Ok(())
    }

    /// `parallel_for_hetero(n, body, device)`: run the `operator()` of
    /// `class` over `[0, n)`.
    ///
    /// # Errors
    ///
    /// Unknown kernel class, or a runtime trap.
    pub fn parallel_for_hetero(
        &mut self,
        class: &str,
        body: CpuAddr,
        n: u32,
        target: Target,
    ) -> Result<OffloadReport, RuntimeError> {
        let k = self.kernel(class)?;
        self.gate_launch(class, k.operator_fn, AnalysisMode::For)?;
        let gpu_allowed = !self.cpu_only.contains(class);
        self.record_op(|| SessionOp::Launch {
            class: class.to_string(),
            body,
            n,
            target,
            reduce: false,
        });
        self.offload_logged(class, k.operator_fn, ConstructKind::For, body, n, target, gpu_allowed)
    }

    /// `parallel_worklist_hetero(body, seed, device)`: drain a frontier
    /// worklist to empty. Round `r` runs the `operator()` of `class` once
    /// per item of the current frontier (the item value is the kernel's
    /// `int` argument); bodies call the `push(item)` intrinsic to feed
    /// the next frontier. Pushes are collected in per-chunk segments and
    /// merged into a sorted, deduplicated frontier between rounds, so
    /// frontier contents, drain order, and every output byte are
    /// identical on every target at any host-thread count. The construct
    /// ends when a round pushes nothing.
    ///
    /// The seed is canonicalized the same way (sorted, deduplicated);
    /// an empty seed runs zero rounds.
    ///
    /// # Errors
    ///
    /// Unknown kernel class, a gate refusal, or a runtime trap (the
    /// trapped round's pushes are discarded).
    pub fn parallel_worklist_hetero(
        &mut self,
        class: &str,
        body: CpuAddr,
        seed: &[i32],
        target: Target,
    ) -> Result<WorklistReport, RuntimeError> {
        let k = self.kernel(class)?;
        self.gate_launch(class, k.operator_fn, AnalysisMode::For)?;
        // Rounds are serially dependent (each consumes the previous
        // round's pushes), so they drain as solo waves; order them after
        // any launches already submitted to the graph.
        self.complete_all();
        let gpu_allowed = !self.cpu_only.contains(class);
        self.record_op(|| SessionOp::Worklist {
            class: class.to_string(),
            body,
            seed: seed.to_vec(),
            target,
        });
        let mut frontier: Vec<i32> = seed.to_vec();
        frontier.sort_unstable();
        frontier.dedup();
        let mut queues: Option<FrontierQueues> = None;
        // Suspend session journaling across the whole construct: frontier
        // staging and device-side writes replay through the recorded
        // `Worklist` op, not as raw `Write` records.
        let saved = self.region.suspend_journal();
        let res = self.run_worklist(
            class,
            k.operator_fn,
            body,
            target,
            gpu_allowed,
            frontier,
            &mut queues,
        );
        self.region.restore_journal(saved);
        if let Some(q) = queues {
            // Free on every exit path, trap included.
            let _ = self.heap.free(q.bufs[0]);
            let _ = self.heap.free(q.bufs[1]);
        }
        res
    }

    /// The iterate-until-empty loop behind
    /// [`Concord::parallel_worklist_hetero`].
    #[allow(clippy::too_many_arguments)]
    fn run_worklist(
        &mut self,
        class: &str,
        func: FuncId,
        body: CpuAddr,
        target: Target,
        gpu_allowed: bool,
        mut frontier: Vec<i32>,
        queues: &mut Option<FrontierQueues>,
    ) -> Result<WorklistReport, RuntimeError> {
        let mut report = WorklistReport::default();
        while !frontier.is_empty() {
            report.frontier_sizes.push(frontier.len() as u32);
            self.stage_frontier(queues, &frontier)?;
            let mut pushes: Vec<i32> = Vec::new();
            let round = self.offload_worklist_round(
                class,
                func,
                body,
                &frontier,
                target,
                gpu_allowed,
                &mut pushes,
            );
            report.absorb(&round?);
            // Ordered commit: the union of all chunk segments, sorted by
            // item and deduplicated — canonical ascending drain order.
            pushes.sort_unstable();
            pushes.dedup();
            frontier = pushes;
            if let Some(q) = queues.as_mut() {
                q.cur ^= 1;
            }
        }
        Ok(report)
    }

    /// Ensure queue capacity and write `items` into the current frontier
    /// buffer (the shared-region image of the round's worklist).
    fn stage_frontier(
        &mut self,
        queues: &mut Option<FrontierQueues>,
        items: &[i32],
    ) -> Result<(), RuntimeError> {
        let needed = items.len() as u32;
        if queues.as_ref().is_none_or(|q| q.capacity < needed) {
            if let Some(q) = queues.take() {
                self.heap.free(q.bufs[0])?;
                self.heap.free(q.bufs[1])?;
            }
            let capacity = needed.next_power_of_two().max(16);
            let a = self.heap.malloc(u64::from(capacity) * 4)?;
            let b = self.heap.malloc(u64::from(capacity) * 4)?;
            *queues = Some(FrontierQueues { bufs: [a, b], capacity, cur: 0 });
        }
        let q = queues.as_ref().expect("capacity just ensured");
        let base = q.bufs[q.cur];
        for (i, &item) in items.iter().enumerate() {
            self.region.write_i32(CpuAddr(base.0 + i as u64 * 4), item)?;
        }
        Ok(())
    }

    /// `parallel_reduce_hetero(n, body, device)`: run `operator()` over
    /// `[0, n)` accumulating into per-worker copies, then combine with
    /// `join` (hierarchically through GPU local memory when on the GPU,
    /// §3.3). Hybrid targets join the partials of both devices with the
    /// same `join`.
    ///
    /// # Errors
    ///
    /// Unknown kernel class, missing `join`, or a runtime trap.
    pub fn parallel_reduce_hetero(
        &mut self,
        class: &str,
        body: CpuAddr,
        n: u32,
        target: Target,
    ) -> Result<OffloadReport, RuntimeError> {
        let k = self.kernel(class)?;
        let join = k.join_fn.ok_or_else(|| RuntimeError::NoJoin(class.to_string()))?;
        self.gate_launch(class, k.operator_fn, AnalysisMode::Reduce)?;
        // Local memory must fit one body copy per lane; otherwise the
        // runtime performs the reduction on the CPU (§3.3: "if local
        // memory is insufficient").
        let fits_local =
            k.body_size * u64::from(self.system.gpu.simd_width) <= self.system.gpu.local_bytes;
        let gpu_allowed = !self.cpu_only.contains(class) && fits_local;
        let kind = ConstructKind::Reduce { join, body_size: k.body_size };
        self.record_op(|| SessionOp::Launch {
            class: class.to_string(),
            body,
            n,
            target,
            reduce: true,
        });
        self.offload_logged(class, k.operator_fn, kind, body, n, target, gpu_allowed)
    }

    /// Submit a `parallel_for_hetero` launch to the dependency-aware
    /// launch graph without waiting for it. The launch's shared-region
    /// footprint is resolved now (static access summary + live pointer
    /// values + the allocator's block table); execution is deferred until
    /// a [`Concord::complete`]-family call drains it. Provably disjoint
    /// launches execute concurrently; conflicting ones retain submission
    /// order; everything observable (region bytes, reports, traps) is
    /// byte-identical to issuing the same launches serially.
    ///
    /// # Errors
    ///
    /// Unknown kernel class, or an [`AnalysisGate::Deny`] refusal — both
    /// surface at submit time, like the blocking entry point. Traps
    /// surface at completion.
    pub fn submit_for(
        &mut self,
        class: &str,
        body: CpuAddr,
        n: u32,
        target: Target,
    ) -> Result<LaunchId, RuntimeError> {
        let k = self.kernel(class)?;
        self.gate_launch(class, k.operator_fn, AnalysisMode::For)?;
        let gpu_allowed = !self.cpu_only.contains(class);
        self.submit(class, k.operator_fn, ConstructKind::For, body, n, target, gpu_allowed)
    }

    /// Submit a `parallel_reduce_hetero` launch to the launch graph (see
    /// [`Concord::submit_for`]). Reductions always drain as solo waves —
    /// the staged-accumulator dance keeps their own path — but they
    /// participate in footprint ordering like any other launch.
    ///
    /// # Errors
    ///
    /// Unknown kernel class, missing `join`, or a gate refusal.
    pub fn submit_reduce(
        &mut self,
        class: &str,
        body: CpuAddr,
        n: u32,
        target: Target,
    ) -> Result<LaunchId, RuntimeError> {
        let k = self.kernel(class)?;
        let join = k.join_fn.ok_or_else(|| RuntimeError::NoJoin(class.to_string()))?;
        self.gate_launch(class, k.operator_fn, AnalysisMode::Reduce)?;
        let fits_local =
            k.body_size * u64::from(self.system.gpu.simd_width) <= self.system.gpu.local_bytes;
        let gpu_allowed = !self.cpu_only.contains(class) && fits_local;
        let kind = ConstructKind::Reduce { join, body_size: k.body_size };
        self.submit(class, k.operator_fn, kind, body, n, target, gpu_allowed)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit(
        &mut self,
        class: &str,
        func: FuncId,
        kind: ConstructKind,
        body: CpuAddr,
        n: u32,
        target: Target,
        gpu_allowed: bool,
    ) -> Result<LaunchId, RuntimeError> {
        let roots = match kind {
            ConstructKind::For => vec![func],
            ConstructKind::Reduce { join, .. } => vec![func, join],
        };
        let gated = concord_ir::analysis::uses_gated_ops(&self.program.module, &roots)
            || concord_ir::analysis::uses_gated_ops(&self.gpu_artifact.module, &roots);
        let footprint =
            if gated { Footprint::opaque() } else { self.resolve_footprint(func, kind, body) };
        let id = self.launch_graph.submit(graph::PendingLaunch {
            id: 0,
            class: class.to_string(),
            func,
            kind,
            body,
            n,
            target,
            gpu_allowed,
            gated,
            footprint,
        });
        self.tracer.instant(
            Track::Sched,
            "submit",
            vec![
                ("launch", (id.0 as i64).into()),
                ("kernel", class.into()),
                ("n", i64::from(n).into()),
            ],
        );
        Ok(id)
    }

    /// Resolve a launch's static access summary against live pointer
    /// values and the allocator's block table, widening every access to
    /// the allocation block that backs it. Anything unresolvable
    /// (opaque summary, null or dangling field pointer) degrades to an
    /// opaque footprint.
    fn resolve_footprint(&mut self, func: FuncId, kind: ConstructKind, body: CpuAddr) -> Footprint {
        let mode = match kind {
            ConstructKind::For => AnalysisMode::For,
            ConstructKind::Reduce { .. } => AnalysisMode::Reduce,
        };
        let summary = self
            .access_cache
            .entry((func, mode))
            .or_insert_with(|| concord_analyze::infer_access(&self.program.module, func, mode));
        if summary.opaque {
            return Footprint::opaque();
        }
        let Some((body_lo, body_hi)) = self.heap.block_range(body) else {
            return Footprint::opaque();
        };
        let mut ranges = Vec::new();
        // Every launch reads its body block (the runtime passes it to the
        // kernel); a reduction also stages copies from it and joins the
        // partials back into it.
        ranges.push(FootRange { lo: body_lo, hi: body_hi, mode: AccessMode::Read });
        if matches!(kind, ConstructKind::Reduce { .. }) {
            ranges.push(FootRange { lo: body_lo, hi: body_hi, mode: AccessMode::Write });
        }
        for r in &summary.records {
            let (lo, hi) = match r.base {
                AccessBase::Body => (body_lo, body_hi),
                AccessBase::Field { offset } => {
                    let Ok(ptr) = self.region.read_ptr(body.offset(offset)) else {
                        return Footprint::opaque();
                    };
                    let Some(range) = self.heap.block_range(ptr) else {
                        return Footprint::opaque();
                    };
                    range
                }
            };
            ranges.push(FootRange { lo, hi, mode: r.mode });
        }
        Footprint { opaque: false, ranges }
    }

    /// Drain the graph until `id`'s launch has executed and return its
    /// result. Earlier submissions drain first (submission order is the
    /// commit order), waving with `id`'s launch where footprints allow.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownLaunch`] for an id never submitted (or
    /// already taken); otherwise the launch's own result.
    pub fn complete(&mut self, id: LaunchId) -> Result<OffloadReport, RuntimeError> {
        while !self.finished.contains_key(&id.0) {
            if !self.launch_graph.has(id.0) {
                return Err(RuntimeError::UnknownLaunch(id));
            }
            self.drain_one_wave();
        }
        self.finished.remove(&id.0).expect("checked above")
    }

    /// Drain every pending launch. Per-launch results stay retrievable
    /// through [`Concord::complete`].
    pub fn complete_all(&mut self) {
        while !self.launch_graph.is_empty() {
            self.drain_one_wave();
        }
    }

    /// Drain pending launches (in submission order) until none touches
    /// any byte of `[addr, addr + len)` — the barrier a host write or
    /// free must take before mutating memory a deferred launch may read
    /// or write.
    pub fn complete_touching(&mut self, addr: u64, len: u64) {
        while self.launch_graph.touches(addr, addr.saturating_add(len)) {
            self.drain_one_wave();
        }
    }

    /// Scheduling counters of the launch graph (submitted, completed,
    /// overlapped, conflict stalls, coalesced, fence pairs elided).
    #[must_use]
    pub fn graph_stats(&self) -> GraphStats {
        self.launch_graph.stats()
    }

    /// The access summary footprint inference uses for `class` under
    /// `mode`, memoized per kernel like the analysis reports.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoSuchKernel`].
    pub fn access_summary(
        &mut self,
        class: &str,
        mode: AnalysisMode,
    ) -> Result<AccessSummary, RuntimeError> {
        let k = self.kernel(class)?;
        Ok(self
            .access_cache
            .entry((k.operator_fn, mode))
            .or_insert_with(|| {
                concord_analyze::infer_access(&self.program.module, k.operator_fn, mode)
            })
            .clone())
    }

    /// Start (or stop) journaling session operations: allocations,
    /// frees, host writes into the shared region, and construct
    /// launches. Collect the journal with [`Concord::take_session`];
    /// replay it on a fresh identically-configured context with
    /// [`Concord::replay_serial`] or [`Concord::replay_graph`].
    pub fn record_session(&mut self, on: bool) {
        self.session_log = on.then(Vec::new);
        self.region.journal_writes(on);
    }

    /// Take the recorded session ops and stop journaling.
    pub fn take_session(&mut self) -> Vec<SessionOp> {
        self.drain_region_journal();
        self.region.journal_writes(false);
        self.session_log.take().unwrap_or_default()
    }

    /// Replay a recorded op stream through the blocking serial entry
    /// points — the reference execution the graph path must match byte
    /// for byte. Returns one result per recorded launch, in order
    /// (launch traps are per-launch results, not replay failures, because
    /// the recording caller continued past them too).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ReplayDiverged`] when the allocator hands out a
    /// different address than recorded (wrong region size or op stream);
    /// allocation or host-write faults.
    pub fn replay_serial(
        &mut self,
        ops: &[SessionOp],
    ) -> Result<Vec<Result<OffloadReport, RuntimeError>>, RuntimeError> {
        let mut out = Vec::new();
        for op in ops {
            match op {
                SessionOp::Malloc { bytes, addr } => self.replay_malloc(*bytes, *addr)?,
                SessionOp::Free { addr } => self.free(*addr)?,
                SessionOp::Write { addr, bytes } => {
                    self.region
                        .write_bytes(*addr, concord_ir::types::AddrSpace::Cpu, bytes)
                        .map_err(RuntimeError::Trap)?;
                }
                SessionOp::Launch { class, body, n, target, reduce } => {
                    out.push(if *reduce {
                        self.parallel_reduce_hetero(class, *body, *n, *target)
                    } else {
                        self.parallel_for_hetero(class, *body, *n, *target)
                    });
                }
                SessionOp::Worklist { class, body, seed, target } => {
                    out.push(
                        self.parallel_worklist_hetero(class, *body, seed, *target)
                            .map(|w| w.offload),
                    );
                }
            }
        }
        Ok(out)
    }

    /// Replay a recorded op stream through the launch graph: launches
    /// are submitted and left pending so independent ones can wave
    /// together; a host write or free first drains every pending launch
    /// touching the affected bytes (the recorded happens-before edge);
    /// everything left drains at the end. Returns one result per
    /// recorded launch, in submission order — byte-comparable against
    /// [`Concord::replay_serial`] on a fresh context.
    ///
    /// # Errors
    ///
    /// Same as [`Concord::replay_serial`].
    pub fn replay_graph(
        &mut self,
        ops: &[SessionOp],
    ) -> Result<Vec<Result<OffloadReport, RuntimeError>>, RuntimeError> {
        // A worklist construct is internally iterative and blocking, so
        // its result is ready at submission time; `Pending` slots resolve
        // after the final drain.
        enum Slot {
            Pending(Result<LaunchId, RuntimeError>),
            Done(Result<OffloadReport, RuntimeError>),
        }
        let mut submitted: Vec<Slot> = Vec::new();
        for op in ops {
            match op {
                SessionOp::Malloc { bytes, addr } => self.replay_malloc(*bytes, *addr)?,
                SessionOp::Free { addr } => {
                    if let Some((lo, hi)) = self.heap.block_range(*addr) {
                        self.complete_touching(lo, hi - lo);
                    }
                    self.free(*addr)?;
                }
                SessionOp::Write { addr, bytes } => {
                    self.complete_touching(*addr, bytes.len() as u64);
                    self.region
                        .write_bytes(*addr, concord_ir::types::AddrSpace::Cpu, bytes)
                        .map_err(RuntimeError::Trap)?;
                }
                SessionOp::Launch { class, body, n, target, reduce } => {
                    submitted.push(Slot::Pending(if *reduce {
                        self.submit_reduce(class, *body, *n, *target)
                    } else {
                        self.submit_for(class, *body, *n, *target)
                    }));
                }
                SessionOp::Worklist { class, body, seed, target } => {
                    // Drains every pending launch first (rounds are
                    // serially dependent), preserving recorded order.
                    submitted.push(Slot::Done(
                        self.parallel_worklist_hetero(class, *body, seed, *target)
                            .map(|w| w.offload),
                    ));
                }
            }
        }
        self.complete_all();
        let mut out = Vec::new();
        for s in submitted {
            out.push(match s {
                Slot::Pending(Ok(id)) => self.complete(id),
                Slot::Pending(Err(e)) => Err(e),
                Slot::Done(r) => r,
            });
        }
        Ok(out)
    }

    fn replay_malloc(&mut self, bytes: u64, recorded: CpuAddr) -> Result<(), RuntimeError> {
        let got = self.malloc(bytes)?;
        if got.0 != recorded.0 {
            return Err(RuntimeError::ReplayDiverged(format!(
                "malloc({bytes}) returned {:#x}, recording had {:#x}",
                got.0, recorded.0
            )));
        }
        Ok(())
    }

    /// Append a session op, first flushing any region writes journaled
    /// since the previous op so the global order is preserved.
    fn record_op(&mut self, op: impl FnOnce() -> SessionOp) {
        if self.session_log.is_some() {
            self.drain_region_journal();
            self.session_log.as_mut().expect("checked above").push(op());
        }
    }

    fn drain_region_journal(&mut self) {
        if let Some(log) = self.session_log.as_mut() {
            for (addr, bytes) in self.region.take_journaled_writes() {
                log.push(SessionOp::Write { addr, bytes });
            }
        }
    }

    /// Decide what the front of the queue may do, and how many conflict
    /// stalls the decision observed.
    fn plan_wave(&self) -> (WavePlan, u64) {
        fn pair_ok(a: &graph::PendingLaunch, b: &graph::PendingLaunch) -> bool {
            let one_each = (a.target == Target::Cpu && b.target == Target::Gpu && b.gpu_allowed)
                || (b.target == Target::Cpu && a.target == Target::Gpu && a.gpu_allowed);
            one_each
                && matches!(a.kind, ConstructKind::For)
                && matches!(b.kind, ConstructKind::For)
                && !a.gated
                && !b.gated
        }
        fn batch_ok(p: &graph::PendingLaunch) -> bool {
            p.target == Target::Gpu
                && p.gpu_allowed
                && matches!(p.kind, ConstructKind::For)
                && !p.gated
        }
        let q = self.launch_graph.pending();
        let mut stalls = 0u64;
        let Some(p0) = q.front() else {
            return (WavePlan::Solo, 0);
        };
        // A CPU-targeted and a GPU-targeted `parallel_for` with provably
        // disjoint footprints execute concurrently. Only explicit
        // `Cpu`/`Gpu` targets qualify: `Auto`/`Hybrid` plans read profile
        // history mutated by earlier launches, so their plans must be
        // computed in submission order (solo waves).
        if let Some(p1) = q.get(1) {
            if pair_ok(p0, p1) {
                match p0.footprint.conflict(&p1.footprint) {
                    Conflict::Independent => return (WavePlan::Pair, stalls),
                    Conflict::Coalesce | Conflict::Order => stalls += 1,
                }
            }
        }
        // Consecutive GPU-targeted `parallel_for`s whose pairwise
        // conflicts are at worst Coalesce run back to back under ONE
        // fence pair — execution order is still submission order, so the
        // batch is trivially byte-identical; only fence accounting
        // changes (counted as elisions).
        if batch_ok(p0) {
            let mut coalesced = 0u64;
            let mut size = 1usize;
            'grow: while let Some(pk) = q.get(size) {
                if !batch_ok(pk) {
                    break;
                }
                let mut saw_coalesce = false;
                for member in q.iter().take(size) {
                    match member.footprint.conflict(&pk.footprint) {
                        Conflict::Order => {
                            stalls += 1;
                            break 'grow;
                        }
                        Conflict::Coalesce => saw_coalesce = true,
                        Conflict::Independent => {}
                    }
                }
                if saw_coalesce {
                    coalesced += 1;
                }
                size += 1;
            }
            if size >= 2 {
                return (WavePlan::Batch { size, coalesced }, stalls);
            }
        }
        (WavePlan::Solo, stalls)
    }

    /// Execute the next wave from the queue front and store its results.
    fn drain_one_wave(&mut self) {
        let (plan, stalls) = self.plan_wave();
        self.launch_graph.stats_mut().conflict_stalls += stalls;
        match plan {
            WavePlan::Solo => {
                let Some(p) = self.launch_graph.pop() else { return };
                let r = self.offload_logged(
                    &p.class,
                    p.func,
                    p.kind,
                    p.body,
                    p.n,
                    p.target,
                    p.gpu_allowed,
                );
                self.finished.insert(p.id, r);
            }
            WavePlan::Pair => self.run_pair(),
            WavePlan::Batch { size, coalesced } => self.run_batch(size, coalesced),
        }
    }

    /// Overlap wave: one CPU-targeted and one GPU-targeted
    /// `parallel_for` with disjoint footprints. Both execute against a
    /// snapshot of the region (the GPU on a helper thread when host
    /// threads allow) and the write-logs commit in submission order
    /// under one fence pair — the same snapshot-and-log machinery the
    /// hybrid split uses, so every byte, report, and trap matches serial
    /// execution.
    fn run_pair(&mut self) {
        let first = self.launch_graph.pop().expect("pair wave has a first launch");
        let second = self.launch_graph.pop().expect("pair wave has a second launch");
        let saved = self.region.suspend_journal();
        let gpu_is_first = first.target == Target::Gpu;
        let (first_res, second_res) = {
            let (gpu_l, cpu_l) = if gpu_is_first { (&first, &second) } else { (&second, &first) };
            let Concord {
                system,
                program,
                gpu_artifact,
                region,
                vtables,
                cpu,
                gpu,
                meter,
                profile,
                tracer,
                ..
            } = self;
            let mut sp = tracer.span_with(
                Track::Sched,
                "overlap",
                vec![
                    ("gpu_kernel", gpu_l.class.as_str().into()),
                    ("cpu_kernel", cpu_l.class.as_str().into()),
                    ("gpu_n", i64::from(gpu_l.n).into()),
                    ("cpu_n", i64::from(cpu_l.n).into()),
                ],
            );
            let mut ctx = ExecCtx {
                region,
                vtables,
                cpu_module: &program.module,
                gpu_module: &gpu_artifact.module,
                system,
                tracer,
            };
            let jit = gpu.prepare(&mut ctx, &gpu_l.class, gpu_l.func);
            gpu.fence_in(&mut ctx);
            let gspan = Span::full(gpu_l.n);
            let cspan = Span::full(cpu_l.n);
            let host_threads = cpu.sim().host_threads;
            let (gpu_pending, cpu_pending) = {
                let region: &SharedRegion = ctx.region;
                let vtables: &VtableArea = ctx.vtables;
                let cpu_module = ctx.cpu_module;
                let gpu_module = ctx.gpu_module;
                let gpu_sim = gpu.sim();
                let (gfunc, gbody) = (gpu_l.func, gpu_l.body);
                let run_gpu = move || {
                    gpu_sim.execute_for_span(
                        region, gpu_module, gfunc, gbody, gspan.lo, gspan.hi, gspan.grid,
                    )
                };
                let (cfunc, cbody) = (cpu_l.func, cpu_l.body);
                let run_cpu = |sim: &mut CpuSim| {
                    sim.execute_for_span(
                        region, vtables, cpu_module, cfunc, cbody, cspan.lo, cspan.hi, cspan.grid,
                    )
                };
                if host_threads > 1 {
                    std::thread::scope(|s| {
                        let h = s.spawn(run_gpu);
                        let c = run_cpu(cpu.sim_mut());
                        (h.join().expect("GPU execute thread panicked"), c)
                    })
                } else {
                    (run_gpu(), run_cpu(cpu.sim_mut()))
                }
            };
            // Commit in submission order: the meter and profile history
            // sequences — and any partial-commit trap state — match the
            // serial path exactly.
            let (first_r, second_r);
            if gpu_is_first {
                first_r = gpu
                    .commit_pending(&mut ctx, gspan, gpu_pending)
                    .map(|s| {
                        part_report(
                            system,
                            meter,
                            profile,
                            &gpu_l.class,
                            Device::Gpu,
                            gspan,
                            jit,
                            s,
                        )
                    })
                    .map_err(RuntimeError::Trap);
                second_r = cpu
                    .commit_pending(&mut ctx, "parallel_for", cspan, cpu_pending)
                    .map(|s| {
                        part_report(
                            system,
                            meter,
                            profile,
                            &cpu_l.class,
                            Device::Cpu,
                            cspan,
                            0.0,
                            s,
                        )
                    })
                    .map_err(RuntimeError::Trap);
            } else {
                first_r = cpu
                    .commit_pending(&mut ctx, "parallel_for", cspan, cpu_pending)
                    .map(|s| {
                        part_report(
                            system,
                            meter,
                            profile,
                            &cpu_l.class,
                            Device::Cpu,
                            cspan,
                            0.0,
                            s,
                        )
                    })
                    .map_err(RuntimeError::Trap);
                second_r = gpu
                    .commit_pending(&mut ctx, gspan, gpu_pending)
                    .map(|s| {
                        part_report(
                            system,
                            meter,
                            profile,
                            &gpu_l.class,
                            Device::Gpu,
                            gspan,
                            jit,
                            s,
                        )
                    })
                    .map_err(RuntimeError::Trap);
            }
            gpu.fence_out(&mut ctx);
            sp.arg("overlapped", true);
            (first_r, second_r)
        };
        self.region.restore_journal(saved);
        self.launch_graph.stats_mut().overlapped += 1;
        self.finished.insert(first.id, first_res);
        self.finished.insert(second.id, second_res);
    }

    /// Batch wave: `size` consecutive GPU `parallel_for`s run back to
    /// back (submission order) under a single fence pair. Later launches
    /// than the batch still wait; a trapped member stores its trap and
    /// the batch continues, matching a serial caller that continues past
    /// a failed construct.
    fn run_batch(&mut self, size: usize, coalesced: u64) {
        let launches: Vec<graph::PendingLaunch> =
            (0..size).map(|_| self.launch_graph.pop().expect("batch sized to queue")).collect();
        let saved = self.region.suspend_journal();
        let mut results: Vec<(u64, Result<OffloadReport, RuntimeError>)> = Vec::with_capacity(size);
        {
            let Concord {
                system,
                program,
                gpu_artifact,
                region,
                vtables,
                gpu,
                meter,
                profile,
                tracer,
                ..
            } = self;
            let mut sp = tracer.span_with(
                Track::Sched,
                "gpu_batch",
                vec![("launches", (size as i64).into()), ("coalesced", (coalesced as i64).into())],
            );
            let mut ctx = ExecCtx {
                region,
                vtables,
                cpu_module: &program.module,
                gpu_module: &gpu_artifact.module,
                system,
                tracer,
            };
            gpu.fence_in(&mut ctx);
            for p in &launches {
                let jit = gpu.prepare(&mut ctx, &p.class, p.func);
                let span = Span::full(p.n);
                let r = gpu
                    .launch_for(&mut ctx, p.func, p.body, span)
                    .map(|s| {
                        part_report(system, meter, profile, &p.class, Device::Gpu, span, jit, s)
                    })
                    .map_err(RuntimeError::Trap);
                results.push((p.id, r));
            }
            gpu.fence_out(&mut ctx);
            ctx.region.note_fences_elided(size as u64 - 1);
            sp.arg("fences_elided", size as i64 - 1);
        }
        self.region.restore_journal(saved);
        let st = self.launch_graph.stats_mut();
        st.fences_elided += size as u64 - 1;
        st.coalesced += coalesced;
        for (id, r) in results {
            self.finished.insert(id, r);
        }
    }

    /// [`Concord::offload`] with the region's write journal suspended:
    /// simulator writes are launch effects, not host writes, and must
    /// not be recorded as session ops.
    #[allow(clippy::too_many_arguments)]
    fn offload_logged(
        &mut self,
        class: &str,
        func: FuncId,
        kind: ConstructKind,
        body: CpuAddr,
        n: u32,
        target: Target,
        gpu_allowed: bool,
    ) -> Result<OffloadReport, RuntimeError> {
        let saved = self.region.suspend_journal();
        let r = self.offload(class, func, kind, body, n, target, gpu_allowed);
        self.region.restore_journal(saved);
        r
    }

    /// The generic offload path every construct and every target runs
    /// through: plan the device split, fence in, JIT-prepare and launch
    /// each part, fence out, join reduction partials, meter energy,
    /// record profile history, and merge the per-device reports.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn offload(
        &mut self,
        class: &str,
        func: FuncId,
        kind: ConstructKind,
        body: CpuAddr,
        n: u32,
        target: Target,
        gpu_allowed: bool,
    ) -> Result<OffloadReport, RuntimeError> {
        let plan = scheduler::plan(target, n, gpu_allowed, &self.profile, class);
        let use_native = target == Target::Native;
        // Disjoint field borrows: the backends, the heap (scratch), the
        // meter, and the profile history are all threaded through this one
        // function alongside the ExecCtx borrow of the region.
        let Concord {
            system,
            program,
            gpu_artifact,
            region,
            heap,
            vtables,
            cpu,
            gpu,
            native,
            meter,
            profile,
            tracer,
            ..
        } = self;
        let label = match plan.parts.as_slice() {
            [(Device::Gpu, _)] => "gpu",
            [(Device::Cpu, _)] if use_native => "native",
            [(Device::Cpu, _)] => "cpu",
            _ => "hybrid",
        };
        let mut sp = tracer.span_with(
            Track::Runtime,
            kind.name(),
            vec![("kernel", class.into()), ("n", i64::from(n).into()), ("device", label.into())],
        );
        tracer.instant(
            Track::Sched,
            "decision",
            vec![
                ("kernel", class.into()),
                ("policy", plan.policy.into()),
                ("gpu_fraction", plan.gpu_fraction.into()),
                ("parts", (plan.parts.len() as i64).into()),
                ("n", i64::from(n).into()),
            ],
        );
        let mut ctx = ExecCtx {
            region,
            vtables,
            cpu_module: &program.module,
            gpu_module: &gpu_artifact.module,
            system,
            tracer,
        };

        // The native module must exist before the generic launch loop (the
        // trait's `prepare` cannot fail; this can — unsupported host,
        // unlowerable module).
        if use_native {
            native
                .ensure_prepared(&mut ctx, class)
                .map_err(|e| RuntimeError::NativeUnsupported(e.to_string()))?;
        }

        // One scratch guard covers every part's partial-accumulator slots;
        // Drop releases them on all exit paths, trap included.
        let mut slot_counts = Vec::new();
        let guard = match kind {
            ConstructKind::For => None,
            ConstructKind::Reduce { body_size, .. } => {
                for &(device, span) in &plan.parts {
                    slot_counts.push(match device {
                        Device::Cpu if use_native => native.reduce_slots(&ctx, span),
                        Device::Cpu => cpu.reduce_slots(&ctx, span),
                        Device::Gpu => gpu.reduce_slots(&ctx, span),
                    });
                }
                let total: u64 = slot_counts.iter().sum();
                Some(ScratchGuard::alloc(heap, total, body_size)?)
            }
        };

        for &(device, _) in &plan.parts {
            match device {
                Device::Cpu => cpu.fence_in(&mut ctx),
                Device::Gpu => gpu.fence_in(&mut ctx),
            }
        }

        // Kernels that need order-dependent operations (`device_malloc`,
        // compare-and-swap) must run the simulators' serial paths; the
        // runtime then also launches the parts one after another.
        let roots = match kind {
            ConstructKind::For => vec![func],
            ConstructKind::Reduce { join, .. } => vec![func, join],
        };
        let gated = concord_ir::analysis::uses_gated_ops(&program.module, &roots)
            || concord_ir::analysis::uses_gated_ops(&gpu_artifact.module, &roots);

        let mut launch_error = None;
        let mut subs: Vec<(Device, u32, f64, LaunchStats)> = Vec::new();
        if plan.parts.len() > 1 && !gated {
            // Multi-device plan: every part executes against a snapshot of
            // the region — on a helper thread when host threads allow —
            // and the write-logs commit in fixed plan order, so the result
            // is byte-identical at any `host_threads` value.
            let jits: Vec<f64> = plan
                .parts
                .iter()
                .map(|&(device, _)| match device {
                    Device::Cpu => cpu.prepare(&mut ctx, class, func),
                    Device::Gpu => gpu.prepare(&mut ctx, class, func),
                })
                .collect();
            let mut part_slots: Vec<Vec<CpuAddr>> = Vec::new();
            let mut slot_base = 0usize;
            for i in 0..plan.parts.len() {
                let count = slot_counts.get(i).copied().unwrap_or(0) as usize;
                part_slots.push(match guard.as_ref() {
                    Some(g) => g.slots()[slot_base..slot_base + count].to_vec(),
                    None => Vec::new(),
                });
                slot_base += count;
            }
            // The CPU accumulates into pre-staged body copies; stage them
            // serially before the concurrent phase reads the region.
            if let ConstructKind::Reduce { body_size, .. } = kind {
                for (i, &(device, _)) in plan.parts.iter().enumerate() {
                    if device == Device::Cpu {
                        let used = cpu.sim().reduce_slots(part_slots[i].len());
                        if let Err(t) = CpuSim::stage_reduce(
                            ctx.region,
                            body,
                            body_size,
                            &part_slots[i][..used],
                        ) {
                            launch_error = Some(t);
                        }
                    }
                }
            }
            if launch_error.is_none() {
                let gpu_i = plan
                    .parts
                    .iter()
                    .position(|&(d, _)| d == Device::Gpu)
                    .expect("multi-part plan has a GPU part");
                let cpu_i = plan
                    .parts
                    .iter()
                    .position(|&(d, _)| d == Device::Cpu)
                    .expect("multi-part plan has a CPU part");
                let (_, gspan) = plan.parts[gpu_i];
                let (_, cspan) = plan.parts[cpu_i];
                let host_threads = cpu.sim().host_threads;
                let (gpu_pending, cpu_pending) = {
                    let region: &SharedRegion = ctx.region;
                    let vtables: &VtableArea = ctx.vtables;
                    let cpu_module = ctx.cpu_module;
                    let gpu_module = ctx.gpu_module;
                    let gpu_sim = gpu.sim();
                    let gslots = part_slots[gpu_i].clone();
                    let run_gpu = move || match kind {
                        ConstructKind::For => gpu_sim.execute_for_span(
                            region, gpu_module, func, body, gspan.lo, gspan.hi, gspan.grid,
                        ),
                        ConstructKind::Reduce { join, body_size } => gpu_sim.execute_reduce_span(
                            region, gpu_module, func, join, body, body_size, gspan.lo, gspan.hi,
                            gspan.grid, &gslots,
                        ),
                    };
                    let cslots = &part_slots[cpu_i];
                    let run_cpu = |sim: &mut CpuSim| match kind {
                        ConstructKind::For => sim.execute_for_span(
                            region, vtables, cpu_module, func, body, cspan.lo, cspan.hi, cspan.grid,
                        ),
                        ConstructKind::Reduce { .. } => sim.execute_reduce_partials(
                            region, vtables, cpu_module, func, cspan.lo, cspan.hi, cspan.grid,
                            cslots,
                        ),
                    };
                    if host_threads > 1 {
                        std::thread::scope(|s| {
                            let h = s.spawn(run_gpu);
                            let c = run_cpu(cpu.sim_mut());
                            (h.join().expect("GPU execute thread panicked"), c)
                        })
                    } else {
                        (run_gpu(), run_cpu(cpu.sim_mut()))
                    }
                };
                let mut gpu_pending = Some(gpu_pending);
                let mut cpu_pending = Some(cpu_pending);
                for (i, &(device, span)) in plan.parts.iter().enumerate() {
                    let committed = match device {
                        Device::Gpu => gpu.commit_pending(
                            &mut ctx,
                            span,
                            gpu_pending.take().expect("one GPU part"),
                        ),
                        Device::Cpu => cpu.commit_pending(
                            &mut ctx,
                            kind.name(),
                            span,
                            cpu_pending.take().expect("one CPU part"),
                        ),
                    };
                    match committed {
                        Ok(stats) => subs.push((device, span.items(), jits[i], stats)),
                        Err(trap) => {
                            launch_error = Some(trap);
                            break;
                        }
                    }
                }
            }
        } else {
            let mut slot_base = 0usize;
            for (i, &(device, span)) in plan.parts.iter().enumerate() {
                let backend: &mut dyn DeviceBackend = match device {
                    Device::Cpu if use_native => native,
                    Device::Cpu => cpu,
                    Device::Gpu => gpu,
                };
                let jit_seconds = backend.prepare(&mut ctx, class, func);
                let launched = match kind {
                    ConstructKind::For => backend.launch_for(&mut ctx, func, body, span),
                    ConstructKind::Reduce { join, body_size } => {
                        let count = slot_counts[i] as usize;
                        let slots = &guard.as_ref().expect("reduce has scratch").slots()
                            [slot_base..slot_base + count];
                        slot_base += count;
                        backend.launch_reduce(&mut ctx, func, join, body, body_size, span, slots)
                    }
                };
                match launched {
                    Ok(stats) => subs.push((device, span.items(), jit_seconds, stats)),
                    Err(trap) => {
                        launch_error = Some(trap);
                        break;
                    }
                }
            }
        }

        // Unpin before propagating any trap so the region is never left
        // fenced-for-GPU by a failed construct.
        for &(device, _) in &plan.parts {
            match device {
                Device::Cpu => cpu.fence_out(&mut ctx),
                Device::Gpu => gpu.fence_out(&mut ctx),
            }
        }
        if let Some(trap) = launch_error {
            return Err(RuntimeError::Trap(trap));
        }

        // Host-side final join of every part's partials (sequential, on
        // core 0, using the CPU-compiled join) — this is what lets one
        // construct combine per-warp GPU partials with per-core CPU ones.
        let mut join_seconds = 0.0;
        if let (ConstructKind::Reduce { join, .. }, Some(g)) = (kind, guard.as_ref()) {
            // The native executor already joined its partials into `body`
            // inside `launch_reduce` (same sequential schedule); joining
            // again here would double-count them.
            if !use_native {
                join_seconds = cpu
                    .join_partials(&mut ctx, join, body, g.slots())
                    .map_err(RuntimeError::Trap)?;
            }
        }
        drop(guard);

        let mut parts_reports = Vec::new();
        for &(device, items, jit_seconds, stats) in &subs {
            let phase = match device {
                Device::Gpu => PhaseReport {
                    seconds: stats.seconds + jit_seconds,
                    busy_fraction: stats.busy_fraction,
                },
                Device::Cpu => PhaseReport { seconds: stats.seconds, busy_fraction: 1.0 },
            };
            let before = meter.joules();
            meter.record(system, device, phase);
            // Native parts profile under their own device class: their
            // wall-clock rates must not contaminate the simulated-CPU
            // history `Target::Auto` splits by.
            let profile_class =
                if use_native { DeviceClass::Native } else { DeviceClass::from(device) };
            profile.record(class, profile_class, u64::from(items), stats.seconds);
            parts_reports.push(OffloadReport {
                jit_seconds,
                exec_seconds: stats.seconds,
                joules: meter.joules() - before,
                on_gpu: device == Device::Gpu,
                fell_back: false,
                translations: stats.translations,
                transactions: stats.transactions,
                contended: stats.contended,
                busy_fraction: stats.busy_fraction,
                l3_hit_rate: stats.l3_hit_rate,
                insts: stats.insts,
            });
        }
        let mut report = OffloadReport::merge_parallel(&parts_reports);
        if matches!(kind, ConstructKind::Reduce { .. }) {
            // The final join is a serial tail on one core after the
            // concurrent parts finish.
            let before = meter.joules();
            let host_phase = PhaseReport {
                seconds: join_seconds,
                busy_fraction: 1.0 / f64::from(system.cpu.cores),
            };
            meter.record(system, Device::Cpu, host_phase);
            report.joules += meter.joules() - before;
            report.exec_seconds += join_seconds;
        }
        report.fell_back = plan.fell_back;
        sp.arg("seconds", report.total_seconds());
        Ok(report)
    }

    /// One frontier round of [`Concord::parallel_worklist_hetero`]:
    /// split `items` across the plan's parts and launch each through
    /// [`DeviceBackend::launch_worklist`], appending every part's push
    /// segment to `pushes` in plan order.
    ///
    /// Parts always run one after another (unlike `parallel_for`'s
    /// snapshot-concurrent hybrid path): a later part observing an
    /// earlier part's committed writes can only suppress duplicate
    /// pushes of a guarded monotone body, and the caller's sort+dedup
    /// merge makes the next frontier independent of that visibility.
    #[allow(clippy::too_many_arguments)]
    fn offload_worklist_round(
        &mut self,
        class: &str,
        func: FuncId,
        body: CpuAddr,
        items: &[i32],
        target: Target,
        gpu_allowed: bool,
        pushes: &mut Vec<i32>,
    ) -> Result<OffloadReport, RuntimeError> {
        let n = items.len() as u32;
        let plan = scheduler::plan(target, n, gpu_allowed, &self.profile, class);
        let use_native = target == Target::Native;
        let Concord {
            system,
            program,
            gpu_artifact,
            region,
            vtables,
            cpu,
            gpu,
            native,
            meter,
            profile,
            tracer,
            ..
        } = self;
        let label = match plan.parts.as_slice() {
            [(Device::Gpu, _)] => "gpu",
            [(Device::Cpu, _)] if use_native => "native",
            [(Device::Cpu, _)] => "cpu",
            _ => "hybrid",
        };
        let mut sp = tracer.span_with(
            Track::Runtime,
            "parallel_worklist",
            vec![("kernel", class.into()), ("n", i64::from(n).into()), ("device", label.into())],
        );
        tracer.instant(
            Track::Sched,
            "decision",
            vec![
                ("kernel", class.into()),
                ("policy", plan.policy.into()),
                ("gpu_fraction", plan.gpu_fraction.into()),
                ("parts", (plan.parts.len() as i64).into()),
                ("n", i64::from(n).into()),
            ],
        );
        let mut ctx = ExecCtx {
            region,
            vtables,
            cpu_module: &program.module,
            gpu_module: &gpu_artifact.module,
            system,
            tracer,
        };
        if use_native {
            native
                .ensure_prepared(&mut ctx, class)
                .map_err(|e| RuntimeError::NativeUnsupported(e.to_string()))?;
        }
        for &(device, _) in &plan.parts {
            match device {
                Device::Cpu => cpu.fence_in(&mut ctx),
                Device::Gpu => gpu.fence_in(&mut ctx),
            }
        }
        let mut launch_error = None;
        let mut subs: Vec<(Device, u32, f64, LaunchStats)> = Vec::new();
        for &(device, span) in &plan.parts {
            let backend: &mut dyn DeviceBackend = match device {
                Device::Cpu if use_native => native,
                Device::Cpu => cpu,
                Device::Gpu => gpu,
            };
            let jit_seconds = backend.prepare(&mut ctx, class, func);
            let part_items = &items[span.lo as usize..span.hi as usize];
            match backend.launch_worklist(&mut ctx, func, body, span, part_items, pushes) {
                Ok(stats) => subs.push((device, span.items(), jit_seconds, stats)),
                Err(trap) => {
                    launch_error = Some(trap);
                    break;
                }
            }
        }
        for &(device, _) in &plan.parts {
            match device {
                Device::Cpu => cpu.fence_out(&mut ctx),
                Device::Gpu => gpu.fence_out(&mut ctx),
            }
        }
        if let Some(trap) = launch_error {
            return Err(RuntimeError::Trap(trap));
        }
        let mut parts_reports = Vec::new();
        for &(device, part_n, jit_seconds, stats) in &subs {
            let phase = match device {
                Device::Gpu => PhaseReport {
                    seconds: stats.seconds + jit_seconds,
                    busy_fraction: stats.busy_fraction,
                },
                Device::Cpu => PhaseReport { seconds: stats.seconds, busy_fraction: 1.0 },
            };
            let before = meter.joules();
            meter.record(system, device, phase);
            let profile_class =
                if use_native { DeviceClass::Native } else { DeviceClass::from(device) };
            profile.record(class, profile_class, u64::from(part_n), stats.seconds);
            parts_reports.push(OffloadReport {
                jit_seconds,
                exec_seconds: stats.seconds,
                joules: meter.joules() - before,
                on_gpu: device == Device::Gpu,
                fell_back: false,
                translations: stats.translations,
                transactions: stats.transactions,
                contended: stats.contended,
                busy_fraction: stats.busy_fraction,
                l3_hit_rate: stats.l3_hit_rate,
                insts: stats.insts,
            });
        }
        let mut report = OffloadReport::merge_parallel(&parts_reports);
        report.fell_back = plan.fell_back;
        sp.arg("seconds", report.total_seconds());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = r#"
        struct Node { Node* next; };
        class LoopBody {
        public:
            Node* nodes;
            void operator()(int i) { nodes[i].next = &(nodes[i+1]); }
        };
    "#;

    const SUM: &str = r#"
        class Sum {
        public:
            float* data; float acc;
            void operator()(int i) { acc += data[i]; }
            void join(Sum* other) { acc += other->acc; }
        };
    "#;

    const ALL_TARGETS: [Target; 4] =
        [Target::Cpu, Target::Gpu, Target::Hybrid { gpu_fraction: 0.5 }, Target::Auto];

    #[test]
    fn same_source_runs_on_all_targets() {
        for target in ALL_TARGETS {
            let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
            let nodes = cc.malloc(101 * 8).unwrap();
            let body = cc.malloc(8).unwrap();
            cc.region_mut().write_ptr(body, nodes).unwrap();
            let r = cc.parallel_for_hetero("LoopBody", body, 100, target).unwrap();
            assert_eq!(r.on_gpu, target != Target::Cpu);
            for i in 0..100u64 {
                let next = cc.region().read_ptr(CpuAddr(nodes.0 + i * 8)).unwrap();
                assert_eq!(next.0, nodes.0 + (i + 1) * 8);
            }
            assert!(r.joules > 0.0, "target {target} must meter energy");
        }
    }

    #[test]
    fn jit_cost_charged_once() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        let first = cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        let second = cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        let jit = SystemConfig::ultrabook().gpu.jit_ms * 1e-3;
        assert!(
            (first.jit_seconds - jit).abs() < jit * 1e-9,
            "first launch must report the JIT cost, got {}",
            first.jit_seconds
        );
        assert_eq!(second.jit_seconds, 0.0, "JIT must be cached after the first launch");
        assert!(
            first.total_seconds() > second.total_seconds() + jit * 0.9,
            "first launch must include the JIT cost: {} vs {}",
            first.total_seconds(),
            second.total_seconds()
        );
    }

    #[test]
    fn jit_cost_charged_once_across_mixed_targets() {
        // Hybrid probes, pure-GPU calls, and Auto calls all share one JIT
        // cache: the kernel is compiled for the GPU exactly once.
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        let seq = [Target::Hybrid { gpu_fraction: 0.5 }, Target::Gpu, Target::Auto, Target::Cpu];
        let mut jit_total = 0.0;
        for t in seq {
            jit_total += cc.parallel_for_hetero("LoopBody", body, 100, t).unwrap().jit_seconds;
        }
        let jit = SystemConfig::ultrabook().gpu.jit_ms * 1e-3;
        assert!(
            (jit_total - jit).abs() < jit * 1e-9,
            "mixed-target sequence must charge JIT exactly once, got {jit_total}"
        );
    }

    #[test]
    fn fences_wrap_offloads() {
        let mut cc = Concord::new(SystemConfig::desktop(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        let c = cc.region().consistency();
        assert_eq!(c.fences_to_gpu, 1);
        assert_eq!(c.fences_to_cpu, 1);
        assert!(!c.pinned);
        // CPU execution does not fence.
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Cpu).unwrap();
        assert_eq!(cc.region().consistency().fences_to_gpu, 1);
        // A hybrid construct runs both devices under ONE fence pair.
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Hybrid { gpu_fraction: 0.5 })
            .unwrap();
        let c = cc.region().consistency();
        assert_eq!(c.fences_to_gpu, 2);
        assert_eq!(c.fences_to_cpu, 2);
        assert!(!c.pinned);
    }

    #[test]
    fn recursive_kernel_falls_back_to_cpu() {
        let src = r#"
            int f(int n) { if (n < 2) return 1; return n * f(n - 1) + f(n - 2); }
            class K {
            public:
                int out;
                void operator()(int i) { out = f(i); }
            };
        "#;
        let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
        assert!(!cc.program().warnings.is_empty());
        let body = cc.malloc(8).unwrap();
        for target in [Target::Gpu, Target::Hybrid { gpu_fraction: 0.5 }, Target::Auto] {
            let r = cc.parallel_for_hetero("K", body, 4, target).unwrap();
            assert!(r.fell_back, "target {target} must fall back");
            assert!(!r.on_gpu);
        }
    }

    #[test]
    fn reduce_on_all_targets_agrees() {
        let mut results = Vec::new();
        for target in ALL_TARGETS {
            let mut cc = Concord::new(SystemConfig::desktop(), SUM, Options::default()).unwrap();
            let n = 200u32;
            let data = cc.malloc(n as u64 * 4).unwrap();
            for i in 0..n {
                cc.region_mut().write_f32(CpuAddr(data.0 + i as u64 * 4), (i % 7) as f32).unwrap();
            }
            let body = cc.malloc(16).unwrap();
            cc.region_mut().write_ptr(body, data).unwrap();
            cc.region_mut().write_f32(body.offset(8), 0.0).unwrap();
            cc.parallel_reduce_hetero("Sum", body, n, target).unwrap();
            results.push(cc.region().read_f32(body.offset(8)).unwrap());
        }
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, results[0], "target {} must agree with CPU reduction", ALL_TARGETS[i]);
        }
    }

    #[test]
    fn native_target_matches_cpu_interpreter_bytes() {
        if !concord_native::supported() {
            return;
        }
        let run = |target: Target| {
            let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
            let nodes = cc.malloc(101 * 8).unwrap();
            let body = cc.malloc(8).unwrap();
            cc.region_mut().write_ptr(body, nodes).unwrap();
            let r = cc.parallel_for_hetero("LoopBody", body, 100, target).unwrap();
            let bytes = cc
                .region()
                .read_bytes(nodes.0, concord_ir::types::AddrSpace::Cpu, 101 * 8)
                .unwrap()
                .to_vec();
            let native_rate = cc.profile().rate("LoopBody", DeviceClass::Native);
            (r, bytes, native_rate)
        };
        let (rn, native_bytes, native_rate) = run(Target::Native);
        let (_, cpu_bytes, _) = run(Target::Cpu);
        assert_eq!(native_bytes, cpu_bytes, "native must write the same region bytes");
        assert!(!rn.on_gpu);
        assert!(!rn.fell_back, "native never counts as a fallback");
        assert!(rn.insts > 0);
        assert!(rn.joules > 0.0, "native launches meter CPU energy");
        assert!(native_rate.is_some(), "native launches profile under their own class");
    }

    #[test]
    fn native_reduce_total_is_bit_exact_with_cpu() {
        if !concord_native::supported() {
            return;
        }
        let run = |target: Target| {
            let mut cc = Concord::new(SystemConfig::ultrabook(), SUM, Options::default()).unwrap();
            let n = 333u32;
            let data = cc.malloc(u64::from(n) * 4).unwrap();
            for i in 0..n {
                let v = (i % 13) as f32 * 0.37;
                cc.region_mut().write_f32(CpuAddr(data.0 + u64::from(i) * 4), v).unwrap();
            }
            let body = cc.malloc(16).unwrap();
            cc.region_mut().write_ptr(body, data).unwrap();
            cc.region_mut().write_f32(body.offset(8), 0.0).unwrap();
            cc.parallel_reduce_hetero("Sum", body, n, target).unwrap();
            cc.region().read_f32(body.offset(8)).unwrap().to_bits()
        };
        assert_eq!(run(Target::Native), run(Target::Cpu), "reduce totals must be bit-exact");
    }

    #[test]
    fn native_codegen_charged_once_and_shared_through_cache() {
        if !concord_native::supported() {
            return;
        }
        let cache = ArtifactCache::new();
        let run = |cc: &mut Concord| {
            let nodes = cc.malloc(101 * 8).unwrap();
            let body = cc.malloc(8).unwrap();
            cc.region_mut().write_ptr(body, nodes).unwrap();
            let first = cc.parallel_for_hetero("LoopBody", body, 100, Target::Native).unwrap();
            let second = cc.parallel_for_hetero("LoopBody", body, 100, Target::Native).unwrap();
            (first.jit_seconds, second.jit_seconds)
        };
        let mut a =
            Concord::new_with_cache(SystemConfig::ultrabook(), FIG1, Options::default(), &cache)
                .unwrap();
        let (a1, a2) = run(&mut a);
        assert!(a1 > 0.0, "first native launch reports wall-clock codegen time");
        assert_eq!(a2, 0.0, "codegen is cached within the session");
        let mut b =
            Concord::new_with_cache(SystemConfig::ultrabook(), FIG1, Options::default(), &cache)
                .unwrap();
        let (b1, b2) = run(&mut b);
        assert_eq!(b1, 0.0, "second session reuses machine code through the cache");
        assert_eq!(b2, 0.0);
    }

    #[test]
    fn native_trap_matches_cpu_and_does_not_leak_scratch() {
        if !concord_native::supported() {
            return;
        }
        let src = r#"
            class Crash {
            public:
                float* data; float acc;
                void operator()(int i) { acc += data[i]; }
                void join(Crash* other) { acc += other->acc; }
            };
        "#;
        let run = |target: Target| {
            let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
            let body = cc.malloc(16).unwrap();
            let free_before = cc.heap_free_bytes();
            let err = cc.parallel_reduce_hetero("Crash", body, 64, target).unwrap_err();
            assert_eq!(cc.heap_free_bytes(), free_before, "target {target} leaked scratch");
            err
        };
        assert_eq!(
            run(Target::Native),
            run(Target::Cpu),
            "native traps must carry the same kernel name and work-item id"
        );
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let body = cc.malloc(8).unwrap();
        let err = cc.parallel_for_hetero("Nope", body, 1, Target::Cpu).unwrap_err();
        assert!(matches!(err, RuntimeError::NoSuchKernel(_)));
    }

    #[test]
    fn reduce_without_join_is_an_error() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let body = cc.malloc(8).unwrap();
        let err = cc.parallel_reduce_hetero("LoopBody", body, 1, Target::Cpu).unwrap_err();
        assert!(matches!(err, RuntimeError::NoJoin(_)));
    }

    #[test]
    fn reduce_falls_back_when_body_exceeds_local_memory() {
        // 16 lanes × body_size must fit in 64 KiB of local memory; a body
        // with a giant inline array cannot, so the runtime must run the
        // reduction on the CPU instead (§3.3 "if local memory is
        // insufficient").
        let src = r#"
            class Big {
            public:
                float* data;
                float pad[1200];
                float acc;
                void operator()(int i) { acc += data[i]; }
                void join(Big* other) { acc += other->acc; }
            };
        "#;
        let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
        let k = cc.program().kernel("Big").unwrap().body_size;
        assert!(k * 16 > SystemConfig::ultrabook().gpu.local_bytes);
        let n = 32u32;
        let data = cc.malloc(n as u64 * 4).unwrap();
        for i in 0..n {
            cc.region_mut().write_f32(CpuAddr(data.0 + i as u64 * 4), 2.0).unwrap();
        }
        let body = cc.malloc(k).unwrap();
        cc.region_mut().write_ptr(body, data).unwrap();
        let r = cc.parallel_reduce_hetero("Big", body, n, Target::Gpu).unwrap();
        assert!(r.fell_back, "oversized reduce body must fall back to CPU");
        assert!(!r.on_gpu);
        let acc = cc.region().read_f32(body.offset(8 + 1200 * 4)).unwrap();
        assert_eq!(acc, 64.0);
    }

    #[test]
    fn energy_meter_accumulates_across_offloads() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Cpu).unwrap();
        let e1 = cc.energy_joules();
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        assert!(cc.energy_joules() > e1);
    }

    #[test]
    fn hybrid_joules_match_meter_delta() {
        // The merged report's joules must account for exactly the energy
        // the construct added to the package meter.
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        let before = cc.energy_joules();
        let r = cc
            .parallel_for_hetero("LoopBody", body, 100, Target::Hybrid { gpu_fraction: 0.5 })
            .unwrap();
        let delta = cc.energy_joules() - before;
        assert!((r.joules - delta).abs() < 1e-12, "{} vs {delta}", r.joules);
        assert!(r.on_gpu);
        assert!(!r.fell_back);
    }

    #[test]
    fn merge_parallel_invariants() {
        let cpu = OffloadReport {
            jit_seconds: 0.0,
            exec_seconds: 3e-4,
            joules: 0.02,
            on_gpu: false,
            fell_back: false,
            translations: 7,
            transactions: 0,
            contended: 0,
            busy_fraction: 1.0,
            l3_hit_rate: 0.0,
            insts: 1000,
        };
        let gpu = OffloadReport {
            jit_seconds: 5e-6,
            exec_seconds: 2e-4,
            joules: 0.01,
            on_gpu: true,
            fell_back: false,
            translations: 11,
            transactions: 40,
            contended: 3,
            busy_fraction: 0.8,
            l3_hit_rate: 0.9,
            insts: 600,
        };
        let m = OffloadReport::merge_parallel(&[gpu, cpu]);
        assert_eq!(m.joules, cpu.joules + gpu.joules);
        assert_eq!(m.insts, cpu.insts + gpu.insts);
        assert_eq!(m.translations, cpu.translations + gpu.translations);
        assert_eq!(m.transactions, 40);
        assert_eq!(m.contended, 3);
        assert_eq!(m.exec_seconds, cpu.exec_seconds.max(gpu.exec_seconds));
        assert_eq!(m.jit_seconds, gpu.jit_seconds);
        assert_eq!(m.total_seconds(), gpu.jit_seconds + 3e-4);
        assert_eq!(m.busy_fraction, gpu.busy_fraction);
        assert_eq!(m.l3_hit_rate, gpu.l3_hit_rate);
        assert!(m.on_gpu);
        assert!(!m.fell_back);
        // A single-part merge is the identity.
        let one = OffloadReport::merge_parallel(&[cpu]);
        assert_eq!(one.busy_fraction, 1.0);
        assert_eq!(one.joules, cpu.joules);
    }

    #[test]
    fn cpu_report_is_fully_populated() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        let r = cc.parallel_for_hetero("LoopBody", body, 100, Target::Cpu).unwrap();
        assert_eq!(r.busy_fraction, 1.0, "CPU launches run all cores busy");
        assert!(r.insts > 0);
        // The CPU-optimized module contains no address-space translation
        // ops, so the counter is rightly zero here — it exists for CPU
        // execution of GPU-lowered code.
        assert_eq!(r.translations, 0);
    }

    #[test]
    fn trapping_kernel_does_not_leak_scratch() {
        // The reduction kernel traps (null deref) after the per-part
        // scratch has been allocated; the guard must free it anyway.
        let src = r#"
            class Crash {
            public:
                float* data; float acc;
                void operator()(int i) { acc += data[i]; }
                void join(Crash* other) { acc += other->acc; }
            };
        "#;
        for target in ALL_TARGETS {
            let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
            let body = cc.malloc(16).unwrap();
            // data stays null -> operator() traps on the first load.
            let free_before = cc.heap_free_bytes();
            let err = cc.parallel_reduce_hetero("Crash", body, 64, target).unwrap_err();
            assert!(matches!(err, RuntimeError::Trap(_)), "target {target}");
            assert_eq!(
                cc.heap_free_bytes(),
                free_before,
                "target {target} leaked reduction scratch"
            );
            assert!(!cc.region().consistency().pinned, "trap must not leave the region pinned");
        }
    }

    #[test]
    fn artifact_cache_shares_compile_and_jit_across_sessions() {
        let cache = ArtifactCache::new();
        let run = |cc: &mut Concord| {
            let nodes = cc.malloc(101 * 8).unwrap();
            let body = cc.malloc(8).unwrap();
            cc.region_mut().write_ptr(body, nodes).unwrap();
            let r = cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
            let bytes: Vec<u8> = (0..101 * 8)
                .map(|i| {
                    cc.region()
                        .read_bytes(nodes.0 + i, concord_ir::types::AddrSpace::Cpu, 1)
                        .unwrap()[0]
                })
                .collect();
            (r, bytes)
        };
        let mut a =
            Concord::new_with_cache(SystemConfig::ultrabook(), FIG1, Options::default(), &cache)
                .unwrap();
        let (ra, bytes_a) = run(&mut a);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        assert!(ra.jit_seconds > 0.0, "first session pays the JIT charge");

        let mut b =
            Concord::new_with_cache(SystemConfig::ultrabook(), FIG1, Options::default(), &cache)
                .unwrap();
        let (rb, bytes_b) = run(&mut b);
        assert_eq!(cache.hits(), 1, "second session must hit the cache");
        assert_eq!(cache.entries(), 1);
        assert_eq!(rb.jit_seconds, 0.0, "JIT charge is shared process-wide through the cache");
        assert_eq!(bytes_a, bytes_b, "cached sessions produce identical results");
        assert_eq!(ra.exec_seconds, rb.exec_seconds);
        assert_eq!(ra.insts, rb.insts);

        // A different GpuConfig is a different entry — no false sharing.
        let opts = Options {
            gpu_config: Some(GpuConfig::baseline(SystemConfig::ultrabook().gpu.eus)),
            ..Options::default()
        };
        let mut c = Concord::new_with_cache(SystemConfig::ultrabook(), FIG1, opts, &cache).unwrap();
        let (rc, _) = run(&mut c);
        assert_eq!(cache.entries(), 2);
        assert!(rc.jit_seconds > 0.0, "new config pays its own JIT charge");
    }

    #[test]
    fn auto_target_is_deterministic_and_adapts() {
        let run = || {
            let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
            let nodes = cc.malloc(1025 * 8).unwrap();
            let body = cc.malloc(8).unwrap();
            cc.region_mut().write_ptr(body, nodes).unwrap();
            let mut reports = Vec::new();
            for _ in 0..4 {
                reports.push(cc.parallel_for_hetero("LoopBody", body, 1024, Target::Auto).unwrap());
            }
            let share = cc.profile().gpu_share("LoopBody");
            (reports, share)
        };
        let (a, share_a) = run();
        let (b, share_b) = run();
        assert_eq!(share_a, share_b, "identical call sequences must produce identical splits");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exec_seconds, y.exec_seconds);
            assert_eq!(x.joules, y.joules);
            assert_eq!(x.insts, y.insts);
        }
        let share = share_a.expect("both devices observed after the probe");
        assert!(share > 0.0 && share < 1.0);
        // Every auto call after the probe still runs both devices (the
        // split is proportional, not winner-takes-all).
        assert!(a.iter().all(|r| r.on_gpu));
    }

    /// Deliberately racy source: a non-atomic read-modify-write of one
    /// shared slot from every work item (lint CA104, error severity).
    const RACY: &str = r#"
        class RacyHistogram {
        public:
            int* bins;
            void operator()(int i) { bins[0] = bins[0] + 1; }
        };
    "#;

    fn racy_context(gate: AnalysisGate) -> (Concord, CpuAddr) {
        let opts = Options { analysis: gate, ..Options::default() };
        let mut cc = Concord::new(SystemConfig::ultrabook(), RACY, opts).unwrap();
        let bins = cc.malloc(64).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, bins).unwrap();
        (cc, body)
    }

    #[test]
    fn deny_gate_blocks_racy_kernel() {
        let (mut cc, body) = racy_context(AnalysisGate::Deny);
        let err = cc.parallel_for_hetero("RacyHistogram", body, 16, Target::Cpu).unwrap_err();
        match err {
            RuntimeError::AnalysisDenied { kernel, report } => {
                assert_eq!(kernel, "RacyHistogram");
                assert!(report.has_errors());
                assert!(report.to_text().contains("CA104"), "{}", report.to_text());
            }
            other => panic!("expected AnalysisDenied, got {other:?}"),
        }
    }

    #[test]
    fn warn_and_off_gates_still_launch_racy_kernel() {
        for gate in [AnalysisGate::Warn, AnalysisGate::Off] {
            let (mut cc, body) = racy_context(gate);
            cc.parallel_for_hetero("RacyHistogram", body, 16, Target::Cpu)
                .unwrap_or_else(|e| panic!("{gate:?} gate must not block: {e}"));
        }
    }

    #[test]
    fn deny_gate_passes_clean_kernels() {
        // FIG1 (affine stores) under For, SUM (staged accumulator) under
        // Reduce: both are correct code and must not be denied.
        let opts = Options { analysis: AnalysisGate::Deny, ..Options::default() };
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, opts).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Auto).unwrap();

        let opts = Options { analysis: AnalysisGate::Deny, ..Options::default() };
        let mut cc = Concord::new(SystemConfig::ultrabook(), SUM, opts).unwrap();
        let data = cc.malloc(64 * 4).unwrap();
        for i in 0..64 {
            cc.region_mut().write_f32(CpuAddr(data.0 + i * 4), 1.0).unwrap();
        }
        let body = cc.malloc(16).unwrap();
        cc.region_mut().write_ptr(body, data).unwrap();
        cc.region_mut().write_f32(CpuAddr(body.0 + 8), 0.0).unwrap();
        cc.parallel_reduce_hetero("Sum", body, 64, Target::Cpu).unwrap();
    }

    #[test]
    fn analyze_kernel_is_cached_and_mode_sensitive() {
        let (mut cc, _) = racy_context(AnalysisGate::Warn);
        let first = cc.analyze_kernel("RacyHistogram", AnalysisMode::For).unwrap();
        let second = cc.analyze_kernel("RacyHistogram", AnalysisMode::For).unwrap();
        assert_eq!(first, second, "memoized report must be identical");
        assert!(first.has_errors());
        assert!(cc.analyze_kernel("Missing", AnalysisMode::For).is_err());
    }

    // ---- launch-graph (submit/complete) tests ----

    fn assert_reports_eq(a: &OffloadReport, b: &OffloadReport, what: &str) {
        assert_eq!(a.jit_seconds, b.jit_seconds, "{what}: jit_seconds");
        assert_eq!(a.exec_seconds, b.exec_seconds, "{what}: exec_seconds");
        assert_eq!(a.joules, b.joules, "{what}: joules");
        assert_eq!(a.on_gpu, b.on_gpu, "{what}: on_gpu");
        assert_eq!(a.fell_back, b.fell_back, "{what}: fell_back");
        assert_eq!(a.translations, b.translations, "{what}: translations");
        assert_eq!(a.transactions, b.transactions, "{what}: transactions");
        assert_eq!(a.contended, b.contended, "{what}: contended");
        assert_eq!(a.busy_fraction, b.busy_fraction, "{what}: busy_fraction");
        assert_eq!(a.l3_hit_rate, b.l3_hit_rate, "{what}: l3_hit_rate");
        assert_eq!(a.insts, b.insts, "{what}: insts");
    }

    fn fig1_context(host_threads: usize) -> (Concord, CpuAddr, CpuAddr, CpuAddr, CpuAddr) {
        let opts = Options { host_threads: Some(host_threads), ..Options::default() };
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, opts).unwrap();
        let a_nodes = cc.malloc(101 * 8).unwrap();
        let a_body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(a_body, a_nodes).unwrap();
        let b_nodes = cc.malloc(101 * 8).unwrap();
        let b_body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(b_body, b_nodes).unwrap();
        (cc, a_nodes, a_body, b_nodes, b_body)
    }

    fn nodes_bytes(cc: &Concord, nodes: CpuAddr) -> Vec<u8> {
        cc.region()
            .read_bytes(nodes.0, concord_ir::types::AddrSpace::Cpu, 101 * 8)
            .unwrap()
            .to_vec()
    }

    #[test]
    fn submit_complete_matches_blocking_path() {
        for target in ALL_TARGETS {
            let (mut serial, s_nodes, s_body, ..) = fig1_context(1);
            let want = serial.parallel_for_hetero("LoopBody", s_body, 100, target).unwrap();
            let want_bytes = nodes_bytes(&serial, s_nodes);

            let (mut cc, nodes, body, ..) = fig1_context(1);
            let id = cc.submit_for("LoopBody", body, 100, target).unwrap();
            let got = cc.complete(id).unwrap();
            assert_reports_eq(&got, &want, &format!("target {target}"));
            assert_eq!(nodes_bytes(&cc, nodes), want_bytes, "target {target}");
            let st = cc.graph_stats();
            assert_eq!(st.submitted, 1);
            assert_eq!(st.completed, 1);
        }
    }

    #[test]
    fn disjoint_cpu_gpu_launches_overlap_and_stay_byte_identical() {
        // Serial reference at host_threads=1.
        let (mut serial, sa, sab, sb, sbb) = fig1_context(1);
        let ra = serial.parallel_for_hetero("LoopBody", sab, 100, Target::Cpu).unwrap();
        let rb = serial.parallel_for_hetero("LoopBody", sbb, 100, Target::Gpu).unwrap();
        let (bytes_a, bytes_b) = (nodes_bytes(&serial, sa), nodes_bytes(&serial, sb));

        for ht in [1usize, 8] {
            let (mut cc, a, ab, b, bb) = fig1_context(ht);
            let ia = cc.submit_for("LoopBody", ab, 100, Target::Cpu).unwrap();
            let ib = cc.submit_for("LoopBody", bb, 100, Target::Gpu).unwrap();
            cc.complete_all();
            let ga = cc.complete(ia).unwrap();
            let gb = cc.complete(ib).unwrap();
            assert_reports_eq(&ga, &ra, &format!("cpu launch, ht={ht}"));
            assert_reports_eq(&gb, &rb, &format!("gpu launch, ht={ht}"));
            assert_eq!(nodes_bytes(&cc, a), bytes_a, "ht={ht}");
            assert_eq!(nodes_bytes(&cc, b), bytes_b, "ht={ht}");
            let st = cc.graph_stats();
            assert_eq!(st.overlapped, 1, "disjoint cpu+gpu pair must overlap (ht={ht})");
            assert_eq!(st.conflict_stalls, 0, "ht={ht}");
            // One fence pair covers the overlapped wave — same count as
            // the serial pair (cpu launch does not fence).
            let c = cc.region().consistency();
            assert_eq!(c.fences_to_gpu, 1, "ht={ht}");
            assert_eq!(c.fences_to_cpu, 1, "ht={ht}");
            assert!(!c.pinned);
        }
    }

    #[test]
    fn conflicting_launches_serialize_with_a_stall() {
        // Both launches write the SAME nodes array: the graph must keep
        // submission order (no overlap) and still match serial bytes.
        let (mut serial, s_nodes, s_body, ..) = fig1_context(1);
        serial.parallel_for_hetero("LoopBody", s_body, 100, Target::Cpu).unwrap();
        serial.parallel_for_hetero("LoopBody", s_body, 100, Target::Gpu).unwrap();
        let want = nodes_bytes(&serial, s_nodes);

        let (mut cc, nodes, body, ..) = fig1_context(8);
        cc.submit_for("LoopBody", body, 100, Target::Cpu).unwrap();
        cc.submit_for("LoopBody", body, 100, Target::Gpu).unwrap();
        cc.complete_all();
        assert_eq!(nodes_bytes(&cc, nodes), want);
        let st = cc.graph_stats();
        assert_eq!(st.overlapped, 0, "write-conflicting launches must not overlap");
        assert!(st.conflict_stalls >= 1, "the conflict must be counted: {st:?}");
        assert_eq!(cc.region().consistency().fences_to_gpu, 1, "gpu launch keeps its fence");
    }

    #[test]
    fn consecutive_gpu_launches_share_one_fence_pair() {
        let (mut serial, sa, sab, sb, sbb) = fig1_context(1);
        let ra = serial.parallel_for_hetero("LoopBody", sab, 100, Target::Gpu).unwrap();
        let rb = serial.parallel_for_hetero("LoopBody", sbb, 100, Target::Gpu).unwrap();
        assert_eq!(serial.region().consistency().fences_to_gpu, 2);
        let (bytes_a, bytes_b) = (nodes_bytes(&serial, sa), nodes_bytes(&serial, sb));

        let (mut cc, a, ab, b, bb) = fig1_context(1);
        let ia = cc.submit_for("LoopBody", ab, 100, Target::Gpu).unwrap();
        let ib = cc.submit_for("LoopBody", bb, 100, Target::Gpu).unwrap();
        cc.complete_all();
        assert_reports_eq(&cc.complete(ia).unwrap(), &ra, "first gpu launch");
        assert_reports_eq(&cc.complete(ib).unwrap(), &rb, "second gpu launch");
        assert_eq!(nodes_bytes(&cc, a), bytes_a);
        assert_eq!(nodes_bytes(&cc, b), bytes_b);
        let c = cc.region().consistency();
        assert_eq!(c.fences_to_gpu, 1, "batched launches share one fence-in");
        assert_eq!(c.fences_to_cpu, 1, "batched launches share one fence-out");
        assert_eq!(c.fences_elided, 1, "the elided pair must be counted on the region");
        assert_eq!(cc.graph_stats().fences_elided, 1);
    }

    #[test]
    fn accumulate_launches_coalesce_under_one_fence_pair() {
        let src = r#"
            class Histogram {
            public:
                int* bins; int* data;
                void operator()(int i) { atomic_add(&bins[data[i] & 7], 1); }
            };
        "#;
        let build = |_| {
            let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
            let bins = cc.malloc(8 * 4).unwrap();
            let d1 = cc.malloc(64 * 4).unwrap();
            let d2 = cc.malloc(64 * 4).unwrap();
            for i in 0..64u64 {
                cc.region_mut().write_i32(CpuAddr(d1.0 + i * 4), i as i32).unwrap();
                cc.region_mut().write_i32(CpuAddr(d2.0 + i * 4), (3 * i) as i32).unwrap();
            }
            let b1 = cc.malloc(16).unwrap();
            cc.region_mut().write_ptr(b1, bins).unwrap();
            cc.region_mut().write_ptr(b1.offset(8), d1).unwrap();
            let b2 = cc.malloc(16).unwrap();
            cc.region_mut().write_ptr(b2, bins).unwrap();
            cc.region_mut().write_ptr(b2.offset(8), d2).unwrap();
            (cc, bins, b1, b2)
        };
        let (mut serial, s_bins, sb1, sb2) = build(());
        serial.parallel_for_hetero("Histogram", sb1, 64, Target::Gpu).unwrap();
        serial.parallel_for_hetero("Histogram", sb2, 64, Target::Gpu).unwrap();
        let want: Vec<i32> =
            (0..8).map(|i| serial.region().read_i32(CpuAddr(s_bins.0 + i * 4)).unwrap()).collect();

        let (mut cc, bins, b1, b2) = build(());
        cc.submit_for("Histogram", b1, 64, Target::Gpu).unwrap();
        cc.submit_for("Histogram", b2, 64, Target::Gpu).unwrap();
        cc.complete_all();
        let got: Vec<i32> =
            (0..8).map(|i| cc.region().read_i32(CpuAddr(bins.0 + i * 4)).unwrap()).collect();
        assert_eq!(got, want);
        let st = cc.graph_stats();
        assert_eq!(st.coalesced, 1, "accumulate overlap must coalesce: {st:?}");
        assert_eq!(st.fences_elided, 1);
        assert_eq!(cc.region().consistency().fences_to_gpu, 1);
    }

    #[test]
    fn trap_choice_matches_serial_submission_order() {
        // First launch traps (null nodes pointer -> opaque footprint,
        // solo wave); second is healthy. The graph must surface the trap
        // on the first id, the success on the second, and still apply the
        // second launch's writes — exactly like a serial caller that
        // continues past the failure.
        let (mut serial, _sa, _sab, sb, sbb) = fig1_context(1);
        let null_body = serial.malloc(8).unwrap();
        let want_err =
            serial.parallel_for_hetero("LoopBody", null_body, 4, Target::Cpu).unwrap_err();
        let want_ok = serial.parallel_for_hetero("LoopBody", sbb, 100, Target::Gpu).unwrap();
        let want_bytes = nodes_bytes(&serial, sb);

        let (mut cc, _a, _ab, b, bb) = fig1_context(1);
        let nb = cc.malloc(8).unwrap();
        let bad = cc.submit_for("LoopBody", nb, 4, Target::Cpu).unwrap();
        let good = cc.submit_for("LoopBody", bb, 100, Target::Gpu).unwrap();
        cc.complete_all();
        let got_err = cc.complete(bad).unwrap_err();
        assert_eq!(got_err, want_err, "trap identity must match serial");
        assert_reports_eq(&cc.complete(good).unwrap(), &want_ok, "launch after trap");
        assert_eq!(nodes_bytes(&cc, b), want_bytes);
    }

    #[test]
    fn complete_touching_drains_only_what_overlaps() {
        let (mut cc, a, ab, _b, bb) = fig1_context(1);
        cc.submit_for("LoopBody", ab, 100, Target::Gpu).unwrap();
        let ib = cc.submit_for("LoopBody", bb, 100, Target::Gpu).unwrap();
        // A range nothing touches: nothing drains.
        cc.complete_touching(1, 1);
        assert_eq!(cc.graph_stats().completed, 0);
        // Touching the first launch's output drains in submission order.
        // The two launches batch into one wave, so both drain together.
        cc.complete_touching(a.0, 8);
        assert_eq!(cc.graph_stats().completed, 2);
        assert!(cc.complete(ib).is_ok());
    }

    #[test]
    fn record_and_replay_graph_matches_serial_bytes_and_reports() {
        let record = || {
            let (mut cc, a, ab, b, bb) = fig1_context(1);
            // Recording starts after setup ops here; exercise the full
            // path by re-writing a body pointer inside the recording.
            cc.record_session(true);
            let extra = cc.malloc(16).unwrap();
            cc.region_mut().write_ptr(ab, a).unwrap();
            cc.parallel_for_hetero("LoopBody", ab, 100, Target::Cpu).unwrap();
            cc.parallel_for_hetero("LoopBody", bb, 100, Target::Gpu).unwrap();
            cc.region_mut().write_i64(extra, 7).unwrap();
            cc.free(extra).unwrap();
            let ops = cc.take_session();
            (ops, nodes_bytes(&cc, a), nodes_bytes(&cc, b))
        };
        let (ops, bytes_a, bytes_b) = record();
        assert!(ops.iter().any(|o| matches!(o, SessionOp::Launch { .. })));
        assert!(ops.iter().any(|o| matches!(o, SessionOp::Write { .. })));

        let (mut serial, sa, _sab, sb, _sbb) = fig1_context(1);
        let serial_reports = serial.replay_serial(&ops).unwrap();
        assert_eq!(nodes_bytes(&serial, sa), bytes_a);
        assert_eq!(nodes_bytes(&serial, sb), bytes_b);

        for ht in [1usize, 8] {
            let (mut cc, a, _ab, b, _bb) = fig1_context(ht);
            let graph_reports = cc.replay_graph(&ops).unwrap();
            assert_eq!(nodes_bytes(&cc, a), bytes_a, "ht={ht}");
            assert_eq!(nodes_bytes(&cc, b), bytes_b, "ht={ht}");
            assert_eq!(graph_reports.len(), serial_reports.len());
            for (i, (g, s)) in graph_reports.iter().zip(&serial_reports).enumerate() {
                assert_reports_eq(
                    g.as_ref().unwrap(),
                    s.as_ref().unwrap(),
                    &format!("replayed launch {i}, ht={ht}"),
                );
            }
            assert_eq!(cc.graph_stats().overlapped, 1, "disjoint replayed launches overlap");
        }
    }

    #[test]
    fn unknown_launch_id_is_an_error() {
        let (mut cc, _, body, ..) = fig1_context(1);
        let id = cc.submit_for("LoopBody", body, 100, Target::Cpu).unwrap();
        cc.complete(id).unwrap();
        // Taken once: gone.
        assert!(matches!(cc.complete(id), Err(RuntimeError::UnknownLaunch(_))));
        assert!(matches!(cc.complete(LaunchId(999)), Err(RuntimeError::UnknownLaunch(_))));
    }

    #[test]
    fn submit_respects_the_deny_gate() {
        let opts = Options { analysis: AnalysisGate::Deny, ..Options::default() };
        let mut cc = Concord::new(SystemConfig::ultrabook(), RACY, opts).unwrap();
        let bins = cc.malloc(64).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, bins).unwrap();
        let err = cc.submit_for("RacyHistogram", body, 16, Target::Cpu).unwrap_err();
        assert!(matches!(err, RuntimeError::AnalysisDenied { .. }));
        assert_eq!(cc.graph_stats().submitted, 0, "denied launches never enter the graph");
    }

    const CHAIN: &str = r#"
        class Chain {
        public:
            int* dist;
            void operator()(int v) {
                if (v < 9) {
                    if (dist[v + 1] < 0) {
                        dist[v + 1] = dist[v] + 1;
                        push(v + 1);
                    }
                }
            }
        };
    "#;

    fn chain_context(host_threads: usize) -> (Concord, CpuAddr, CpuAddr) {
        let opts = Options { host_threads: Some(host_threads), ..Options::default() };
        let mut cc = Concord::new(SystemConfig::ultrabook(), CHAIN, opts).unwrap();
        let dist = cc.malloc(10 * 4).unwrap();
        cc.region_mut().write_i32(dist, 0).unwrap();
        for i in 1..10u64 {
            cc.region_mut().write_i32(CpuAddr(dist.0 + i * 4), -1).unwrap();
        }
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, dist).unwrap();
        (cc, dist, body)
    }

    fn dist_values(cc: &Concord, dist: CpuAddr) -> Vec<i32> {
        (0..10u64).map(|i| cc.region().read_i32(CpuAddr(dist.0 + i * 4)).unwrap()).collect()
    }

    #[test]
    fn worklist_chain_agrees_on_every_target_and_thread_count() {
        let targets = [
            Target::Cpu,
            Target::Gpu,
            Target::Hybrid { gpu_fraction: 0.5 },
            Target::Auto,
            Target::Native,
        ];
        for target in targets {
            for ht in [1usize, 8] {
                let (mut cc, dist, body) = chain_context(ht);
                let r = cc.parallel_worklist_hetero("Chain", body, &[0], target).unwrap();
                assert_eq!(r.frontier_sizes, vec![1; 10], "{target} ht={ht}");
                assert_eq!(r.rounds(), 10);
                assert_eq!(r.total_items(), 10);
                assert_eq!(
                    dist_values(&cc, dist),
                    (0..10).collect::<Vec<i32>>(),
                    "{target} ht={ht}"
                );
                assert!(r.offload.exec_seconds > 0.0);
                assert!(r.offload.joules > 0.0);
            }
        }
    }

    #[test]
    fn worklist_empty_seed_runs_zero_rounds() {
        let (mut cc, dist, body) = chain_context(1);
        let before = cc.heap_free_bytes();
        let r = cc.parallel_worklist_hetero("Chain", body, &[], Target::Gpu).unwrap();
        assert_eq!(r.rounds(), 0);
        assert_eq!(r.total_items(), 0);
        assert_eq!(r.offload.exec_seconds, 0.0);
        assert_eq!(dist_values(&cc, dist)[1], -1, "no round ran");
        assert_eq!(cc.heap_free_bytes(), before, "no queue scratch leaked");
    }

    #[test]
    fn worklist_queue_scratch_is_released() {
        let (mut cc, _, body) = chain_context(8);
        let before = cc.heap_free_bytes();
        cc.parallel_worklist_hetero("Chain", body, &[0], Target::Hybrid { gpu_fraction: 0.5 })
            .unwrap();
        assert_eq!(cc.heap_free_bytes(), before);
    }

    #[test]
    fn worklist_merge_dedups_pushes_and_seed() {
        // Every item below 9 pushes 9 — without dedup the second round
        // would run the body once per pusher and `count[9]` would exceed 1.
        let src = r#"
            class Fan {
            public:
                int* count;
                void operator()(int v) {
                    count[v] = count[v] + 1;
                    if (v < 9) { push(9); }
                }
            };
        "#;
        for target in [Target::Cpu, Target::Gpu, Target::Native] {
            let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
            let count = cc.malloc(10 * 4).unwrap();
            let body = cc.malloc(8).unwrap();
            cc.region_mut().write_ptr(body, count).unwrap();
            let r = cc.parallel_worklist_hetero("Fan", body, &[2, 0, 2, 1, 0], target).unwrap();
            assert_eq!(r.frontier_sizes, vec![3, 1], "{target}");
            for i in [0u64, 1, 2, 9] {
                assert_eq!(
                    cc.region().read_i32(CpuAddr(count.0 + i * 4)).unwrap(),
                    1,
                    "{target}: item {i} ran exactly once"
                );
            }
        }
    }

    #[test]
    fn push_outside_worklist_traps_everywhere() {
        for target in [Target::Cpu, Target::Gpu, Target::Native] {
            let (mut cc, _, body) = chain_context(1);
            let err = cc.parallel_for_hetero("Chain", body, 4, target).unwrap_err();
            match err {
                RuntimeError::Trap(Trap::BadIntrinsic(_)) => {}
                other => panic!("{target}: expected BadIntrinsic trap, got {other:?}"),
            }
        }
    }

    #[test]
    fn worklist_records_and_replays_through_both_paths() {
        let record = || {
            let (mut cc, dist, body) = chain_context(1);
            cc.record_session(true);
            cc.region_mut().write_i32(CpuAddr(dist.0 + 9 * 4), -1).unwrap();
            cc.parallel_worklist_hetero("Chain", body, &[0], Target::Gpu).unwrap();
            (cc.take_session(), dist_values(&cc, dist))
        };
        let (ops, expect) = record();
        assert!(ops.iter().any(|o| matches!(o, SessionOp::Worklist { .. })));
        // Frontier staging must not leak into the journal as raw writes:
        // the one recorded write is the host's own.
        assert_eq!(
            ops.iter().filter(|o| matches!(o, SessionOp::Write { .. })).count(),
            1,
            "exactly the pre-launch host write is journaled"
        );

        let (mut serial, sd, _) = chain_context(1);
        let serial_reports = serial.replay_serial(&ops).unwrap();
        assert_eq!(dist_values(&serial, sd), expect);
        assert_eq!(serial_reports.len(), 1);

        let (mut graph, gd, _) = chain_context(8);
        let graph_reports = graph.replay_graph(&ops).unwrap();
        assert_eq!(dist_values(&graph, gd), expect);
        assert_reports_eq(
            graph_reports[0].as_ref().unwrap(),
            serial_reports[0].as_ref().unwrap(),
            "replayed worklist",
        );
    }

    #[test]
    fn access_summary_is_exposed_and_cached() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let s = cc.access_summary("LoopBody", AnalysisMode::For).unwrap();
        assert!(!s.opaque);
        assert_eq!(
            s.mode_of(concord_analyze::AccessBase::Field { offset: 0 }),
            Some(AccessMode::Write)
        );
        assert_eq!(s, cc.access_summary("LoopBody", AnalysisMode::For).unwrap());
        assert!(cc.access_summary("Missing", AnalysisMode::For).is_err());
    }
}
