//! # concord-runtime
//!
//! The Concord runtime (§3): compiles a kernel-language program once,
//! holds the shared virtual memory region, and dispatches
//! `parallel_for_hetero` / `parallel_reduce_hetero` calls to the CPU or
//! GPU simulator — with JIT caching of GPU binaries (§3.4), memory
//! consistency fences at offload boundaries (§2.3), CPU fallback for
//! kernels that violate GPU restrictions (§2.1), and package-energy
//! accounting (§5.1).
//!
//! ## Example
//!
//! ```
//! use concord_runtime::{Concord, Options, Target};
//!
//! # fn main() -> Result<(), concord_runtime::RuntimeError> {
//! let src = r#"
//!     struct Node { Node* next; };
//!     class LoopBody {
//!     public:
//!         Node* nodes;
//!         void operator()(int i) { nodes[i].next = &(nodes[i+1]); }
//!     };
//! "#;
//! let mut cc = Concord::new(concord_energy::SystemConfig::ultrabook(), src, Options::default())?;
//! let nodes = cc.malloc(101 * 8)?;
//! let body = cc.malloc(8)?;
//! cc.region_mut().write_ptr(body, nodes)?;
//! let report = cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu)?;
//! assert!(report.total_seconds() > 0.0);
//! # Ok(())
//! # }
//! ```

use concord_compiler::{lower_for_gpu_traced, GpuArtifact, GpuConfig};
use concord_cpusim::CpuSim;
use concord_energy::{Device, EnergyMeter, PhaseReport, SystemConfig};
use concord_frontend::{CompileError, LoweredProgram};
use concord_gpusim::GpuSim;
use concord_ir::eval::{Trap, Value};
use concord_ir::types::AddrSpace;
use concord_ir::FuncId;
use concord_svm::{AllocError, CpuAddr, SharedAllocator, SharedRegion, VtableArea};
use concord_trace::{TraceConfig, Tracer, Track};
use std::collections::HashSet;
use std::fmt;

/// Any error the runtime can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Kernel-language compilation failed.
    Compile(CompileError),
    /// Shared-region allocation failed.
    Alloc(AllocError),
    /// A kernel trapped at runtime.
    Trap(Trap),
    /// The named kernel class does not exist.
    NoSuchKernel(String),
    /// `parallel_reduce_hetero` on a class without a `join` method.
    NoJoin(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "{e}"),
            RuntimeError::Alloc(e) => write!(f, "{e}"),
            RuntimeError::Trap(t) => write!(f, "kernel trapped: {t}"),
            RuntimeError::NoSuchKernel(n) => write!(f, "no kernel class named `{n}`"),
            RuntimeError::NoJoin(n) => {
                write!(f, "class `{n}` has no join method for parallel_reduce")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Compile(e)
    }
}

impl From<AllocError> for RuntimeError {
    fn from(e: AllocError) -> Self {
        RuntimeError::Alloc(e)
    }
}

impl From<Trap> for RuntimeError {
    fn from(t: Trap) -> Self {
        RuntimeError::Trap(t)
    }
}

/// Requested execution device — the third argument of
/// `parallel_for_hetero(n, body, on_CPU)` in the paper's API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Run on the multicore CPU.
    Cpu,
    /// Run on the integrated GPU (falls back to CPU when the kernel
    /// violates a GPU restriction, with a warning — §2.1).
    Gpu,
}

/// Runtime construction options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Shared-region capacity in bytes.
    pub region_bytes: u64,
    /// GPU compilation configuration (which of the paper's four evaluated
    /// configurations to use).
    pub gpu_config: Option<GpuConfig>,
    /// Tracing configuration (disabled by default; see [`concord_trace`]).
    pub trace: TraceConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options { region_bytes: 64 << 20, gpu_config: None, trace: TraceConfig::default() }
    }
}

/// Result of one heterogeneous construct invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct OffloadReport {
    /// Seconds spent JIT-compiling the GPU binary for this construct
    /// (non-zero only on the first GPU launch of a kernel, §3.4).
    pub jit_seconds: f64,
    /// Seconds spent executing the construct (fences, launch, kernel, and
    /// for GPU reductions the host-side final join).
    pub exec_seconds: f64,
    /// Package energy in joules for the construct.
    pub joules: f64,
    /// True when the construct actually ran on the GPU.
    pub on_gpu: bool,
    /// True when a GPU request fell back to the CPU (restriction).
    pub fell_back: bool,
    /// Executed pointer translations (GPU only).
    pub translations: u64,
    /// Shared-memory transactions (GPU only).
    pub transactions: u64,
    /// Contended transactions (GPU only).
    pub contended: u64,
    /// GPU EU issue occupancy (GPU only).
    pub busy_fraction: f64,
    /// GPU L3 hit rate (GPU only).
    pub l3_hit_rate: f64,
    /// Instructions executed (device-level).
    pub insts: u64,
}

impl OffloadReport {
    /// Total wall-clock seconds for the construct: JIT plus execution.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.jit_seconds + self.exec_seconds
    }
}

/// The Concord runtime context.
pub struct Concord {
    system: SystemConfig,
    program: LoweredProgram,
    gpu_artifact: GpuArtifact,
    region: SharedRegion,
    heap: SharedAllocator,
    vtables: VtableArea,
    cpu: CpuSim,
    gpu: GpuSim,
    meter: EnergyMeter,
    jitted: HashSet<FuncId>,
    /// Kernels that cannot run on the GPU (restriction warnings).
    cpu_only: HashSet<String>,
    tracer: Tracer,
}

impl std::fmt::Debug for Concord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Concord")
            .field("system", &self.system.name)
            .field("kernels", &self.program.kernels.len())
            .field("region_bytes", &self.region.capacity())
            .field("energy_joules", &self.meter.joules())
            .finish_non_exhaustive()
    }
}

impl Concord {
    /// Compile `source` and set up the shared region, vtables, and both
    /// device simulators for `system`.
    ///
    /// # Errors
    ///
    /// Compilation errors and vtable installation faults.
    pub fn new(system: SystemConfig, source: &str, opts: Options) -> Result<Self, RuntimeError> {
        let tracer = Tracer::new(opts.trace);
        let sp = tracer.span(Track::Compiler, "frontend");
        let mut program = concord_frontend::compile(source)?;
        sp.end();
        let gpu_cfg = opts.gpu_config.unwrap_or(GpuConfig::all(system.gpu.eus));
        let gpu_artifact = lower_for_gpu_traced(&program.module, gpu_cfg, &tracer);
        concord_compiler::optimize_for_cpu_traced(&mut program.module, &tracer);
        let reserved = VtableArea::reserve_for(program.module.classes.len());
        let mut region = SharedRegion::new(opts.region_bytes, reserved);
        region.set_tracer(tracer.clone());
        let mut heap = SharedAllocator::new(&region);
        heap.set_tracer(tracer.clone());
        let vtables = VtableArea::install(&mut region, &program.module)?;
        // The frontend emits one warning per affected kernel root; map each
        // back to its kernel class conservatively (a warning anywhere marks
        // every kernel that can reach the offending function — the frontend
        // already scoped the check to kernel closures).
        let cpu_only: HashSet<String> = if program.warnings.is_empty() {
            HashSet::new()
        } else {
            program.kernels.iter().map(|k| k.class_name.clone()).collect()
        };
        let mut cpu = CpuSim::new(system.cpu);
        cpu.set_tracer(tracer.clone());
        let mut gpu = GpuSim::new(system.gpu);
        gpu.set_tracer(tracer.clone());
        Ok(Concord {
            cpu,
            gpu,
            system,
            program,
            gpu_artifact,
            region,
            heap,
            vtables,
            meter: EnergyMeter::new(),
            jitted: HashSet::new(),
            cpu_only,
            tracer,
        })
    }

    /// The tracer shared by the runtime, compiler pipelines, and both
    /// simulators. Disabled (and free) unless [`Options::trace`] enabled it;
    /// use it to pull the collected events, Chrome JSON, or summary table.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The compiled program (kernels, signatures, source statistics).
    pub fn program(&self) -> &LoweredProgram {
        &self.program
    }

    /// The GPU-lowered artifact (module + pipeline statistics).
    pub fn gpu_artifact(&self) -> &GpuArtifact {
        &self.gpu_artifact
    }

    /// The system configuration.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// Shared-region access.
    pub fn region(&self) -> &SharedRegion {
        &self.region
    }

    /// Mutable shared-region access (host-side data structure building).
    pub fn region_mut(&mut self) -> &mut SharedRegion {
        &mut self.region
    }

    /// Allocate in the shared region (the `malloc` redirection of §3.1).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Alloc`] when the region is exhausted.
    pub fn malloc(&mut self, bytes: u64) -> Result<CpuAddr, RuntimeError> {
        Ok(self.heap.malloc(bytes)?)
    }

    /// Free a shared allocation.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Alloc`] on invalid frees.
    pub fn free(&mut self, addr: CpuAddr) -> Result<(), RuntimeError> {
        Ok(self.heap.free(addr)?)
    }

    /// Total package energy accumulated so far (the
    /// `MSR_PKG_ENERGY_STATUS` reading).
    pub fn energy_joules(&self) -> f64 {
        self.meter.joules()
    }

    /// Enable device-side allocation (`device_malloc` in kernel code) by
    /// carving a `bytes`-sized arena out of the shared region. Lifts the
    /// §2.1 "no memory allocation on GPU" restriction the paper plans as
    /// future work. Without this call, `device_malloc` returns null.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Alloc`] when the region cannot fit the arena.
    pub fn enable_device_heap(&mut self, bytes: u64) -> Result<(), RuntimeError> {
        let arena = self.heap.malloc(bytes)?;
        self.region.init_device_heap(arena, bytes)?;
        Ok(())
    }

    fn kernel(&self, class: &str) -> Result<concord_frontend::KernelInfo, RuntimeError> {
        self.program
            .kernel(class)
            .cloned()
            .ok_or_else(|| RuntimeError::NoSuchKernel(class.to_string()))
    }

    fn gpu_func(&self, cpu_fn: FuncId) -> FuncId {
        // Function ids are stable across the clone taken by lower_for_gpu.
        cpu_fn
    }

    /// `parallel_for_hetero(n, body, device)`: run the `operator()` of
    /// `class` over `[0, n)`.
    ///
    /// # Errors
    ///
    /// Unknown kernel class, or a runtime trap.
    pub fn parallel_for_hetero(
        &mut self,
        class: &str,
        body: CpuAddr,
        n: u32,
        target: Target,
    ) -> Result<OffloadReport, RuntimeError> {
        let k = self.kernel(class)?;
        let use_gpu = target == Target::Gpu && !self.cpu_only.contains(class);
        let fell_back = target == Target::Gpu && !use_gpu;
        let mut sp = self.tracer.span_with(
            Track::Runtime,
            "parallel_for",
            vec![
                ("kernel", class.into()),
                ("n", i64::from(n).into()),
                ("device", if use_gpu { "gpu" } else { "cpu" }.into()),
            ],
        );
        if use_gpu {
            // Offload start: CPU→GPU consistency fence + pinning (§2.3).
            {
                let _f = self.tracer.span(Track::Runtime, "fence_to_gpu");
                self.region.fence_to_gpu();
            }
            let gpu_fn = self.gpu_func(k.operator_fn);
            let mut jit_seconds = 0.0;
            if self.jitted.insert(gpu_fn) {
                jit_seconds = self.system.gpu.jit_ms * 1e-3;
                let mut j = self.tracer.span(Track::Runtime, "jit");
                j.arg("kernel", class);
                j.arg("seconds", jit_seconds);
            }
            let launch = self.tracer.span(Track::Runtime, "gpu_launch");
            let r = self
                .gpu
                .parallel_for(&mut self.region, &self.gpu_artifact.module, gpu_fn, body, n)
                .map_err(RuntimeError::Trap)?;
            Self::close_launch_span(launch, &r);
            {
                let _f = self.tracer.span(Track::Runtime, "fence_to_cpu");
                self.region.fence_to_cpu();
            }
            let phase =
                PhaseReport { seconds: r.seconds + jit_seconds, busy_fraction: r.busy_fraction };
            let before = self.meter.joules();
            self.meter.record(&self.system, Device::Gpu, phase);
            sp.arg("seconds", phase.seconds);
            Ok(OffloadReport {
                jit_seconds,
                exec_seconds: r.seconds,
                joules: self.meter.joules() - before,
                on_gpu: true,
                fell_back: false,
                translations: r.translations,
                transactions: r.transactions,
                contended: r.contended,
                busy_fraction: r.busy_fraction,
                l3_hit_rate: r.l3_hit_rate,
                insts: r.insts,
            })
        } else {
            let launch = self.tracer.span(Track::Runtime, "cpu_launch");
            let r = self
                .cpu
                .parallel_for(
                    &mut self.region,
                    &self.vtables,
                    &self.program.module,
                    k.operator_fn,
                    body,
                    n,
                )
                .map_err(RuntimeError::Trap)?;
            launch.end();
            let phase = PhaseReport { seconds: r.seconds, busy_fraction: 1.0 };
            let before = self.meter.joules();
            self.meter.record(&self.system, Device::Cpu, phase);
            sp.arg("seconds", r.seconds);
            Ok(OffloadReport {
                jit_seconds: 0.0,
                exec_seconds: r.seconds,
                joules: self.meter.joules() - before,
                on_gpu: false,
                fell_back,
                insts: r.counters.insts,
                ..Default::default()
            })
        }
    }

    /// Close a GPU launch span, attaching the launch's [`GpuReport`]
    /// counters as end-arguments.
    fn close_launch_span(mut sp: concord_trace::SpanGuard, r: &concord_gpusim::GpuReport) {
        sp.arg("seconds", r.seconds);
        sp.arg("critical_cycles", r.critical_cycles);
        sp.arg("warps", r.warps);
        sp.arg("insts", r.insts);
        sp.arg("translations", r.translations);
        sp.arg("transactions", r.transactions);
        sp.arg("contended", r.contended);
        sp.arg("l3_hit_rate", r.l3_hit_rate);
        sp.arg("busy_fraction", r.busy_fraction);
    }

    /// `parallel_reduce_hetero(n, body, device)`: run `operator()` over
    /// `[0, n)` accumulating into per-worker copies, then combine with
    /// `join` (hierarchically through GPU local memory when on the GPU,
    /// §3.3).
    ///
    /// # Errors
    ///
    /// Unknown kernel class, missing `join`, or a runtime trap.
    pub fn parallel_reduce_hetero(
        &mut self,
        class: &str,
        body: CpuAddr,
        n: u32,
        target: Target,
    ) -> Result<OffloadReport, RuntimeError> {
        let k = self.kernel(class)?;
        let join = k.join_fn.ok_or_else(|| RuntimeError::NoJoin(class.to_string()))?;
        let body_size = k.body_size;
        // Local memory must fit one body copy per lane; otherwise the
        // runtime performs the reduction sequentially on the CPU (§3.3:
        // "if local memory is insufficient").
        let fits_local =
            body_size * self.system.gpu.simd_width as u64 <= self.system.gpu.local_bytes;
        let use_gpu = target == Target::Gpu && !self.cpu_only.contains(class) && fits_local;
        let fell_back = target == Target::Gpu && !use_gpu;
        let mut sp = self.tracer.span_with(
            Track::Runtime,
            "parallel_reduce",
            vec![
                ("kernel", class.into()),
                ("n", i64::from(n).into()),
                ("device", if use_gpu { "gpu" } else { "cpu" }.into()),
            ],
        );
        if use_gpu {
            {
                let _f = self.tracer.span(Track::Runtime, "fence_to_gpu");
                self.region.fence_to_gpu();
            }
            let gpu_fn = self.gpu_func(k.operator_fn);
            let gpu_join = self.gpu_func(join);
            let mut jit_seconds = 0.0;
            if self.jitted.insert(gpu_fn) {
                jit_seconds = self.system.gpu.jit_ms * 1e-3;
                let mut j = self.tracer.span(Track::Runtime, "jit");
                j.arg("kernel", class);
                j.arg("seconds", jit_seconds);
            }
            let warps = (n as u64).div_ceil(self.system.gpu.simd_width as u64);
            let scratch: Vec<CpuAddr> =
                (0..warps).map(|_| self.heap.malloc(body_size)).collect::<Result<_, _>>()?;
            let launch = self.tracer.span(Track::Runtime, "gpu_launch");
            let r = self
                .gpu
                .parallel_reduce(
                    &mut self.region,
                    &self.gpu_artifact.module,
                    gpu_fn,
                    gpu_join,
                    body,
                    body_size,
                    n,
                    &scratch,
                )
                .map_err(RuntimeError::Trap)?;
            Self::close_launch_span(launch, &r);
            {
                let _f = self.tracer.span(Track::Runtime, "fence_to_cpu");
                self.region.fence_to_cpu();
            }
            // Host-side final join of the per-warp partials (sequential,
            // using the original CPU-compiled join).
            let mut join_sp = self.tracer.span(Track::Runtime, "reduce_join");
            join_sp.arg("partials", warps as i64);
            let host_cycles_before = self.cpu.core0_cycles();
            for &slot in &scratch {
                self.cpu
                    .call(
                        &mut self.region,
                        &self.vtables,
                        &self.program.module,
                        join,
                        &[Value::Ptr(body.0, AddrSpace::Cpu), Value::Ptr(slot.0, AddrSpace::Cpu)],
                    )
                    .map_err(RuntimeError::Trap)?;
            }
            let host_seconds =
                (self.cpu.core0_cycles() - host_cycles_before) / (self.system.cpu.freq_ghz * 1e9);
            join_sp.arg("seconds", host_seconds);
            join_sp.end();
            for slot in scratch {
                self.heap.free(slot)?;
            }
            let gpu_phase =
                PhaseReport { seconds: r.seconds + jit_seconds, busy_fraction: r.busy_fraction };
            let host_phase = PhaseReport {
                seconds: host_seconds,
                busy_fraction: 1.0 / self.system.cpu.cores as f64,
            };
            let before = self.meter.joules();
            self.meter.record(&self.system, Device::Gpu, gpu_phase);
            self.meter.record(&self.system, Device::Cpu, host_phase);
            sp.arg("seconds", gpu_phase.seconds + host_seconds);
            Ok(OffloadReport {
                jit_seconds,
                exec_seconds: r.seconds + host_seconds,
                joules: self.meter.joules() - before,
                on_gpu: true,
                fell_back: false,
                translations: r.translations,
                transactions: r.transactions,
                contended: r.contended,
                busy_fraction: r.busy_fraction,
                l3_hit_rate: r.l3_hit_rate,
                insts: r.insts,
            })
        } else {
            let cores = self.system.cpu.cores as usize;
            let scratch: Vec<CpuAddr> =
                (0..cores).map(|_| self.heap.malloc(body_size)).collect::<Result<_, _>>()?;
            let launch = self.tracer.span(Track::Runtime, "cpu_launch");
            let r = self
                .cpu
                .parallel_reduce(
                    &mut self.region,
                    &self.vtables,
                    &self.program.module,
                    k.operator_fn,
                    join,
                    body,
                    body_size,
                    n,
                    &scratch,
                )
                .map_err(RuntimeError::Trap)?;
            launch.end();
            for slot in scratch {
                self.heap.free(slot)?;
            }
            let phase = PhaseReport { seconds: r.seconds, busy_fraction: 1.0 };
            let before = self.meter.joules();
            self.meter.record(&self.system, Device::Cpu, phase);
            sp.arg("seconds", r.seconds);
            Ok(OffloadReport {
                jit_seconds: 0.0,
                exec_seconds: r.seconds,
                joules: self.meter.joules() - before,
                on_gpu: false,
                fell_back,
                insts: r.counters.insts,
                ..Default::default()
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = r#"
        struct Node { Node* next; };
        class LoopBody {
        public:
            Node* nodes;
            void operator()(int i) { nodes[i].next = &(nodes[i+1]); }
        };
    "#;

    #[test]
    fn same_source_runs_on_both_devices() {
        for target in [Target::Cpu, Target::Gpu] {
            let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
            let nodes = cc.malloc(101 * 8).unwrap();
            let body = cc.malloc(8).unwrap();
            cc.region_mut().write_ptr(body, nodes).unwrap();
            let r = cc.parallel_for_hetero("LoopBody", body, 100, target).unwrap();
            assert_eq!(r.on_gpu, target == Target::Gpu);
            for i in 0..100u64 {
                let next = cc.region().read_ptr(CpuAddr(nodes.0 + i * 8)).unwrap();
                assert_eq!(next.0, nodes.0 + (i + 1) * 8);
            }
            assert!(r.joules > 0.0);
        }
    }

    #[test]
    fn jit_cost_charged_once() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        let first = cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        let second = cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        let jit = SystemConfig::ultrabook().gpu.jit_ms * 1e-3;
        assert!(
            (first.jit_seconds - jit).abs() < jit * 1e-9,
            "first launch must report the JIT cost, got {}",
            first.jit_seconds
        );
        assert_eq!(second.jit_seconds, 0.0, "JIT must be cached after the first launch");
        assert!(
            first.total_seconds() > second.total_seconds() + jit * 0.9,
            "first launch must include the JIT cost: {} vs {}",
            first.total_seconds(),
            second.total_seconds()
        );
    }

    #[test]
    fn fences_wrap_offloads() {
        let mut cc = Concord::new(SystemConfig::desktop(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        let c = cc.region().consistency();
        assert_eq!(c.fences_to_gpu, 1);
        assert_eq!(c.fences_to_cpu, 1);
        assert!(!c.pinned);
        // CPU execution does not fence.
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Cpu).unwrap();
        assert_eq!(cc.region().consistency().fences_to_gpu, 1);
    }

    #[test]
    fn recursive_kernel_falls_back_to_cpu() {
        let src = r#"
            int f(int n) { if (n < 2) return 1; return n * f(n - 1) + f(n - 2); }
            class K {
            public:
                int out;
                void operator()(int i) { out = f(i); }
            };
        "#;
        let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
        assert!(!cc.program().warnings.is_empty());
        let body = cc.malloc(8).unwrap();
        let r = cc.parallel_for_hetero("K", body, 4, Target::Gpu).unwrap();
        assert!(r.fell_back);
        assert!(!r.on_gpu);
    }

    #[test]
    fn reduce_on_both_devices_agrees() {
        let src = r#"
            class Sum {
            public:
                float* data; float acc;
                void operator()(int i) { acc += data[i]; }
                void join(Sum* other) { acc += other->acc; }
            };
        "#;
        let mut results = Vec::new();
        for target in [Target::Cpu, Target::Gpu] {
            let mut cc = Concord::new(SystemConfig::desktop(), src, Options::default()).unwrap();
            let n = 200u32;
            let data = cc.malloc(n as u64 * 4).unwrap();
            for i in 0..n {
                cc.region_mut().write_f32(CpuAddr(data.0 + i as u64 * 4), (i % 7) as f32).unwrap();
            }
            let body = cc.malloc(16).unwrap();
            cc.region_mut().write_ptr(body, data).unwrap();
            cc.region_mut().write_f32(body.offset(8), 0.0).unwrap();
            cc.parallel_reduce_hetero("Sum", body, n, target).unwrap();
            results.push(cc.region().read_f32(body.offset(8)).unwrap());
        }
        assert_eq!(results[0], results[1], "CPU and GPU reductions must agree");
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let body = cc.malloc(8).unwrap();
        let err = cc.parallel_for_hetero("Nope", body, 1, Target::Cpu).unwrap_err();
        assert!(matches!(err, RuntimeError::NoSuchKernel(_)));
    }

    #[test]
    fn reduce_without_join_is_an_error() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let body = cc.malloc(8).unwrap();
        let err = cc.parallel_reduce_hetero("LoopBody", body, 1, Target::Cpu).unwrap_err();
        assert!(matches!(err, RuntimeError::NoJoin(_)));
    }

    #[test]
    fn reduce_falls_back_when_body_exceeds_local_memory() {
        // 16 lanes × body_size must fit in 64 KiB of local memory; a body
        // with a giant inline array cannot, so the runtime must run the
        // reduction on the CPU instead (§3.3 "if local memory is
        // insufficient").
        let src = r#"
            class Big {
            public:
                float* data;
                float pad[1200];
                float acc;
                void operator()(int i) { acc += data[i]; }
                void join(Big* other) { acc += other->acc; }
            };
        "#;
        let mut cc = Concord::new(SystemConfig::ultrabook(), src, Options::default()).unwrap();
        let k = cc.program().kernel("Big").unwrap().body_size;
        assert!(k * 16 > SystemConfig::ultrabook().gpu.local_bytes);
        let n = 32u32;
        let data = cc.malloc(n as u64 * 4).unwrap();
        for i in 0..n {
            cc.region_mut().write_f32(CpuAddr(data.0 + i as u64 * 4), 2.0).unwrap();
        }
        let body = cc.malloc(k).unwrap();
        cc.region_mut().write_ptr(body, data).unwrap();
        let r = cc.parallel_reduce_hetero("Big", body, n, Target::Gpu).unwrap();
        assert!(r.fell_back, "oversized reduce body must fall back to CPU");
        assert!(!r.on_gpu);
        let acc = cc.region().read_f32(body.offset(8 + 1200 * 4)).unwrap();
        assert_eq!(acc, 64.0);
    }

    #[test]
    fn energy_meter_accumulates_across_offloads() {
        let mut cc = Concord::new(SystemConfig::ultrabook(), FIG1, Options::default()).unwrap();
        let nodes = cc.malloc(101 * 8).unwrap();
        let body = cc.malloc(8).unwrap();
        cc.region_mut().write_ptr(body, nodes).unwrap();
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Cpu).unwrap();
        let e1 = cc.energy_joules();
        cc.parallel_for_hetero("LoopBody", body, 100, Target::Gpu).unwrap();
        assert!(cc.energy_joules() > e1);
    }
}
