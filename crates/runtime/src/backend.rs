//! The execution-device abstraction behind the runtime's generic offload
//! path.
//!
//! [`DeviceBackend`] is what a device must provide for the runtime to run
//! `parallel_for_hetero` / `parallel_reduce_hetero` on it: consistency
//! fences, one-time kernel preparation (JIT), a ranged `launch_for`, and a
//! partials-producing `launch_reduce`. [`CpuBackend`] and [`GpuBackend`]
//! wrap the two simulators; the runtime drives either — or both, for a
//! hybrid split — through the same code path, so fence/JIT/metering logic
//! exists exactly once.

use concord_cpusim::{CpuPending, CpuSim};
use concord_energy::{Device, SystemConfig};
use concord_gpusim::{GpuPending, GpuSim};
use concord_ir::eval::{Trap, Value};
use concord_ir::types::AddrSpace;
use concord_ir::{FuncId, Module};
use concord_svm::{AllocError, CpuAddr, SharedAllocator, SharedRegion, VtableArea};
use concord_trace::{SpanGuard, Tracer, Track};
use std::sync::Arc;

/// A contiguous sub-range `[lo, hi)` of a construct's `[0, grid)`
/// iteration space. A full (unsplit) launch is `Span::full(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First work-item id (inclusive).
    pub lo: u32,
    /// Last work-item id (exclusive).
    pub hi: u32,
    /// Total size of the construct's iteration space.
    pub grid: u32,
}

impl Span {
    /// The whole iteration space `[0, n)`.
    #[must_use]
    pub fn full(n: u32) -> Self {
        Span { lo: 0, hi: n, grid: n }
    }

    /// Work items in this sub-range.
    #[must_use]
    pub fn items(&self) -> u32 {
        self.hi - self.lo
    }
}

/// Borrowed execution state a backend needs for one launch: the shared
/// region, vtables, both compiled modules, the platform description, and
/// the tracer.
pub struct ExecCtx<'a> {
    /// Shared virtual memory region.
    pub region: &'a mut SharedRegion,
    /// Installed vtables (CPU dispatch).
    pub vtables: &'a VtableArea,
    /// The CPU-optimized module.
    pub cpu_module: &'a Module,
    /// The GPU-lowered module. Function ids are stable across the lowering
    /// clone, so the same [`FuncId`] names the kernel in both modules.
    pub gpu_module: &'a Module,
    /// Platform parameters (clocks, power, JIT cost).
    pub system: &'a SystemConfig,
    /// Trace sink.
    pub tracer: &'a Tracer,
}

/// Device-independent counters from one launch, the common denominator of
/// [`concord_cpusim::CpuReport`] and [`concord_gpusim::GpuReport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchStats {
    /// Wall-clock seconds of the launch (no JIT, no host-side joins).
    pub seconds: f64,
    /// Device busy fraction: EU issue occupancy on the GPU, 1.0 on the CPU.
    pub busy_fraction: f64,
    /// Instructions executed.
    pub insts: u64,
    /// Executed pointer translations.
    pub translations: u64,
    /// Shared-memory transactions (GPU only).
    pub transactions: u64,
    /// Contended transactions (GPU only).
    pub contended: u64,
    /// L3 hit rate (GPU only).
    pub l3_hit_rate: f64,
}

/// An execution device the runtime can offload heterogeneous constructs
/// to. Implementations wrap a simulator; the runtime supplies everything
/// else through [`ExecCtx`].
pub trait DeviceBackend {
    /// Which energy-model device this backend meters as.
    fn device(&self) -> Device;

    /// Short label for traces ("cpu" / "gpu").
    fn label(&self) -> &'static str;

    /// Memory-consistency fence before this device touches the shared
    /// region (§2.3). No-op on the CPU; pins the region on the GPU.
    fn fence_in(&mut self, ctx: &mut ExecCtx<'_>);

    /// Memory-consistency fence after the device is done (unpin).
    fn fence_out(&mut self, ctx: &mut ExecCtx<'_>);

    /// One-time per-kernel preparation; returns the seconds charged.
    /// The GPU JIT-compiles the kernel on its first launch (§3.4) and
    /// caches it afterwards; the CPU runs pre-compiled code for free.
    fn prepare(&mut self, ctx: &mut ExecCtx<'_>, class: &str, func: FuncId) -> f64;

    /// How many body-sized partial-accumulator slots `launch_reduce`
    /// needs for `span` (per-warp on the GPU, per-core on the CPU).
    fn reduce_slots(&self, ctx: &ExecCtx<'_>, span: Span) -> u64;

    /// Run `func(body, i)` for every `i` in `span`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised by the kernel.
    fn launch_for(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
    ) -> Result<LaunchStats, Trap>;

    /// Run one round of `parallel_worklist_hetero`: `func(body,
    /// items[i - span.lo])` for every `i` in `span`, appending `push`ed
    /// items to `pushes` in the backend's fixed commit order. The runtime
    /// merges the per-span segments into the next frontier by sorting and
    /// deduplicating, so the frontier is identical on every backend at
    /// any host-thread count.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised by the kernel; a trap discards the round's
    /// pushes.
    fn launch_worklist(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
        items: &[i32],
        pushes: &mut Vec<i32>,
    ) -> Result<LaunchStats, Trap>;

    /// Accumulate `span` into per-worker copies of `body`, leaving one
    /// partial per `scratch` slot. Device-level joins only (the GPU
    /// tree-reduces through local memory per warp, §3.3); the runtime
    /// joins the partials into `body` afterwards — which is what lets a
    /// hybrid split join partials from both devices with the same kernel
    /// `join`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised by the kernel or device-level joins.
    #[allow(clippy::too_many_arguments)]
    fn launch_reduce(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        join: FuncId,
        body: CpuAddr,
        body_size: u64,
        span: Span,
        scratch: &[CpuAddr],
    ) -> Result<LaunchStats, Trap>;
}

/// Attach launch counters to the closing launch span.
fn close_launch_span(mut sp: SpanGuard, span: Span, s: &LaunchStats) {
    sp.arg("lo", i64::from(span.lo));
    sp.arg("hi", i64::from(span.hi));
    sp.arg("seconds", s.seconds);
    sp.arg("insts", s.insts);
    sp.arg("translations", s.translations);
    sp.arg("transactions", s.transactions);
    sp.arg("contended", s.contended);
    sp.arg("l3_hit_rate", s.l3_hit_rate);
    sp.arg("busy_fraction", s.busy_fraction);
}

/// The multicore-CPU backend: wraps [`CpuSim`].
pub struct CpuBackend {
    sim: CpuSim,
}

impl CpuBackend {
    pub(crate) fn new(sim: CpuSim) -> Self {
        CpuBackend { sim }
    }

    /// The wrapped simulator (concurrent-execute phase of a hybrid split).
    pub(crate) fn sim(&self) -> &CpuSim {
        &self.sim
    }

    /// Mutable simulator access for the concurrent-execute phase.
    pub(crate) fn sim_mut(&mut self) -> &mut CpuSim {
        &mut self.sim
    }

    /// Commit a concurrently-executed pending launch in plan order and
    /// build its stats — the second half of `launch_for`/`launch_reduce`
    /// when the execute phase ran overlapped with another device.
    ///
    /// # Errors
    ///
    /// The trap of the lowest trapped chunk, if any.
    pub(crate) fn commit_pending(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        what: &'static str,
        span: Span,
        pending: CpuPending,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "cpu_launch");
        self.sim.commit(ctx.region, pending)?;
        let r = self.sim.finish_launch(what);
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: 1.0,
            insts: r.counters.insts,
            translations: r.counters.translations,
            ..Default::default()
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }

    /// Sequentially join `slots` into `body` on core 0 with the
    /// CPU-compiled `join` — the host-side final join of a reduction.
    /// Returns the host seconds spent.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised by `join`.
    pub fn join_partials(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        join: FuncId,
        body: CpuAddr,
        slots: &[CpuAddr],
    ) -> Result<f64, Trap> {
        let mut sp = ctx.tracer.span(Track::Runtime, "reduce_join");
        sp.arg("partials", slots.len() as i64);
        let before = self.sim.core0_cycles();
        for &slot in slots {
            self.sim.call(
                ctx.region,
                ctx.vtables,
                ctx.cpu_module,
                join,
                &[Value::Ptr(body.0, AddrSpace::Cpu), Value::Ptr(slot.0, AddrSpace::Cpu)],
            )?;
        }
        let seconds = (self.sim.core0_cycles() - before) / (ctx.system.cpu.freq_ghz * 1e9);
        sp.arg("seconds", seconds);
        Ok(seconds)
    }
}

impl DeviceBackend for CpuBackend {
    fn device(&self) -> Device {
        Device::Cpu
    }

    fn label(&self) -> &'static str {
        "cpu"
    }

    fn fence_in(&mut self, _ctx: &mut ExecCtx<'_>) {}

    fn fence_out(&mut self, _ctx: &mut ExecCtx<'_>) {}

    fn prepare(&mut self, _ctx: &mut ExecCtx<'_>, _class: &str, _func: FuncId) -> f64 {
        0.0
    }

    fn reduce_slots(&self, ctx: &ExecCtx<'_>, _span: Span) -> u64 {
        u64::from(ctx.system.cpu.cores.max(1))
    }

    fn launch_for(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "cpu_launch");
        let r = self.sim.parallel_for_span(
            ctx.region,
            ctx.vtables,
            ctx.cpu_module,
            func,
            body,
            span.lo,
            span.hi,
            span.grid,
        )?;
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: 1.0,
            insts: r.counters.insts,
            translations: r.counters.translations,
            ..Default::default()
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }

    fn launch_worklist(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
        items: &[i32],
        pushes: &mut Vec<i32>,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "cpu_launch");
        let r = self.sim.parallel_worklist_span(
            ctx.region,
            ctx.vtables,
            ctx.cpu_module,
            func,
            body,
            span.lo,
            span.hi,
            span.grid,
            items,
            pushes,
        )?;
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: 1.0,
            insts: r.counters.insts,
            translations: r.counters.translations,
            ..Default::default()
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }

    fn launch_reduce(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        _join: FuncId,
        body: CpuAddr,
        body_size: u64,
        span: Span,
        scratch: &[CpuAddr],
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "cpu_launch");
        let r = self.sim.parallel_reduce_partials(
            ctx.region,
            ctx.vtables,
            ctx.cpu_module,
            func,
            body,
            body_size,
            span.lo,
            span.hi,
            span.grid,
            scratch,
        )?;
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: 1.0,
            insts: r.counters.insts,
            translations: r.counters.translations,
            ..Default::default()
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }
}

/// The integrated-GPU backend: wraps [`GpuSim`] plus the per-kernel JIT
/// cache (§3.4). The JIT-charge set is behind an `Arc` so sessions built
/// through [`crate::ArtifactCache`] share one set process-wide — a kernel
/// JITted by any such session is free for all of them.
pub struct GpuBackend {
    sim: GpuSim,
    jitted: crate::SharedJitSet,
}

impl GpuBackend {
    pub(crate) fn new(sim: GpuSim, jitted: crate::SharedJitSet) -> Self {
        GpuBackend { sim, jitted }
    }

    /// The wrapped simulator (concurrent-execute phase of a hybrid split).
    pub(crate) fn sim(&self) -> &GpuSim {
        &self.sim
    }

    /// Commit a concurrently-executed pending launch in plan order and
    /// build its stats (see [`CpuBackend::commit_pending`]).
    ///
    /// # Errors
    ///
    /// The trap of the lowest trapped warp, if any.
    pub(crate) fn commit_pending(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        span: Span,
        pending: GpuPending,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "gpu_launch");
        let r = self.sim.commit(ctx.region, pending)?;
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: r.busy_fraction,
            insts: r.insts,
            translations: r.translations,
            transactions: r.transactions,
            contended: r.contended,
            l3_hit_rate: r.l3_hit_rate,
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }
}

impl DeviceBackend for GpuBackend {
    fn device(&self) -> Device {
        Device::Gpu
    }

    fn label(&self) -> &'static str {
        "gpu"
    }

    fn fence_in(&mut self, ctx: &mut ExecCtx<'_>) {
        let _f = ctx.tracer.span(Track::Runtime, "fence_to_gpu");
        ctx.region.fence_to_gpu();
    }

    fn fence_out(&mut self, ctx: &mut ExecCtx<'_>) {
        let _f = ctx.tracer.span(Track::Runtime, "fence_to_cpu");
        ctx.region.fence_to_cpu();
    }

    fn prepare(&mut self, ctx: &mut ExecCtx<'_>, class: &str, func: FuncId) -> f64 {
        if !self.jitted.lock().unwrap().insert(func) {
            return 0.0;
        }
        let jit_seconds = ctx.system.gpu.jit_ms * 1e-3;
        let mut j = ctx.tracer.span(Track::Runtime, "jit");
        j.arg("kernel", class);
        j.arg("seconds", jit_seconds);
        jit_seconds
    }

    fn reduce_slots(&self, ctx: &ExecCtx<'_>, span: Span) -> u64 {
        u64::from(span.items()).div_ceil(u64::from(ctx.system.gpu.simd_width))
    }

    fn launch_for(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "gpu_launch");
        let r = self.sim.parallel_for_span(
            ctx.region,
            ctx.gpu_module,
            func,
            body,
            span.lo,
            span.hi,
            span.grid,
        )?;
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: r.busy_fraction,
            insts: r.insts,
            translations: r.translations,
            transactions: r.transactions,
            contended: r.contended,
            l3_hit_rate: r.l3_hit_rate,
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }

    fn launch_worklist(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
        items: &[i32],
        pushes: &mut Vec<i32>,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "gpu_launch");
        let r = self.sim.parallel_worklist_span(
            ctx.region,
            ctx.gpu_module,
            func,
            body,
            span.lo,
            span.hi,
            span.grid,
            items,
            pushes,
        )?;
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: r.busy_fraction,
            insts: r.insts,
            translations: r.translations,
            transactions: r.transactions,
            contended: r.contended,
            l3_hit_rate: r.l3_hit_rate,
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }

    fn launch_reduce(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        join: FuncId,
        body: CpuAddr,
        body_size: u64,
        span: Span,
        scratch: &[CpuAddr],
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Runtime, "gpu_launch");
        let r = self.sim.parallel_reduce_span(
            ctx.region,
            ctx.gpu_module,
            func,
            join,
            body,
            body_size,
            span.lo,
            span.hi,
            span.grid,
            scratch,
        )?;
        let stats = LaunchStats {
            seconds: r.seconds,
            busy_fraction: r.busy_fraction,
            insts: r.insts,
            translations: r.translations,
            transactions: r.transactions,
            contended: r.contended,
            l3_hit_rate: r.l3_hit_rate,
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }
}

/// The native-JIT backend: runs `concord-native` machine code on the host
/// CPU instead of the cycle-level interpreter. It shares the CPU
/// simulator's chunking (per simulated core) and reduction schedule, so
/// shared-region bytes and reduce totals are bit-identical to
/// [`CpuBackend`]; what changes is wall-clock time — `seconds` here is
/// measured host time, not simulated cycles. The compiled module lives in
/// a [`crate::SharedNativeModule`] slot so sessions built through
/// [`crate::ArtifactCache`] compile the machine code once process-wide.
pub struct NativeBackend {
    exec: concord_native::Executor,
    shared: crate::SharedNativeModule,
    module: Option<Arc<concord_native::NativeModule>>,
    /// Wall-clock seconds the last [`NativeBackend::ensure_prepared`]
    /// spent compiling, handed to the next `prepare` call (zero on reuse).
    pending_jit: f64,
}

impl NativeBackend {
    pub(crate) fn new(cores: u32, host_threads: usize, shared: crate::SharedNativeModule) -> Self {
        NativeBackend {
            exec: concord_native::Executor::new(cores as usize, host_threads),
            shared,
            module: None,
            pending_jit: 0.0,
        }
    }

    /// Compile the session's CPU module to machine code. Runs the codegen
    /// at most once per shared slot — later calls, and other sessions that
    /// hit the same artifact-cache entry, reuse the executable buffer —
    /// and stashes the wall-clock compile seconds for the next
    /// [`DeviceBackend::prepare`] call.
    ///
    /// # Errors
    ///
    /// [`concord_native::CompileError`] when the host is not x86-64 Linux
    /// or the module cannot be lowered.
    pub(crate) fn ensure_prepared(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        class: &str,
    ) -> Result<(), concord_native::CompileError> {
        if self.module.is_some() {
            return Ok(());
        }
        let mut slot = self.shared.lock().unwrap();
        if let Some(m) = slot.as_ref() {
            self.module = Some(Arc::clone(m));
            return Ok(());
        }
        let start = std::time::Instant::now();
        let mut sp = ctx.tracer.span(Track::Native, "codegen");
        sp.arg("kernel", class);
        let compiled = Arc::new(concord_native::compile(ctx.cpu_module)?);
        let seconds = start.elapsed().as_secs_f64();
        sp.arg("code_bytes", compiled.code_len() as i64);
        sp.arg("seconds", seconds);
        *slot = Some(Arc::clone(&compiled));
        self.module = Some(compiled);
        self.pending_jit = seconds;
        Ok(())
    }

    fn module(&self) -> Arc<concord_native::NativeModule> {
        Arc::clone(self.module.as_ref().expect("ensure_prepared runs before native launches"))
    }
}

impl DeviceBackend for NativeBackend {
    fn device(&self) -> Device {
        // Native execution happens on the host CPU; it meters as the
        // energy model's CPU device.
        Device::Cpu
    }

    fn label(&self) -> &'static str {
        "native"
    }

    fn fence_in(&mut self, _ctx: &mut ExecCtx<'_>) {}

    fn fence_out(&mut self, _ctx: &mut ExecCtx<'_>) {}

    fn prepare(&mut self, _ctx: &mut ExecCtx<'_>, _class: &str, _func: FuncId) -> f64 {
        std::mem::take(&mut self.pending_jit)
    }

    fn reduce_slots(&self, _ctx: &ExecCtx<'_>, _span: Span) -> u64 {
        // One chunk lane per simulated core, matching CpuBackend, so the
        // reduction schedule (and hence float accumulation order) is the
        // same.
        self.exec.cores() as u64
    }

    fn launch_for(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Native, "native_launch");
        let nm = self.module();
        let start = std::time::Instant::now();
        let r = self.exec.parallel_for(
            ctx.region,
            &nm,
            ctx.cpu_module,
            func,
            body,
            span.lo,
            span.hi,
            span.grid,
        )?;
        let stats = LaunchStats {
            seconds: start.elapsed().as_secs_f64(),
            busy_fraction: 1.0,
            insts: r.insts,
            ..Default::default()
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }

    fn launch_worklist(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        body: CpuAddr,
        span: Span,
        items: &[i32],
        pushes: &mut Vec<i32>,
    ) -> Result<LaunchStats, Trap> {
        let sp = ctx.tracer.span(Track::Native, "native_launch");
        let nm = self.module();
        let start = std::time::Instant::now();
        let r = self.exec.parallel_worklist(
            ctx.region,
            &nm,
            ctx.cpu_module,
            func,
            body,
            span.lo,
            span.hi,
            span.grid,
            items,
            pushes,
        )?;
        let stats = LaunchStats {
            seconds: start.elapsed().as_secs_f64(),
            busy_fraction: 1.0,
            insts: r.insts,
            ..Default::default()
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }

    fn launch_reduce(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        func: FuncId,
        join: FuncId,
        body: CpuAddr,
        body_size: u64,
        span: Span,
        scratch: &[CpuAddr],
    ) -> Result<LaunchStats, Trap> {
        // Native plans are never split, so the span is the full range —
        // and unlike the simulator backends, the executor performs the
        // final sequential join into `body` itself (same schedule the
        // runtime would use); the caller must skip its interpreter join.
        debug_assert_eq!(span.lo, 0, "native plans are single full spans");
        let sp = ctx.tracer.span(Track::Native, "native_launch");
        let nm = self.module();
        let start = std::time::Instant::now();
        let r = self.exec.parallel_reduce(
            ctx.region,
            &nm,
            ctx.cpu_module,
            func,
            join,
            body,
            body_size,
            span.hi,
            scratch,
        )?;
        let stats = LaunchStats {
            seconds: start.elapsed().as_secs_f64(),
            busy_fraction: 1.0,
            insts: r.insts,
            ..Default::default()
        };
        close_launch_span(sp, span, &stats);
        Ok(stats)
    }
}

/// RAII guard for per-launch scratch allocations in the shared region.
///
/// `parallel_reduce_hetero` needs per-warp / per-core partial slots that
/// must not outlive the construct; freeing them through `Drop` guarantees
/// they are released on *every* exit path — including a kernel [`Trap`]
/// propagating out with `?`, which used to leak the slots permanently.
pub struct ScratchGuard<'a> {
    heap: &'a mut SharedAllocator,
    slots: Vec<CpuAddr>,
}

impl<'a> ScratchGuard<'a> {
    /// Allocate `count` slots of `size` bytes. On a mid-way allocation
    /// failure the already-allocated slots are freed before returning.
    ///
    /// # Errors
    ///
    /// [`AllocError`] when the region is exhausted.
    pub fn alloc(heap: &'a mut SharedAllocator, count: u64, size: u64) -> Result<Self, AllocError> {
        let mut guard = ScratchGuard { heap, slots: Vec::with_capacity(count as usize) };
        for _ in 0..count {
            let slot = guard.heap.malloc(size)?;
            guard.slots.push(slot);
        }
        Ok(guard)
    }

    /// The allocated slots.
    #[must_use]
    pub fn slots(&self) -> &[CpuAddr] {
        &self.slots
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        for &slot in &self.slots {
            // The slots were handed out by this allocator and freed nowhere
            // else, so a free can only fail on allocator corruption — not
            // something to surface from a destructor.
            let _ = self.heap.free(slot);
        }
    }
}
