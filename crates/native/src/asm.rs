//! A small x86-64 instruction encoder.
//!
//! Emits exactly the subset of the ISA the lowering in [`crate::lower`]
//! needs: 64-bit ALU forms, sign/zero-extending loads, truncating stores,
//! SSE2 scalar float ops, `lock`-prefixed read-modify-writes, and
//! rel32 branches with label fixups. Everything uses explicit
//! ModRM/SIB/REX encoding; there is no instruction database — each
//! method writes its own bytes, and the unit tests pin the encodings
//! against independently assembled reference sequences.

/// General-purpose registers, numbered as in the ModRM register field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs, dead_code)] // complete register file; not every reg is allocated
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    fn lo(self) -> u8 {
        self as u8 & 7
    }
    fn hi(self) -> bool {
        self as u8 >= 8
    }
}

/// SSE registers (only the low, REX-free half is ever used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs, dead_code)]
pub enum Xmm {
    X0 = 0,
    X1 = 1,
    X2 = 2,
}

/// Condition codes (the low nibble of the 0F 8x/9x/4x opcode families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs, dead_code)] // full condition-code table
pub enum Cc {
    E = 0x4,
    Ne = 0x5,
    L = 0xC,
    Ge = 0xD,
    Le = 0xE,
    G = 0xF,
    B = 0x2,
    Ae = 0x3,
    Be = 0x6,
    A = 0x7,
    S = 0x8,
    P = 0xA,
    Np = 0xB,
}

/// Two-operand integer ALU ops in the `op r64, r/m64` form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Alu {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Cmp,
}

impl Alu {
    /// Opcode for `op reg, r/m` and the /digit for the `81 /n imm32` form.
    fn enc(self) -> (u8, u8) {
        match self {
            Alu::Add => (0x03, 0),
            Alu::Or => (0x0B, 1),
            Alu::And => (0x23, 4),
            Alu::Sub => (0x2B, 5),
            Alu::Xor => (0x33, 6),
            Alu::Cmp => (0x3B, 7),
        }
    }
}

/// A memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy)]
pub struct Mem {
    base: Reg,
    index: Option<(Reg, u8)>,
    disp: i32,
}

impl Mem {
    /// `[base + disp]`.
    pub fn b(base: Reg, disp: i32) -> Mem {
        Mem { base, index: None, disp }
    }

    /// `[base + index]` (scale 1, no displacement).
    pub fn bi(base: Reg, index: Reg) -> Mem {
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem { base, index: Some((index, 0)), disp: 0 }
    }

    /// `[base + index*8 + disp]`.
    pub fn bi8(base: Reg, index: Reg, disp: i32) -> Mem {
        assert!(index != Reg::Rsp, "rsp cannot be an index register");
        Mem { base, index: Some((index, 3)), disp }
    }
}

/// A forward-referencable code position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// The instruction stream under construction.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl Asm {
    /// Fresh empty stream.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current length (== offset of the next emitted byte).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Pad with `int3` until the position is 16-byte aligned (function
    /// entry alignment; the padding is never executed).
    pub fn align16(&mut self) {
        while !self.code.len().is_multiple_of(16) {
            self.code.push(0xCC);
        }
    }

    /// Allocate an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len());
    }

    /// Resolve all rel32 fixups and return the finished image.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Vec<u8> {
        for &(pos, l) in &self.fixups {
            let target = self.labels[l.0].expect("unbound label");
            let rel = (target as i64 - (pos as i64 + 4)) as i32;
            self.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.code
    }

    fn byte(&mut self, b: u8) {
        self.code.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.code.extend_from_slice(bs);
    }

    fn i32le(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }

    /// REX prefix; omitted when no bit is set and not forced.
    fn rex(&mut self, w: bool, r: bool, x: bool, b: bool, force: bool) {
        let v = 0x40 | (u8::from(w) << 3) | (u8::from(r) << 2) | (u8::from(x) << 1) | u8::from(b);
        if v != 0x40 || force {
            self.byte(v);
        }
    }

    /// ModRM (+SIB, +disp) for a register `reg` (field value, low 3 bits)
    /// against memory operand `m`.
    fn modrm_mem(&mut self, reg: u8, m: &Mem) {
        let need_sib = m.index.is_some() || m.base.lo() == 4;
        // rbp/r13 as base cannot use mod=00; force a disp8 of zero.
        let (modb, disp8) = if m.disp == 0 && m.base.lo() != 5 {
            (0u8, false)
        } else if i8::try_from(m.disp).is_ok() {
            (0x40u8, true)
        } else {
            (0x80u8, false)
        };
        let rm = if need_sib { 4 } else { m.base.lo() };
        self.byte(modb | (reg << 3) | rm);
        if need_sib {
            let (ilo, scale) = match m.index {
                Some((i, s)) => (i.lo(), s),
                None => (4, 0), // no index
            };
            self.byte((scale << 6) | (ilo << 3) | m.base.lo());
        }
        if modb == 0x40 {
            if disp8 {
                self.byte(m.disp as i8 as u8);
            } else {
                self.byte(0);
            }
        } else if modb == 0x80 {
            self.i32le(m.disp);
        }
    }

    /// Generic `prefixes rex opcode modrm` against memory.
    fn op_m(&mut self, prefixes: &[u8], w: bool, opcode: &[u8], reg: u8, reg_hi: bool, m: &Mem) {
        self.bytes(prefixes);
        let x = m.index.map(|(i, _)| i.hi()).unwrap_or(false);
        self.rex(w, reg_hi, x, m.base.hi(), false);
        self.bytes(opcode);
        self.modrm_mem(reg, m);
    }

    /// Generic `prefixes rex opcode modrm` register-register.
    fn op_r(&mut self, prefixes: &[u8], w: bool, opcode: &[u8], reg: u8, reg_hi: bool, rm: Reg) {
        self.bytes(prefixes);
        self.rex(w, reg_hi, false, rm.hi(), false);
        self.bytes(opcode);
        self.byte(0xC0 | (reg << 3) | rm.lo());
    }

    // ---- moves ----

    /// `mov dst, imm` — `C7` sign-extended imm32 when it fits, else movabs.
    pub fn mov_ri(&mut self, dst: Reg, v: i64) {
        if let Ok(v32) = i32::try_from(v) {
            self.op_r(&[], true, &[0xC7], 0, false, dst);
            self.i32le(v32);
        } else {
            self.rex(true, false, false, dst.hi(), false);
            self.byte(0xB8 + dst.lo());
            self.bytes(&v.to_le_bytes());
        }
    }

    /// `mov dst, src` (64-bit).
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x8B], dst.lo(), dst.hi(), src);
    }

    /// `mov dst, qword [m]`.
    pub fn mov_rm(&mut self, dst: Reg, m: Mem) {
        self.op_m(&[], true, &[0x8B], dst.lo(), dst.hi(), &m);
    }

    /// `mov qword [m], src`.
    pub fn mov_mr(&mut self, m: Mem, src: Reg) {
        self.op_m(&[], true, &[0x89], src.lo(), src.hi(), &m);
    }

    /// `mov dword [m], src32`.
    pub fn mov_mr32(&mut self, m: Mem, src: Reg) {
        self.op_m(&[], false, &[0x89], src.lo(), src.hi(), &m);
    }

    /// `mov word [m], src16`.
    pub fn mov_mr16(&mut self, m: Mem, src: Reg) {
        self.op_m(&[0x66], false, &[0x89], src.lo(), src.hi(), &m);
    }

    /// `mov byte [m], src8` (callers only pass al/cl/dl-class sources).
    pub fn mov_mr8(&mut self, m: Mem, src: Reg) {
        assert!((src as u8) < 4 || src.hi(), "8-bit store needs a REX-free low register");
        self.op_m(&[], false, &[0x88], src.lo(), src.hi(), &m);
    }

    /// `mov qword [m], imm32` (sign-extended).
    pub fn mov_mi(&mut self, m: Mem, v: i32) {
        self.op_m(&[], true, &[0xC7], 0, false, &m);
        self.i32le(v);
    }

    /// `movsx dst, byte [m]`.
    pub fn movsx8_rm(&mut self, dst: Reg, m: Mem) {
        self.op_m(&[], true, &[0x0F, 0xBE], dst.lo(), dst.hi(), &m);
    }

    /// `movsx dst, word [m]`.
    pub fn movsx16_rm(&mut self, dst: Reg, m: Mem) {
        self.op_m(&[], true, &[0x0F, 0xBF], dst.lo(), dst.hi(), &m);
    }

    /// `movsxd dst, dword [m]`.
    pub fn movsxd_rm(&mut self, dst: Reg, m: Mem) {
        self.op_m(&[], true, &[0x63], dst.lo(), dst.hi(), &m);
    }

    /// `movsxd dst, src32` (sign-extend low 32 bits of src).
    pub fn movsxd_rr(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x63], dst.lo(), dst.hi(), src);
    }

    /// `movsx dst, src8`.
    pub fn movsx8_rr(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x0F, 0xBE], dst.lo(), dst.hi(), src);
    }

    /// `movsx dst, src16`.
    pub fn movsx16_rr(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x0F, 0xBF], dst.lo(), dst.hi(), src);
    }

    /// `movzx dst, src8`.
    pub fn movzx8_rr(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x0F, 0xB6], dst.lo(), dst.hi(), src);
    }

    /// `movzx dst, src16`.
    pub fn movzx16_rr(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x0F, 0xB7], dst.lo(), dst.hi(), src);
    }

    /// `mov dst32, src32` — zero-extends the high half.
    pub fn mov_rr32(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], false, &[0x8B], dst.lo(), dst.hi(), src);
    }

    // ---- ALU ----

    /// `op dst, src` (64-bit).
    pub fn alu_rr(&mut self, op: Alu, dst: Reg, src: Reg) {
        let (opc, _) = op.enc();
        self.op_r(&[], true, &[opc], dst.lo(), dst.hi(), src);
    }

    /// `op dst, qword [m]`.
    pub fn alu_rm(&mut self, op: Alu, dst: Reg, m: Mem) {
        let (opc, _) = op.enc();
        self.op_m(&[], true, &[opc], dst.lo(), dst.hi(), &m);
    }

    /// `op dst, imm32` (sign-extended).
    pub fn alu_ri(&mut self, op: Alu, dst: Reg, v: i32) {
        let (_, digit) = op.enc();
        self.op_r(&[], true, &[0x81], digit, false, dst);
        self.i32le(v);
    }

    /// `op qword [m], imm32` (sign-extended).
    pub fn alu_mi(&mut self, op: Alu, m: Mem, v: i32) {
        let (_, digit) = op.enc();
        self.op_m(&[], true, &[0x81], digit, false, &m);
        self.i32le(v);
    }

    /// `cmp qword [m], imm32`.
    pub fn cmp_mi(&mut self, m: Mem, v: i32) {
        self.alu_mi(Alu::Cmp, m, v);
    }

    /// `imul dst, src` (64-bit).
    pub fn imul_rr(&mut self, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x0F, 0xAF], dst.lo(), dst.hi(), src);
    }

    /// `neg dst` (64-bit).
    pub fn neg(&mut self, dst: Reg) {
        self.op_r(&[], true, &[0xF7], 3, false, dst);
    }

    /// `cqo` — sign-extend rax into rdx:rax.
    pub fn cqo(&mut self) {
        self.bytes(&[0x48, 0x99]);
    }

    /// `idiv src` (64-bit).
    pub fn idiv(&mut self, src: Reg) {
        self.op_r(&[], true, &[0xF7], 7, false, src);
    }

    /// `div src` (64-bit unsigned).
    pub fn div(&mut self, src: Reg) {
        self.op_r(&[], true, &[0xF7], 6, false, src);
    }

    /// `shl dst, cl`.
    pub fn shl_cl(&mut self, dst: Reg) {
        self.op_r(&[], true, &[0xD3], 4, false, dst);
    }

    /// `shr dst, cl`.
    pub fn shr_cl(&mut self, dst: Reg) {
        self.op_r(&[], true, &[0xD3], 5, false, dst);
    }

    /// `sar dst, cl`.
    pub fn sar_cl(&mut self, dst: Reg) {
        self.op_r(&[], true, &[0xD3], 7, false, dst);
    }

    /// `shl dst, imm8`.
    #[allow(dead_code)] // encoder completeness; exercised by the byte tests
    pub fn shl_i(&mut self, dst: Reg, n: u8) {
        self.op_r(&[], true, &[0xC1], 4, false, dst);
        self.byte(n);
    }

    /// `shr dst, imm8`.
    pub fn shr_i(&mut self, dst: Reg, n: u8) {
        self.op_r(&[], true, &[0xC1], 5, false, dst);
        self.byte(n);
    }

    /// `test dst, src` (64-bit).
    pub fn test_rr(&mut self, a: Reg, b: Reg) {
        self.op_r(&[], true, &[0x85], b.lo(), b.hi(), a);
    }

    /// `setcc dst8` (low byte; callers movzx afterwards).
    pub fn setcc(&mut self, cc: Cc, dst: Reg) {
        assert!((dst as u8) < 4, "setcc targets a REX-free low register");
        self.op_r(&[], false, &[0x0F, 0x90 + cc as u8], 0, false, dst);
    }

    /// `cmovcc dst, src` (64-bit).
    pub fn cmovcc(&mut self, cc: Cc, dst: Reg, src: Reg) {
        self.op_r(&[], true, &[0x0F, 0x40 + cc as u8], dst.lo(), dst.hi(), src);
    }

    /// `lea dst, [m]`.
    pub fn lea(&mut self, dst: Reg, m: Mem) {
        self.op_m(&[], true, &[0x8D], dst.lo(), dst.hi(), &m);
    }

    // ---- stack / control flow ----

    /// `push reg`.
    pub fn push(&mut self, r: Reg) {
        self.rex(false, false, false, r.hi(), false);
        self.byte(0x50 + r.lo());
    }

    /// `pop reg`.
    pub fn pop(&mut self, r: Reg) {
        self.rex(false, false, false, r.hi(), false);
        self.byte(0x58 + r.lo());
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.byte(0xC3);
    }

    /// `call reg`.
    pub fn call_r(&mut self, r: Reg) {
        self.rex(false, false, false, r.hi(), false);
        self.bytes(&[0xFF, 0xD0 + r.lo()]);
    }

    /// `call qword [m]`.
    pub fn call_m(&mut self, m: Mem) {
        self.op_m(&[], false, &[0xFF], 2, false, &m);
    }

    /// `jmp label` (rel32).
    pub fn jmp(&mut self, l: Label) {
        self.byte(0xE9);
        self.fixups.push((self.code.len(), l));
        self.i32le(0);
    }

    /// `jcc label` (rel32).
    pub fn jcc(&mut self, cc: Cc, l: Label) {
        self.bytes(&[0x0F, 0x80 + cc as u8]);
        self.fixups.push((self.code.len(), l));
        self.i32le(0);
    }

    // ---- atomics ----

    /// `lock xadd dword [m], src32` — src receives the old value.
    pub fn lock_xadd32(&mut self, m: Mem, src: Reg) {
        self.op_m(&[0xF0], false, &[0x0F, 0xC1], src.lo(), src.hi(), &m);
    }

    /// `lock cmpxchg dword [m], src32` — compares against eax.
    pub fn lock_cmpxchg32(&mut self, m: Mem, src: Reg) {
        self.op_m(&[0xF0], false, &[0x0F, 0xB1], src.lo(), src.hi(), &m);
    }

    /// `mov dst32, dword [m]` (zero-extending plain load).
    #[allow(dead_code)] // encoder completeness; exercised by the byte tests
    pub fn mov_rm32(&mut self, dst: Reg, m: Mem) {
        self.op_m(&[], false, &[0x8B], dst.lo(), dst.hi(), &m);
    }

    // ---- SSE scalar ----

    /// `movsd x, qword [m]`.
    pub fn movsd_xm(&mut self, x: Xmm, m: Mem) {
        self.op_m(&[0xF2], false, &[0x0F, 0x10], x as u8, false, &m);
    }

    /// `movsd qword [m], x`.
    pub fn movsd_mx(&mut self, m: Mem, x: Xmm) {
        self.op_m(&[0xF2], false, &[0x0F, 0x11], x as u8, false, &m);
    }

    /// `movss x, dword [m]`.
    pub fn movss_xm(&mut self, x: Xmm, m: Mem) {
        self.op_m(&[0xF3], false, &[0x0F, 0x10], x as u8, false, &m);
    }

    /// `movss dword [m], x`.
    pub fn movss_mx(&mut self, m: Mem, x: Xmm) {
        self.op_m(&[0xF3], false, &[0x0F, 0x11], x as u8, false, &m);
    }

    /// Scalar double arithmetic `op x, y` (add/sub/mul/div/sqrt/min-slot).
    fn sse_xx(&mut self, pfx: u8, opc: u8, dst: Xmm, src: Xmm) {
        self.bytes(&[pfx, 0x0F, opc]);
        self.byte(0xC0 | ((dst as u8) << 3) | src as u8);
    }

    /// `addsd dst, src`.
    pub fn addsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0xF2, 0x58, dst, src);
    }

    /// `subsd dst, src`.
    pub fn subsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0xF2, 0x5C, dst, src);
    }

    /// `mulsd dst, src`.
    pub fn mulsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0xF2, 0x59, dst, src);
    }

    /// `divsd dst, src`.
    pub fn divsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0xF2, 0x5E, dst, src);
    }

    /// `sqrtsd dst, src`.
    pub fn sqrtsd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0xF2, 0x51, dst, src);
    }

    /// `ucomisd dst, src`.
    pub fn ucomisd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0x66, 0x2E, dst, src);
    }

    /// `cvtsd2ss dst, src` (double → single).
    pub fn cvtsd2ss(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0xF2, 0x5A, dst, src);
    }

    /// `cvtss2sd dst, src` (single → double).
    pub fn cvtss2sd(&mut self, dst: Xmm, src: Xmm) {
        self.sse_xx(0xF3, 0x5A, dst, src);
    }

    /// `cvtsi2sd dst, src64`.
    pub fn cvtsi2sd(&mut self, dst: Xmm, src: Reg) {
        self.byte(0xF2);
        self.rex(true, false, false, src.hi(), false);
        self.bytes(&[0x0F, 0x2A]);
        self.byte(0xC0 | ((dst as u8) << 3) | src.lo());
    }

    /// `movq dst64, xsrc`.
    pub fn movq_rx(&mut self, dst: Reg, src: Xmm) {
        self.byte(0x66);
        self.rex(true, false, false, dst.hi(), false);
        self.bytes(&[0x0F, 0x7E]);
        self.byte(0xC0 | ((src as u8) << 3) | dst.lo());
    }

    /// `movq xdst, src64`.
    pub fn movq_xr(&mut self, dst: Xmm, src: Reg) {
        self.byte(0x66);
        self.rex(true, false, false, src.hi(), false);
        self.bytes(&[0x0F, 0x6E]);
        self.byte(0xC0 | ((dst as u8) << 3) | src.lo());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(f: impl FnOnce(&mut Asm)) -> Vec<u8> {
        let mut a = Asm::new();
        f(&mut a);
        a.finish()
    }

    #[test]
    fn mov_encodings_match_reference() {
        // mov rax, rcx  => 48 8b c1
        assert_eq!(enc(|a| a.mov_rr(Reg::Rax, Reg::Rcx)), vec![0x48, 0x8B, 0xC1]);
        // mov r8, [r15+16] => 4d 8b 47 10
        assert_eq!(enc(|a| a.mov_rm(Reg::R8, Mem::b(Reg::R15, 16))), vec![0x4D, 0x8B, 0x47, 0x10]);
        // mov [rbp-8], rax => 48 89 45 f8
        assert_eq!(enc(|a| a.mov_mr(Mem::b(Reg::Rbp, -8), Reg::Rax)), vec![0x48, 0x89, 0x45, 0xF8]);
        // movabs rax, 0x4000_0000_0000 => 48 b8 ...
        assert_eq!(
            enc(|a| a.mov_ri(Reg::Rax, 0x4000_0000_0000)),
            vec![0x48, 0xB8, 0, 0, 0, 0, 0, 0x40, 0, 0]
        );
        // mov rax, 5 (imm32 form) => 48 c7 c0 05 00 00 00
        assert_eq!(enc(|a| a.mov_ri(Reg::Rax, 5)), vec![0x48, 0xC7, 0xC0, 5, 0, 0, 0]);
    }

    #[test]
    fn sib_and_disp_forms() {
        // mov rax, [rdx+rcx] => 48 8b 04 0a
        assert_eq!(
            enc(|a| a.mov_rm(Reg::Rax, Mem::bi(Reg::Rdx, Reg::Rcx))),
            vec![0x48, 0x8B, 0x04, 0x0A]
        );
        // mov rax, [rcx+r8*8+16] => 4a 8b 44 c1 10
        assert_eq!(
            enc(|a| a.mov_rm(Reg::Rax, Mem::bi8(Reg::Rcx, Reg::R8, 16))),
            vec![0x4A, 0x8B, 0x44, 0xC1, 0x10]
        );
        // mov rax, [rbp] needs disp8=0 => 48 8b 45 00
        assert_eq!(enc(|a| a.mov_rm(Reg::Rax, Mem::b(Reg::Rbp, 0))), vec![0x48, 0x8B, 0x45, 0x00]);
        // mov rax, [rsp] needs a SIB => 48 8b 04 24
        assert_eq!(enc(|a| a.mov_rm(Reg::Rax, Mem::b(Reg::Rsp, 0))), vec![0x48, 0x8B, 0x04, 0x24]);
        // large disp: mov rax, [rdi+0x12345] => 48 8b 87 45 23 01 00
        assert_eq!(
            enc(|a| a.mov_rm(Reg::Rax, Mem::b(Reg::Rdi, 0x12345))),
            vec![0x48, 0x8B, 0x87, 0x45, 0x23, 0x01, 0x00]
        );
    }

    #[test]
    fn alu_and_shift_forms() {
        // add rax, rbx => 48 03 c3
        assert_eq!(enc(|a| a.alu_rr(Alu::Add, Reg::Rax, Reg::Rbx)), vec![0x48, 0x03, 0xC3]);
        // sub rcx, 0x10 => 48 81 e9 10 00 00 00
        assert_eq!(
            enc(|a| a.alu_ri(Alu::Sub, Reg::Rcx, 0x10)),
            vec![0x48, 0x81, 0xE9, 0x10, 0, 0, 0]
        );
        // cmp rcx, [r15+40] => 49 3b 4f 28
        assert_eq!(
            enc(|a| a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, 40))),
            vec![0x49, 0x3B, 0x4F, 0x28]
        );
        // shl rax, cl => 48 d3 e0 ; sar rdx, cl => 48 d3 fa
        assert_eq!(enc(|a| a.shl_cl(Reg::Rax)), vec![0x48, 0xD3, 0xE0]);
        assert_eq!(enc(|a| a.sar_cl(Reg::Rdx)), vec![0x48, 0xD3, 0xFA]);
        // imul rax, rcx => 48 0f af c1
        assert_eq!(enc(|a| a.imul_rr(Reg::Rax, Reg::Rcx)), vec![0x48, 0x0F, 0xAF, 0xC1]);
        // sub qword [r15+40], 7 => 49 81 6f 28 07 00 00 00
        assert_eq!(
            enc(|a| a.alu_mi(Alu::Sub, Mem::b(Reg::R15, 40), 7)),
            vec![0x49, 0x81, 0x6F, 0x28, 7, 0, 0, 0]
        );
    }

    #[test]
    fn control_flow_and_fixups() {
        // Forward jump over one byte of padding.
        let mut a = Asm::new();
        let l = a.label();
        a.jmp(l);
        a.ret();
        a.bind(l);
        a.ret();
        // e9 01 00 00 00 c3 c3
        assert_eq!(a.finish(), vec![0xE9, 1, 0, 0, 0, 0xC3, 0xC3]);

        // Backward conditional branch.
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jcc(Cc::Ne, top);
        // 0f 85 fa ff ff ff (-6)
        assert_eq!(a.finish(), vec![0x0F, 0x85, 0xFA, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn sse_and_atomic_forms() {
        // movsd xmm0, [rbp-16] => f2 0f 10 45 f0
        assert_eq!(
            enc(|a| a.movsd_xm(Xmm::X0, Mem::b(Reg::Rbp, -16))),
            vec![0xF2, 0x0F, 0x10, 0x45, 0xF0]
        );
        // addsd xmm0, xmm1 => f2 0f 58 c1
        assert_eq!(enc(|a| a.addsd(Xmm::X0, Xmm::X1)), vec![0xF2, 0x0F, 0x58, 0xC1]);
        // cvtsi2sd xmm0, rax => f2 48 0f 2a c0
        assert_eq!(enc(|a| a.cvtsi2sd(Xmm::X0, Reg::Rax)), vec![0xF2, 0x48, 0x0F, 0x2A, 0xC0]);
        // lock xadd [rdx+rcx], eax => f0 0f c1 04 0a
        assert_eq!(
            enc(|a| a.lock_xadd32(Mem::bi(Reg::Rdx, Reg::Rcx), Reg::Rax)),
            vec![0xF0, 0x0F, 0xC1, 0x04, 0x0A]
        );
        // lock cmpxchg [rdx], r8d => f0 44 0f b1 02
        assert_eq!(
            enc(|a| a.lock_cmpxchg32(Mem::b(Reg::Rdx, 0), Reg::R8)),
            vec![0xF0, 0x44, 0x0F, 0xB1, 0x02]
        );
        // movq rax, xmm0 => 66 48 0f 7e c0
        assert_eq!(enc(|a| a.movq_rx(Reg::Rax, Xmm::X0)), vec![0x66, 0x48, 0x0F, 0x7E, 0xC0]);
    }

    #[test]
    fn setcc_cmov_call() {
        // sete al => 0f 94 c0
        assert_eq!(enc(|a| a.setcc(Cc::E, Reg::Rax)), vec![0x0F, 0x94, 0xC0]);
        // cmovne rax, rcx => 48 0f 45 c1
        assert_eq!(enc(|a| a.cmovcc(Cc::Ne, Reg::Rax, Reg::Rcx)), vec![0x48, 0x0F, 0x45, 0xC1]);
        // call rax => ff d0 ; call qword [rcx+8] => ff 51 08
        assert_eq!(enc(|a| a.call_r(Reg::Rax)), vec![0xFF, 0xD0]);
        assert_eq!(enc(|a| a.call_m(Mem::b(Reg::Rcx, 8))), vec![0xFF, 0x51, 0x08]);
        // push r12 / pop r12 => 41 54 / 41 5c
        assert_eq!(enc(|a| a.push(Reg::R12)), vec![0x41, 0x54]);
        assert_eq!(enc(|a| a.pop(Reg::R12)), vec![0x41, 0x5C]);
    }
}
