//! Lowering from optimized `concord-ir` to x86-64 machine code.
//!
//! Every function becomes a native function with this internal convention:
//!
//! ```text
//! extern "sysv64" fn(env: *mut Env /* rdi */, args: *const u64 /* rsi */) -> u64
//! ```
//!
//! `args` points at the raw 64-bit bit patterns of the parameters (pointers
//! are raw addresses, floats are `f64` bits); the return value is likewise
//! the raw bits of the result. Inside a function:
//!
//! * `r15` pins the [`Env`] pointer, `r14` pins `CPU_BASE`, `rbp` is the
//!   frame pointer. `rbx`/`r12`/`r13` are the register-allocation pool
//!   (see [`crate::regalloc`]); everything caller-saved is scratch.
//! * Every SSA value owns an 8-byte frame slot holding its raw bits;
//!   register-allocated values live in their register instead.
//! * Traps never unwind: a trap stub records a code plus payload words in
//!   the environment and returns through every active frame, each one
//!   restoring the private stack pointer it saved on entry. The launch
//!   driver turns the cells back into the interpreter's `Trap` value.
//!
//! Interpreter parity is the design center — the differential battery
//! demands byte-identical region output and identical traps:
//!
//! * The step budget is pre-charged per block (`sub [env.steps], len`;
//!   trap when negative), which traps on exactly the same launches as the
//!   interpreter's per-instruction check.
//! * Address-space classification is by range, exactly like the
//!   interpreter's `reclassify`/`classify_raw`: below `CPU_BASE` is
//!   private, `[CPU_BASE, GPU_BASE)` is shared CPU space, above is GPU
//!   space. The fused check `addr - CPU_BASE <= region_len - size`
//!   dispatches the hot shared-CPU case in two instructions. (Pointer
//!   *tags* exist only in the interpreter; IR that manufactures a
//!   mistagged pointer via `inttoptr` could diverge, but the frontend
//!   never emits such IR — see DESIGN.md.)
//! * Pointer-typed stores to shared memory replicate `write_val`'s
//!   encode-before-resolve order: the stored value's space is checked
//!   before the target address's bounds.
//! * Division, shifts, narrow-int wrapping, float-through-`f32` rounding
//!   and NaN-sensitive intrinsics all mirror `concord_ir::eval` — the
//!   NaN-asymmetric `FMin`/`FMax` and the saturating `FpToSi` go through
//!   tiny Rust helpers so the semantics are identical by construction.

use crate::asm::{Alu, Asm, Cc, Label, Mem, Reg, Xmm};
use crate::env::{
    h_device_malloc, h_exp, h_f2i, h_floor, h_fmax, h_fmin, h_pow, h_wl_push, Env, MAX_DEPTH,
    OFF_CLASS_COUNT, OFF_CODE_PTRS, OFF_DEPTH, OFF_GLOBAL_ID, OFF_GLOBAL_SIZE, OFF_GPU_BASE,
    OFF_GROUP_ID, OFF_LIMIT_CPU, OFF_LIMIT_PRIV, OFF_LOCAL_ID, OFF_NFUNCS, OFF_PRIV_BASE,
    OFF_PRIV_LEN, OFF_PRIV_SP, OFF_REGION_BASE, OFF_STEPS, OFF_TRAP_A, OFF_TRAP_B, OFF_TRAP_CODE,
    PRIVATE_BASE, TRAP_BAD_ADDRESS, TRAP_BAD_DISPATCH, TRAP_DIV_ZERO, TRAP_STACK_OVERFLOW,
    TRAP_STEP_LIMIT, TRAP_UNREACHABLE, TRAP_WRONG_SPACE,
};
use crate::regalloc::{allocate, Allocation};
use crate::CompileError;
use concord_ir::analysis::reverse_postorder;
use concord_ir::inst::{BinOp, CastOp, FCmp, ICmp, Intrinsic, Op};
use concord_ir::types::{AddrSpace, Type};
use concord_ir::{BlockId, Function, Module, ValueId};
use concord_svm::{CPU_BASE, SVM_CONST, VTABLE_MAGIC};
use std::collections::HashMap;

/// Registers backing [`crate::regalloc`] assignments, in index order.
const ALLOC_REGS: [Reg; 3] = [Reg::Rbx, Reg::R12, Reg::R13];

/// Space payload codes shared with [`Env::take_trap`].
const SPACE_CPU: i64 = 0;
const SPACE_GPU: i64 = 1;
const SPACE_PRIVATE: i64 = 2;
const SPACE_LOCAL: i64 = 3;

/// A lowered module: one flat code image plus the entry offset of every
/// function, indexed by `FuncId`.
pub(crate) struct Lowered {
    /// Machine code for all functions.
    pub code: Vec<u8>,
    /// Byte offset of each function's entry point.
    pub offsets: Vec<usize>,
}

/// Lower every function in `module`.
pub(crate) fn lower_module(module: &Module) -> Result<Lowered, CompileError> {
    let mut a = Asm::new();
    let mut offsets = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        a.align16();
        offsets.push(a.here());
        FnLower::new(&mut a, f)?.emit()?;
    }
    Ok(Lowered { code: a.finish(), offsets })
}

/// The interpreter's `frame_layout`, byte for byte: allocas packed in
/// block order with per-alloca alignment, total rounded to 16.
fn frame_layout(f: &Function) -> (HashMap<ValueId, u64>, u64) {
    let mut offsets = HashMap::new();
    let mut size = 0u64;
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            if let Op::Alloca { size: s, align } = f.inst(id).op {
                size = size.div_ceil(align) * align;
                offsets.insert(id, size);
                size += s;
            }
        }
    }
    (offsets, size.div_ceil(16) * 16)
}

fn log2_size(ty: Type) -> i32 {
    match ty.size() {
        1 => 0,
        2 => 1,
        4 => 2,
        _ => 3,
    }
}

/// Per-function lowering state.
struct FnLower<'a> {
    a: &'a mut Asm,
    f: &'a Function,
    alloc: Allocation,
    alloca_off: HashMap<ValueId, u64>,
    frame_size: u64,
    labels: HashMap<BlockId, Label>,
    rpo: Vec<BlockId>,
    /// `-(tmp_base + 8j)` is phi-copy temp `j`.
    tmp_base: i32,
    /// `-arg_base + 8j` is outgoing call argument `j`.
    arg_base: i32,
    /// `sub rsp, frame` amount (keeps `rsp % 16 == 0` in the body).
    frame: i32,
    t_div: Label,
    t_bad: Label,
    t_was: Label,
    t_unreach: Label,
    t_bvd: Label,
    t_so: Label,
    t_steps: Label,
    bail: Label,
}

impl<'a> FnLower<'a> {
    fn new(a: &'a mut Asm, f: &'a Function) -> Result<Self, CompileError> {
        let rpo = reverse_postorder(f);
        let alloc = allocate(f);
        let (alloca_off, frame_size) = frame_layout(f);
        let nvals = f.insts.len() as i32;

        let mut ntmp = 0i32;
        let mut nargs = 0i32;
        for b in f.block_ids() {
            let phis =
                f.block(b).insts.iter().filter(|&&id| matches!(f.inst(id).op, Op::Phi(_))).count();
            ntmp = ntmp.max(phis as i32);
            for &id in &f.block(b).insts {
                match &f.inst(id).op {
                    Op::Call { args, .. } => nargs = nargs.max(args.len() as i32),
                    Op::CallVirtual { args, .. } => nargs = nargs.max(args.len() as i32 + 1),
                    _ => {}
                }
            }
        }
        let tmp_base = 80 + 8 * nvals;
        let arg_base = tmp_base + 8 * ntmp + 8 * nargs;
        // Usable frame bytes start at rbp-48 (below the 5 pushed registers);
        // keep rsp 16-aligned in the body: frame ≡ 8 (mod 16).
        let mut frame = arg_base - 40;
        if frame % 16 != 8 {
            frame += 8;
        }
        if frame < 0 || arg_base < 0 || frame_size > i32::MAX as u64 {
            return Err(CompileError::TooLarge(f.name.clone()));
        }

        let labels = rpo.iter().map(|&b| (b, a.label())).collect();
        Ok(FnLower {
            t_div: a.label(),
            t_bad: a.label(),
            t_was: a.label(),
            t_unreach: a.label(),
            t_bvd: a.label(),
            t_so: a.label(),
            t_steps: a.label(),
            bail: a.label(),
            a,
            f,
            alloc,
            alloca_off,
            frame_size,
            labels,
            rpo,
            tmp_base,
            arg_base,
            frame,
        })
    }

    // ---- value access ----

    fn slot(&self, v: ValueId) -> Mem {
        Mem::b(Reg::Rbp, -(80 + 8 * v.0 as i32))
    }

    fn tmp(&self, j: i32) -> Mem {
        Mem::b(Reg::Rbp, -(self.tmp_base + 8 * j))
    }

    fn argslot(&self, j: i32) -> Mem {
        Mem::b(Reg::Rbp, -self.arg_base + 8 * j)
    }

    fn reg_of(&self, v: ValueId) -> Option<Reg> {
        self.alloc.reg_of[v.0 as usize].map(|i| ALLOC_REGS[i as usize])
    }

    /// The register currently holding `v`: its allocated register, or
    /// `want` after a load from the slot. The caller must not clobber the
    /// result unless it equals `want`.
    fn read(&mut self, v: ValueId, want: Reg) -> Reg {
        match self.reg_of(v) {
            Some(r) => r,
            None => {
                self.a.mov_rm(want, self.slot(v));
                want
            }
        }
    }

    /// Force `v` into `dst` (a scratch register the caller may clobber).
    fn read_into(&mut self, v: ValueId, dst: Reg) {
        let r = self.read(v, dst);
        if r != dst {
            self.a.mov_rr(dst, r);
        }
    }

    /// Store `src` as the value of `v`.
    fn write(&mut self, v: ValueId, src: Reg) {
        match self.reg_of(v) {
            Some(r) => {
                if r != src {
                    self.a.mov_rr(r, src);
                }
            }
            None => self.a.mov_mr(self.slot(v), src),
        }
    }

    /// Load float value `v` into `x` (floats are never register-allocated).
    fn read_f(&mut self, v: ValueId, x: Xmm) {
        self.a.movsd_xm(x, self.slot(v));
    }

    fn write_f(&mut self, v: ValueId, x: Xmm) {
        self.a.movsd_mx(self.slot(v), x);
    }

    /// `wrap_int`: sign-extend the low `ty` bits (and mask to one bit for
    /// `i1`), the invariant every interpreter result maintains.
    fn wrap(&mut self, r: Reg, ty: Type) {
        match ty {
            Type::I1 => self.a.alu_ri(Alu::And, r, 1),
            Type::I8 => self.a.movsx8_rr(r, r),
            Type::I16 => self.a.movsx16_rr(r, r),
            Type::I32 => self.a.movsxd_rr(r, r),
            _ => {}
        }
    }

    /// Zero out everything above the low `ty` bits (the `LShr`/`Zext`
    /// source mask).
    fn mask_low(&mut self, r: Reg, ty: Type) {
        match ty {
            Type::I1 => self.a.alu_ri(Alu::And, r, 1),
            Type::I8 => self.a.movzx8_rr(r, r),
            Type::I16 => self.a.movzx16_rr(r, r),
            Type::I32 => self.a.mov_rr32(r, r),
            _ => {}
        }
    }

    /// Round-through-`f32` when the result type demands it.
    fn round_f32(&mut self, ty: Type, x: Xmm) {
        if ty == Type::F32 {
            self.a.cvtsd2ss(x, x);
            self.a.cvtss2sd(x, x);
        }
    }

    fn env(&self, off: i32) -> Mem {
        Mem::b(Reg::R15, off)
    }

    // ---- function skeleton ----

    fn emit(mut self) -> Result<(), CompileError> {
        self.prologue();
        for (i, &b) in self.rpo.clone().iter().enumerate() {
            let l = self.labels[&b];
            self.a.bind(l);
            let insts = self.f.block(b).insts.clone();
            // Pre-charge the whole block against the step budget; traps on
            // exactly the launches where the interpreter's per-instruction
            // `budget == 0` check fires.
            self.a.alu_mi(Alu::Sub, self.env(OFF_STEPS), insts.len() as i32);
            self.a.jcc(Cc::S, self.t_steps);
            let entry_params = i == 0;
            for &id in &insts {
                self.emit_inst(b, id, entry_params)?;
            }
        }
        self.stubs();
        Ok(())
    }

    fn prologue(&mut self) {
        let a = &mut *self.a;
        a.push(Reg::Rbp);
        a.mov_rr(Reg::Rbp, Reg::Rsp);
        for r in [Reg::Rbx, Reg::R12, Reg::R13, Reg::R14, Reg::R15] {
            a.push(r);
        }
        a.alu_ri(Alu::Sub, Reg::Rsp, self.frame);
        a.mov_rr(Reg::R15, Reg::Rdi);
        a.mov_ri(Reg::R14, CPU_BASE as i64);
        // Save the private sp for the unwind path *before* any trap can
        // fire, so `bail` always restores a meaningful value.
        a.mov_rm(Reg::Rax, Mem::b(Reg::R15, OFF_PRIV_SP));
        a.mov_mr(Mem::b(Reg::Rbp, -48), Reg::Rax);
        // Call-depth guard (`depth > MAX_DEPTH` → StackOverflow).
        a.cmp_mi(Mem::b(Reg::R15, OFF_DEPTH), MAX_DEPTH as i32);
        a.jcc(Cc::G, self.t_so);
        // Push the private frame: base = align16(sp), sp = base + size.
        a.alu_ri(Alu::Add, Reg::Rax, 15);
        a.alu_ri(Alu::And, Reg::Rax, -16);
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_ri(Alu::Add, Reg::Rcx, PRIVATE_BASE as i32);
        a.mov_mr(Mem::b(Reg::Rbp, -56), Reg::Rcx);
        if self.frame_size > 0 {
            a.alu_ri(Alu::Add, Reg::Rax, self.frame_size as i32);
        }
        a.alu_rm(Alu::Cmp, Reg::Rax, Mem::b(Reg::R15, OFF_PRIV_LEN));
        a.jcc(Cc::A, self.t_so);
        a.mov_mr(Mem::b(Reg::R15, OFF_PRIV_SP), Reg::Rax);
        // Copy parameters into their value homes.
        for i in 0..self.f.params.len() {
            self.a.mov_rm(Reg::Rax, Mem::b(Reg::Rsi, 8 * i as i32));
            self.write(ValueId(i as u32), Reg::Rax);
        }
    }

    /// Trap stubs and the shared return path. Stubs expect their payload
    /// in `rax` (+ `rcx` for the two-word traps).
    fn stubs(&mut self) {
        let (code_cell, a_cell, b_cell) =
            (self.env(OFF_TRAP_CODE), self.env(OFF_TRAP_A), self.env(OFF_TRAP_B));
        let a = &mut *self.a;
        for (label, code) in [
            (self.t_div, TRAP_DIV_ZERO),
            (self.t_unreach, TRAP_UNREACHABLE),
            (self.t_so, TRAP_STACK_OVERFLOW),
            (self.t_steps, TRAP_STEP_LIMIT),
        ] {
            a.bind(label);
            a.mov_mi(code_cell, code as i32);
            a.jmp(self.bail);
        }
        a.bind(self.t_bad);
        a.mov_mr(a_cell, Reg::Rax);
        a.mov_mr(b_cell, Reg::Rcx);
        a.mov_mi(code_cell, TRAP_BAD_ADDRESS as i32);
        a.jmp(self.bail);
        a.bind(self.t_was);
        a.mov_mr(a_cell, Reg::Rax);
        a.mov_mr(b_cell, Reg::Rcx);
        a.mov_mi(code_cell, TRAP_WRONG_SPACE as i32);
        a.jmp(self.bail);
        a.bind(self.t_bvd);
        a.mov_mr(a_cell, Reg::Rax);
        a.mov_mi(code_cell, TRAP_BAD_DISPATCH as i32);
        a.jmp(self.bail);
        // Shared exit: pop the private frame, restore saved registers.
        a.bind(self.bail);
        a.mov_rm(Reg::Rcx, Mem::b(Reg::Rbp, -48));
        a.mov_mr(Mem::b(Reg::R15, OFF_PRIV_SP), Reg::Rcx);
        a.lea(Reg::Rsp, Mem::b(Reg::Rbp, -40));
        for r in [Reg::R15, Reg::R14, Reg::R13, Reg::R12, Reg::Rbx, Reg::Rbp] {
            a.pop(r);
        }
        a.ret();
    }

    // ---- control flow ----

    /// Parallel phi-copy for the edge `from -> to` (sources first into
    /// temps, then all destinations — phi groups read their inputs
    /// simultaneously).
    fn emit_edge(&mut self, from: BlockId, to: BlockId) {
        let mut pairs: Vec<(ValueId, ValueId)> = Vec::new();
        for &id in &self.f.block(to).insts {
            if let Op::Phi(incoming) = &self.f.inst(id).op {
                let (_, src) = incoming
                    .iter()
                    .find(|(b, _)| *b == from)
                    .expect("verifier guarantees an incoming value per predecessor");
                pairs.push((id, *src));
            } else {
                break;
            }
        }
        for (j, &(_, src)) in pairs.iter().enumerate() {
            let r = self.read(src, Reg::Rax);
            self.a.mov_mr(self.tmp(j as i32), r);
        }
        for (j, &(dst, _)) in pairs.iter().enumerate() {
            self.a.mov_rm(Reg::Rax, self.tmp(j as i32));
            self.write(dst, Reg::Rax);
        }
    }

    // ---- instruction dispatch ----

    fn emit_inst(
        &mut self,
        b: BlockId,
        id: ValueId,
        entry_params: bool,
    ) -> Result<(), CompileError> {
        let inst = self.f.inst(id);
        let ty = inst.ty;
        match inst.op.clone() {
            // Entry parameters were materialized by the prologue; phi
            // destinations are written by predecessor edge copies.
            Op::Param(_) | Op::Phi(_) => {
                debug_assert!(entry_params || !matches!(inst.op, Op::Param(_)));
            }
            Op::ConstInt(v) => {
                self.a.mov_ri(Reg::Rax, v);
                self.write(id, Reg::Rax);
            }
            Op::ConstFloat(v) => {
                let v = if ty == Type::F32 { v as f32 as f64 } else { v };
                self.a.mov_ri(Reg::Rax, v.to_bits() as i64);
                self.write(id, Reg::Rax);
            }
            Op::ConstNull => {
                self.a.mov_ri(Reg::Rax, 0);
                self.write(id, Reg::Rax);
            }
            Op::Bin(op, l, r) => self.emit_bin(id, op, l, r, ty),
            Op::Icmp(p, l, r) => {
                self.read_into(l, Reg::Rax);
                let rr = self.read(r, Reg::Rcx);
                self.a.alu_rr(Alu::Cmp, Reg::Rax, rr);
                let cc = match p {
                    ICmp::Eq => Cc::E,
                    ICmp::Ne => Cc::Ne,
                    ICmp::Slt => Cc::L,
                    ICmp::Sle => Cc::Le,
                    ICmp::Sgt => Cc::G,
                    ICmp::Sge => Cc::Ge,
                    ICmp::Ult => Cc::B,
                    ICmp::Ule => Cc::Be,
                    ICmp::Ugt => Cc::A,
                    ICmp::Uge => Cc::Ae,
                };
                self.a.setcc(cc, Reg::Rax);
                self.a.movzx8_rr(Reg::Rax, Reg::Rax);
                self.write(id, Reg::Rax);
            }
            Op::Fcmp(p, l, r) => self.emit_fcmp(id, p, l, r),
            Op::Cast(op, v) => self.emit_cast(id, op, v, ty),
            Op::Select(c, t, e) => {
                self.read_into(c, Reg::Rcx);
                self.read_into(e, Reg::Rax);
                let rt = self.read(t, Reg::Rdx);
                self.a.test_rr(Reg::Rcx, Reg::Rcx);
                self.a.cmovcc(Cc::Ne, Reg::Rax, rt);
                self.write(id, Reg::Rax);
            }
            Op::Alloca { .. } => {
                let off = self.alloca_off[&id];
                self.a.mov_rm(Reg::Rax, Mem::b(Reg::Rbp, -56));
                if off > 0 {
                    self.a.alu_ri(Alu::Add, Reg::Rax, off as i32);
                }
                self.write(id, Reg::Rax);
            }
            Op::Load(p) => {
                if self.static_local_trap(p) {
                    return Ok(());
                }
                self.emit_mem_load(p, ty);
                if matches!(ty, Type::F32 | Type::F64) {
                    self.write_f(id, Xmm::X0);
                } else {
                    self.write(id, Reg::Rax);
                }
            }
            Op::Store { ptr, val } => {
                if self.static_local_trap(ptr) {
                    return Ok(());
                }
                let vty = self.f.inst(val).ty;
                if matches!(vty, Type::Ptr(_)) {
                    self.emit_store_ptr(ptr, val);
                } else {
                    self.emit_store_plain(ptr, val, vty);
                }
            }
            Op::Gep { base, offset } => {
                self.read_into(base, Reg::Rax);
                let r = self.read(offset, Reg::Rcx);
                self.a.alu_rr(Alu::Add, Reg::Rax, r);
                self.write(id, Reg::Rax);
            }
            Op::CpuToGpu(p) => {
                self.read_into(p, Reg::Rax);
                let done = self.a.label();
                self.a.test_rr(Reg::Rax, Reg::Rax);
                self.a.jcc(Cc::E, done);
                self.a.alu_rr(Alu::Cmp, Reg::Rax, Reg::R14);
                self.a.jcc(Cc::B, done);
                self.a.alu_rm(Alu::Cmp, Reg::Rax, self.env(OFF_GPU_BASE));
                self.a.jcc(Cc::Ae, done);
                self.a.mov_ri(Reg::Rcx, SVM_CONST as i64);
                self.a.alu_rr(Alu::Add, Reg::Rax, Reg::Rcx);
                self.a.bind(done);
                self.write(id, Reg::Rax);
            }
            Op::GpuToCpu(p) => {
                self.read_into(p, Reg::Rax);
                let done = self.a.label();
                self.a.alu_rm(Alu::Cmp, Reg::Rax, self.env(OFF_GPU_BASE));
                self.a.jcc(Cc::B, done);
                self.a.mov_ri(Reg::Rcx, SVM_CONST as i64);
                self.a.alu_rr(Alu::Sub, Reg::Rax, Reg::Rcx);
                self.a.bind(done);
                self.write(id, Reg::Rax);
            }
            Op::Call { callee, args } => {
                for (j, &arg) in args.iter().enumerate() {
                    let r = self.read(arg, Reg::Rax);
                    self.a.mov_mr(self.argslot(j as i32), r);
                }
                self.a.mov_rm(Reg::Rax, self.env(OFF_CODE_PTRS));
                self.emit_call_common(Mem::b(Reg::Rax, 8 * callee.0 as i32));
                if ty != Type::Void {
                    self.write(id, Reg::Rax);
                }
            }
            Op::CallVirtual { slot, obj, args, .. } => {
                self.emit_call_virtual(id, slot, obj, &args, ty);
            }
            Op::IntrinsicCall(intr, args) => self.emit_intrinsic(id, intr, &args, ty)?,
            Op::Br(t) => {
                self.emit_edge(b, t);
                let l = self.labels[&t];
                self.a.jmp(l);
            }
            Op::CondBr(c, t, e) => {
                self.read_into(c, Reg::Rdx);
                self.a.test_rr(Reg::Rdx, Reg::Rdx);
                let lelse = self.a.label();
                self.a.jcc(Cc::E, lelse);
                self.emit_edge(b, t);
                let lt = self.labels[&t];
                self.a.jmp(lt);
                self.a.bind(lelse);
                self.emit_edge(b, e);
                let le = self.labels[&e];
                self.a.jmp(le);
            }
            Op::Ret(v) => {
                if let Some(v) = v {
                    self.read_into(v, Reg::Rax);
                }
                self.a.jmp(self.bail);
            }
            Op::Unreachable => self.a.jmp(self.t_unreach),
        }
        Ok(())
    }

    // ---- arithmetic ----

    fn emit_bin(&mut self, id: ValueId, op: BinOp, l: ValueId, r: ValueId, ty: Type) {
        use BinOp::*;
        match op {
            FAdd | FSub | FMul | FDiv => {
                self.read_f(l, Xmm::X0);
                self.read_f(r, Xmm::X1);
                match op {
                    FAdd => self.a.addsd(Xmm::X0, Xmm::X1),
                    FSub => self.a.subsd(Xmm::X0, Xmm::X1),
                    FMul => self.a.mulsd(Xmm::X0, Xmm::X1),
                    _ => self.a.divsd(Xmm::X0, Xmm::X1),
                }
                self.round_f32(ty, Xmm::X0);
                self.write_f(id, Xmm::X0);
            }
            Add | Sub | Mul | And | Or | Xor => {
                self.read_into(l, Reg::Rax);
                let rr = self.read(r, Reg::Rcx);
                match op {
                    Add => self.a.alu_rr(Alu::Add, Reg::Rax, rr),
                    Sub => self.a.alu_rr(Alu::Sub, Reg::Rax, rr),
                    Mul => self.a.imul_rr(Reg::Rax, rr),
                    And => self.a.alu_rr(Alu::And, Reg::Rax, rr),
                    Or => self.a.alu_rr(Alu::Or, Reg::Rax, rr),
                    _ => self.a.alu_rr(Alu::Xor, Reg::Rax, rr),
                }
                self.wrap(Reg::Rax, ty);
                self.write(id, Reg::Rax);
            }
            SDiv | SRem => {
                self.read_into(r, Reg::Rcx);
                self.read_into(l, Reg::Rax);
                self.a.test_rr(Reg::Rcx, Reg::Rcx);
                self.a.jcc(Cc::E, self.t_div);
                // b == -1 bypasses idiv: `INT_MIN / -1` must wrap, not #DE.
                self.a.alu_ri(Alu::Cmp, Reg::Rcx, -1);
                let lgo = self.a.label();
                let ldone = self.a.label();
                self.a.jcc(Cc::Ne, lgo);
                if op == SDiv {
                    self.a.neg(Reg::Rax);
                } else {
                    self.a.mov_ri(Reg::Rax, 0);
                }
                self.a.jmp(ldone);
                self.a.bind(lgo);
                self.a.cqo();
                self.a.idiv(Reg::Rcx);
                if op == SRem {
                    self.a.mov_rr(Reg::Rax, Reg::Rdx);
                }
                self.a.bind(ldone);
                self.wrap(Reg::Rax, ty);
                self.write(id, Reg::Rax);
            }
            UDiv | URem => {
                self.read_into(r, Reg::Rcx);
                self.read_into(l, Reg::Rax);
                self.a.test_rr(Reg::Rcx, Reg::Rcx);
                self.a.jcc(Cc::E, self.t_div);
                self.a.alu_rr(Alu::Xor, Reg::Rdx, Reg::Rdx);
                self.a.div(Reg::Rcx);
                if op == URem {
                    self.a.mov_rr(Reg::Rax, Reg::Rdx);
                }
                self.wrap(Reg::Rax, ty);
                self.write(id, Reg::Rax);
            }
            Shl => {
                self.read_into(r, Reg::Rcx);
                self.read_into(l, Reg::Rax);
                self.a.shl_cl(Reg::Rax);
                self.wrap(Reg::Rax, ty);
                self.write(id, Reg::Rax);
            }
            LShr => {
                self.read_into(r, Reg::Rcx);
                self.read_into(l, Reg::Rax);
                self.mask_low(Reg::Rax, ty);
                self.a.shr_cl(Reg::Rax);
                self.wrap(Reg::Rax, ty);
                self.write(id, Reg::Rax);
            }
            AShr => {
                self.read_into(r, Reg::Rcx);
                self.read_into(l, Reg::Rax);
                self.wrap(Reg::Rax, ty);
                self.a.sar_cl(Reg::Rax);
                self.wrap(Reg::Rax, ty);
                self.write(id, Reg::Rax);
            }
        }
    }

    fn emit_fcmp(&mut self, id: ValueId, p: FCmp, l: ValueId, r: ValueId) {
        // `ucomisd a, b` → ZF/PF/CF encode the ordered comparison; the
        // swapped-operand trick turns Olt/Ole into unordered-safe
        // `seta`/`setae` exactly as `eval_fcmp` defines them.
        let (first, second, cc, parity) = match p {
            FCmp::Oeq => (l, r, Cc::E, true),
            FCmp::One => (l, r, Cc::Ne, false),
            FCmp::Olt => (r, l, Cc::A, false),
            FCmp::Ole => (r, l, Cc::Ae, false),
            FCmp::Ogt => (l, r, Cc::A, false),
            FCmp::Oge => (l, r, Cc::Ae, false),
        };
        self.read_f(first, Xmm::X0);
        self.read_f(second, Xmm::X1);
        self.a.ucomisd(Xmm::X0, Xmm::X1);
        self.a.setcc(cc, Reg::Rax);
        self.a.movzx8_rr(Reg::Rax, Reg::Rax);
        if parity {
            // Oeq must reject NaN (ZF is set on unordered).
            self.a.setcc(Cc::Np, Reg::Rcx);
            self.a.movzx8_rr(Reg::Rcx, Reg::Rcx);
            self.a.alu_rr(Alu::And, Reg::Rax, Reg::Rcx);
        }
        self.write(id, Reg::Rax);
    }

    fn emit_cast(&mut self, id: ValueId, op: CastOp, v: ValueId, to: Type) {
        let from = self.f.inst(v).ty;
        match op {
            CastOp::Zext => {
                self.read_into(v, Reg::Rax);
                self.mask_low(Reg::Rax, from);
                self.wrap(Reg::Rax, to);
                self.write(id, Reg::Rax);
            }
            CastOp::Sext | CastOp::Trunc | CastOp::PtrToInt => {
                self.read_into(v, Reg::Rax);
                self.wrap(Reg::Rax, to);
                self.write(id, Reg::Rax);
            }
            CastOp::IntToPtr | CastOp::PtrCast => {
                self.read_into(v, Reg::Rax);
                self.write(id, Reg::Rax);
            }
            CastOp::FpToSi => {
                self.read_f(v, Xmm::X0);
                self.call_helper(h_f2i as extern "C" fn(f64) -> i64 as usize);
                self.wrap(Reg::Rax, to);
                self.write(id, Reg::Rax);
            }
            CastOp::SiToFp => {
                self.read_into(v, Reg::Rax);
                self.a.cvtsi2sd(Xmm::X0, Reg::Rax);
                self.round_f32(to, Xmm::X0);
                self.write_f(id, Xmm::X0);
            }
            CastOp::FpCast => {
                self.read_f(v, Xmm::X0);
                self.round_f32(to, Xmm::X0);
                self.write_f(id, Xmm::X0);
            }
        }
    }

    // ---- memory ----

    /// If the pointer's *static* type is `local` space, emit the
    /// interpreter's unconditional `WrongAddressSpace { Local, Cpu }`.
    fn static_local_trap(&mut self, p: ValueId) -> bool {
        if self.f.inst(p).ty == Type::Ptr(AddrSpace::Local) {
            self.a.mov_ri(Reg::Rax, SPACE_LOCAL);
            self.a.mov_ri(Reg::Rcx, SPACE_CPU);
            self.a.jmp(self.t_was);
            true
        } else {
            false
        }
    }

    /// Range-classify the address in `rax` for a `size`-byte access and
    /// leave `rdx` = host base, `rcx` = in-bounds offset, jumping to
    /// `lop` for each classified branch. Out-of-bounds falls into
    /// `t_bad` with the interpreter's space payload. Clobbers rcx/rdx.
    fn classify(&mut self, lg: i32, lop: Label) {
        let a = &mut *self.a;
        let slow = a.label();
        let gpu = a.label();
        let bad_cpu = a.label();
        let bad_priv = a.label();
        let bad_gpu = a.label();
        // Fast path: shared CPU range, fused range + bounds check.
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_rr(Alu::Sub, Reg::Rcx, Reg::R14);
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_CPU + 8 * lg));
        a.jcc(Cc::A, slow);
        a.mov_rm(Reg::Rdx, Mem::b(Reg::R15, OFF_REGION_BASE));
        a.jmp(lop);
        a.bind(slow);
        a.alu_rm(Alu::Cmp, Reg::Rax, Mem::b(Reg::R15, OFF_GPU_BASE));
        a.jcc(Cc::Ae, gpu);
        a.alu_rr(Alu::Cmp, Reg::Rax, Reg::R14);
        a.jcc(Cc::Ae, bad_cpu);
        // Private space (everything below CPU_BASE, including null).
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_ri(Alu::Sub, Reg::Rcx, PRIVATE_BASE as i32);
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_PRIV + 8 * lg));
        a.jcc(Cc::A, bad_priv);
        a.mov_rm(Reg::Rdx, Mem::b(Reg::R15, OFF_PRIV_BASE));
        a.jmp(lop);
        a.bind(gpu);
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_rm(Alu::Sub, Reg::Rcx, Mem::b(Reg::R15, OFF_GPU_BASE));
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_CPU + 8 * lg));
        a.jcc(Cc::A, bad_gpu);
        a.mov_rm(Reg::Rdx, Mem::b(Reg::R15, OFF_REGION_BASE));
        a.jmp(lop);
        a.bind(bad_cpu);
        a.mov_ri(Reg::Rcx, SPACE_CPU);
        a.jmp(self.t_bad);
        a.bind(bad_priv);
        a.mov_ri(Reg::Rcx, SPACE_PRIVATE);
        a.jmp(self.t_bad);
        a.bind(bad_gpu);
        a.mov_ri(Reg::Rcx, SPACE_GPU);
        a.jmp(self.t_bad);
    }

    /// Load `ty` from the pointer value `p` into rax (ints, sign-extended
    /// like `mem_read`) or xmm0 (floats, widened to f64).
    fn emit_mem_load(&mut self, p: ValueId, ty: Type) {
        self.read_into(p, Reg::Rax);
        let lop = self.a.label();
        self.classify(log2_size(ty), lop);
        self.a.bind(lop);
        let m = Mem::bi(Reg::Rdx, Reg::Rcx);
        match ty {
            Type::I1 | Type::I8 => self.a.movsx8_rm(Reg::Rax, m),
            Type::I16 => self.a.movsx16_rm(Reg::Rax, m),
            Type::I32 => self.a.movsxd_rm(Reg::Rax, m),
            Type::F32 => {
                self.a.movss_xm(Xmm::X0, m);
                self.a.cvtss2sd(Xmm::X0, Xmm::X0);
            }
            Type::F64 => self.a.movsd_xm(Xmm::X0, m),
            _ => self.a.mov_rm(Reg::Rax, m),
        }
    }

    fn emit_store_plain(&mut self, ptr: ValueId, val: ValueId, vty: Type) {
        let float = matches!(vty, Type::F32 | Type::F64);
        if float {
            self.read_f(val, Xmm::X0);
            if vty == Type::F32 {
                self.a.cvtsd2ss(Xmm::X0, Xmm::X0);
            }
        } else {
            self.read_into(val, Reg::R8);
        }
        self.read_into(ptr, Reg::Rax);
        let lop = self.a.label();
        self.classify(log2_size(vty), lop);
        self.a.bind(lop);
        let m = Mem::bi(Reg::Rdx, Reg::Rcx);
        match vty {
            Type::I1 | Type::I8 => self.a.mov_mr8(m, Reg::R8),
            Type::I16 => self.a.mov_mr16(m, Reg::R8),
            Type::I32 => self.a.mov_mr32(m, Reg::R8),
            Type::F32 => self.a.movss_mx(m, Xmm::X0),
            Type::F64 => self.a.movsd_mx(m, Xmm::X0),
            _ => self.a.mov_mr(m, Reg::R8),
        }
    }

    /// Pointer-typed store: `write_val` checks the *stored value's*
    /// space before resolving the target address when the target is
    /// shared memory (private frames accept any pointer).
    fn emit_store_ptr(&mut self, ptr: ValueId, val: ValueId) {
        self.read_into(val, Reg::R8);
        self.read_into(ptr, Reg::Rax);
        let a_gpu = self.a.label();
        let a_cpu = self.a.label();
        let val_priv = self.a.label();
        let val_gpu = self.a.label();
        let bad_cpu = self.a.label();
        let bad_priv = self.a.label();
        let bad_gpu = self.a.label();
        let done = self.a.label();
        let lg = 3; // pointers are 8 bytes

        let a = &mut *self.a;
        a.alu_rm(Alu::Cmp, Reg::Rax, Mem::b(Reg::R15, OFF_GPU_BASE));
        a.jcc(Cc::Ae, a_gpu);
        a.alu_rr(Alu::Cmp, Reg::Rax, Reg::R14);
        a.jcc(Cc::Ae, a_cpu);
        // Private target: no value-space check (`mem_write` stores raw).
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_ri(Alu::Sub, Reg::Rcx, PRIVATE_BASE as i32);
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_PRIV + 8 * lg));
        a.jcc(Cc::A, bad_priv);
        a.mov_rm(Reg::Rdx, Mem::b(Reg::R15, OFF_PRIV_BASE));
        a.mov_mr(Mem::bi(Reg::Rdx, Reg::Rcx), Reg::R8);
        a.jmp(done);
        // Shared CPU target: value check, then bounds.
        a.bind(a_cpu);
        a.test_rr(Reg::R8, Reg::R8);
        let cpu_ok = a.label();
        a.jcc(Cc::E, cpu_ok);
        a.alu_rr(Alu::Cmp, Reg::R8, Reg::R14);
        a.jcc(Cc::B, val_priv);
        a.alu_rm(Alu::Cmp, Reg::R8, Mem::b(Reg::R15, OFF_GPU_BASE));
        a.jcc(Cc::Ae, val_gpu);
        a.bind(cpu_ok);
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_rr(Alu::Sub, Reg::Rcx, Reg::R14);
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_CPU + 8 * lg));
        a.jcc(Cc::A, bad_cpu);
        a.mov_rm(Reg::Rdx, Mem::b(Reg::R15, OFF_REGION_BASE));
        a.mov_mr(Mem::bi(Reg::Rdx, Reg::Rcx), Reg::R8);
        a.jmp(done);
        // Shared GPU target: same value check, GPU-relative bounds.
        a.bind(a_gpu);
        a.test_rr(Reg::R8, Reg::R8);
        let gpu_ok = a.label();
        a.jcc(Cc::E, gpu_ok);
        a.alu_rr(Alu::Cmp, Reg::R8, Reg::R14);
        a.jcc(Cc::B, val_priv);
        a.alu_rm(Alu::Cmp, Reg::R8, Mem::b(Reg::R15, OFF_GPU_BASE));
        a.jcc(Cc::Ae, val_gpu);
        a.bind(gpu_ok);
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_rm(Alu::Sub, Reg::Rcx, Mem::b(Reg::R15, OFF_GPU_BASE));
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_CPU + 8 * lg));
        a.jcc(Cc::A, bad_gpu);
        a.mov_rm(Reg::Rdx, Mem::b(Reg::R15, OFF_REGION_BASE));
        a.mov_mr(Mem::bi(Reg::Rdx, Reg::Rcx), Reg::R8);
        a.jmp(done);
        // WrongAddressSpace { found, expected: Cpu }.
        a.bind(val_priv);
        a.mov_ri(Reg::Rax, SPACE_PRIVATE);
        a.mov_ri(Reg::Rcx, SPACE_CPU);
        a.jmp(self.t_was);
        a.bind(val_gpu);
        a.mov_ri(Reg::Rax, SPACE_GPU);
        a.mov_ri(Reg::Rcx, SPACE_CPU);
        a.jmp(self.t_was);
        a.bind(bad_cpu);
        a.mov_ri(Reg::Rcx, SPACE_CPU);
        a.jmp(self.t_bad);
        a.bind(bad_priv);
        a.mov_ri(Reg::Rcx, SPACE_PRIVATE);
        a.jmp(self.t_bad);
        a.bind(bad_gpu);
        a.mov_ri(Reg::Rcx, SPACE_GPU);
        a.jmp(self.t_bad);
        a.bind(done);
    }

    // ---- calls ----

    /// Shared call tail: rdi/rsi setup, depth bracket, indirect call
    /// through `target`, trap propagation. `target` must not involve
    /// rdi/rsi.
    fn emit_call_common(&mut self, target: Mem) {
        let a = &mut *self.a;
        a.mov_rr(Reg::Rdi, Reg::R15);
        a.lea(Reg::Rsi, Mem::b(Reg::Rbp, -self.arg_base));
        a.alu_mi(Alu::Add, Mem::b(Reg::R15, OFF_DEPTH), 1);
        a.call_m(target);
        a.alu_mi(Alu::Sub, Mem::b(Reg::R15, OFF_DEPTH), 1);
        a.cmp_mi(Mem::b(Reg::R15, OFF_TRAP_CODE), 0);
        a.jcc(Cc::Ne, self.bail);
    }

    fn emit_call_virtual(
        &mut self,
        id: ValueId,
        slot: u32,
        obj: ValueId,
        args: &[ValueId],
        ty: Type,
    ) {
        // vptr = 8-byte load through the full memory path (same traps as
        // any other load).
        if self.static_local_trap(obj) {
            return;
        }
        self.emit_mem_load(obj, Type::I64);
        // Validate: region-offset aligned to the vtable stride, class in
        // range, magic word intact — else BadVirtualDispatch { vptr }.
        let slot_disp = 16 + 8 * slot as i32;
        let a = &mut *self.a;
        a.mov_rr(Reg::Rcx, Reg::Rax);
        a.alu_rr(Alu::Sub, Reg::Rcx, Reg::R14);
        a.mov_rr(Reg::Rdx, Reg::Rcx);
        a.alu_ri(Alu::And, Reg::Rdx, 127);
        a.jcc(Cc::Ne, self.t_bvd);
        a.mov_rr(Reg::Rdx, Reg::Rcx);
        a.shr_i(Reg::Rdx, 7);
        a.alu_rm(Alu::Cmp, Reg::Rdx, Mem::b(Reg::R15, OFF_CLASS_COUNT));
        a.jcc(Cc::Ae, self.t_bvd);
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_CPU + 24));
        a.jcc(Cc::A, self.t_bvd);
        a.mov_rm(Reg::Rdx, Mem::b(Reg::R15, OFF_REGION_BASE));
        a.mov_rm(Reg::R8, Mem::bi(Reg::Rdx, Reg::Rcx));
        a.mov_ri(Reg::R9, VTABLE_MAGIC);
        a.alu_rr(Alu::Cmp, Reg::R8, Reg::R9);
        a.jcc(Cc::Ne, self.t_bvd);
        // Slot read is a plain region read in the interpreter — bounds
        // failures surface as BadAddress { slot address, Cpu }.
        a.alu_ri(Alu::Add, Reg::Rcx, slot_disp);
        a.alu_ri(Alu::Add, Reg::Rax, slot_disp);
        a.alu_rm(Alu::Cmp, Reg::Rcx, Mem::b(Reg::R15, OFF_LIMIT_CPU + 24));
        let slot_oob = a.label();
        a.jcc(Cc::A, slot_oob);
        a.mov_rm(Reg::R8, Mem::bi(Reg::Rdx, Reg::Rcx));
        a.alu_ri(Alu::Sub, Reg::Rax, slot_disp);
        // A function id outside the module can only come from IR that
        // scribbled over an installed vtable; refuse to jump to garbage.
        a.alu_rm(Alu::Cmp, Reg::R8, Mem::b(Reg::R15, OFF_NFUNCS));
        a.jcc(Cc::Ae, self.t_bvd);
        a.mov_mr(Mem::b(Reg::Rbp, -64), Reg::R8);
        let after = a.label();
        a.jmp(after);
        a.bind(slot_oob);
        a.mov_ri(Reg::Rcx, SPACE_CPU);
        a.jmp(self.t_bad);
        a.bind(after);
        // Stage `this` + declared arguments, then call through the table.
        let r = self.read(obj, Reg::Rax);
        self.a.mov_mr(self.argslot(0), r);
        for (j, &arg) in args.iter().enumerate() {
            let r = self.read(arg, Reg::Rax);
            self.a.mov_mr(self.argslot(j as i32 + 1), r);
        }
        self.a.mov_rm(Reg::Rax, self.env(OFF_CODE_PTRS));
        self.a.mov_rm(Reg::Rcx, Mem::b(Reg::Rbp, -64));
        self.emit_call_common(Mem::bi8(Reg::Rax, Reg::Rcx, 0));
        if ty != Type::Void {
            self.write(id, Reg::Rax);
        }
    }

    /// `movabs rax, helper; call rax` — process-static Rust helpers
    /// following the C ABI (args already staged in xmm0/xmm1 or rdi/rsi).
    fn call_helper(&mut self, addr: usize) {
        self.a.mov_ri(Reg::Rax, addr as i64);
        self.a.call_r(Reg::Rax);
    }

    // ---- intrinsics ----

    fn emit_intrinsic(
        &mut self,
        id: ValueId,
        intr: Intrinsic,
        args: &[ValueId],
        ty: Type,
    ) -> Result<(), CompileError> {
        use Intrinsic::*;
        let arg = |i: usize| -> Result<ValueId, CompileError> {
            args.get(i).copied().ok_or(CompileError::MalformedIntrinsic(intr.name()))
        };
        match intr {
            GlobalId | GlobalSize | LocalId | GroupId => {
                let off = match intr {
                    GlobalId => OFF_GLOBAL_ID,
                    GlobalSize => OFF_GLOBAL_SIZE,
                    LocalId => OFF_LOCAL_ID,
                    _ => OFF_GROUP_ID,
                };
                self.a.mov_rm(Reg::Rax, self.env(off));
                self.write(id, Reg::Rax);
            }
            Barrier => {
                if ty != Type::Void {
                    self.a.mov_ri(Reg::Rax, 0);
                    self.write(id, Reg::Rax);
                }
            }
            Sqrt => {
                self.read_f(arg(0)?, Xmm::X0);
                self.a.sqrtsd(Xmm::X0, Xmm::X0);
                self.round_f32(Type::F32, Xmm::X0);
                self.write_f(id, Xmm::X0);
            }
            FAbs => {
                self.read_f(arg(0)?, Xmm::X0);
                self.a.movq_rx(Reg::Rax, Xmm::X0);
                self.a.mov_ri(Reg::Rcx, i64::MAX);
                self.a.alu_rr(Alu::And, Reg::Rax, Reg::Rcx);
                self.a.movq_xr(Xmm::X0, Reg::Rax);
                self.round_f32(Type::F32, Xmm::X0);
                self.write_f(id, Xmm::X0);
            }
            Floor | Exp => {
                self.read_f(arg(0)?, Xmm::X0);
                let h = if intr == Floor { h_floor } else { h_exp };
                self.call_helper(h as extern "C" fn(f64) -> f64 as usize);
                self.write_f(id, Xmm::X0);
            }
            Pow | FMin | FMax => {
                self.read_f(arg(0)?, Xmm::X0);
                self.read_f(arg(1)?, Xmm::X1);
                let h = match intr {
                    Pow => h_pow,
                    FMin => h_fmin,
                    _ => h_fmax,
                };
                self.call_helper(h as extern "C" fn(f64, f64) -> f64 as usize);
                self.write_f(id, Xmm::X0);
            }
            SMin | SMax => {
                self.read_into(arg(0)?, Reg::Rax);
                let r = self.read(arg(1)?, Reg::Rcx);
                self.a.alu_rr(Alu::Cmp, Reg::Rax, r);
                self.a.cmovcc(if intr == SMin { Cc::G } else { Cc::L }, Reg::Rax, r);
                self.write(id, Reg::Rax);
            }
            DeviceMalloc => {
                self.read_into(arg(0)?, Reg::Rsi);
                self.a.mov_rr(Reg::Rdi, Reg::R15);
                self.call_helper(h_device_malloc as extern "C" fn(*mut Env, i64) -> u64 as usize);
                self.write(id, Reg::Rax);
            }
            WlPush => {
                self.read_into(arg(0)?, Reg::Rsi);
                self.a.mov_rr(Reg::Rdi, Reg::R15);
                self.call_helper(h_wl_push as extern "C" fn(*mut Env, i64) as usize);
                // A null sink records TRAP_WL_PUSH; bail like a trapped
                // callee.
                self.a.cmp_mi(self.env(OFF_TRAP_CODE), 0);
                self.a.jcc(Cc::Ne, self.bail);
            }
            AtomicAddI32 | AtomicMinI32 | AtomicCasI32 => {
                self.emit_atomic(id, intr, args)?;
            }
        }
        Ok(())
    }

    /// i32 atomics: classify like a 4-byte access, then a `lock`-prefixed
    /// sequence whose final memory bytes and returned old value match
    /// `apply_rmw` over sign-extended i64 operands. `AtomicCasI32` only
    /// ever runs on the serial path (it is a gated op), so a plain
    /// read-modify-write replicates `apply_rmw`'s full-width compare.
    fn emit_atomic(
        &mut self,
        id: ValueId,
        intr: Intrinsic,
        args: &[ValueId],
    ) -> Result<(), CompileError> {
        let arg = |i: usize| -> Result<ValueId, CompileError> {
            args.get(i).copied().ok_or(CompileError::MalformedIntrinsic(intr.name()))
        };
        let ptr = arg(0)?;
        if self.static_local_trap(ptr) {
            return Ok(());
        }
        self.read_into(arg(1)?, Reg::R9);
        if intr == Intrinsic::AtomicCasI32 {
            self.read_into(arg(2)?, Reg::R10);
        }
        self.read_into(ptr, Reg::Rax);
        let lop = self.a.label();
        self.classify(2, lop);
        self.a.bind(lop);
        let m = Mem::bi(Reg::Rdx, Reg::Rcx);
        let a = &mut *self.a;
        match intr {
            Intrinsic::AtomicAddI32 => {
                a.mov_rr32(Reg::R8, Reg::R9);
                a.lock_xadd32(m, Reg::R8);
                a.movsxd_rr(Reg::Rax, Reg::R8);
            }
            Intrinsic::AtomicMinI32 => {
                // Skip the store when no improvement — byte-identical to
                // the interpreter's unconditional write of min(old, a).
                let retry = a.label();
                let ldone = a.label();
                a.movsxd_rm(Reg::Rax, m);
                a.bind(retry);
                a.alu_rr(Alu::Cmp, Reg::R9, Reg::Rax);
                a.jcc(Cc::Ge, ldone);
                a.mov_rr32(Reg::R8, Reg::R9);
                a.lock_cmpxchg32(m, Reg::R8);
                a.jcc(Cc::E, ldone);
                a.movsxd_rr(Reg::Rax, Reg::Rax);
                a.jmp(retry);
                a.bind(ldone);
            }
            _ => {
                let ldone = a.label();
                a.movsxd_rm(Reg::Rax, m);
                a.alu_rr(Alu::Cmp, Reg::Rax, Reg::R9);
                a.jcc(Cc::Ne, ldone);
                a.mov_mr32(m, Reg::R10);
                a.bind(ldone);
            }
        }
        self.write(id, Reg::Rax);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_ir::builder::FunctionBuilder;

    #[test]
    fn lowers_a_small_module() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("add", vec![Type::I64, Type::I64], Type::I64);
        let a = fb.param(0);
        let b = fb.param(1);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        m.add_function(fb.build());
        let lowered = lower_module(&m).unwrap();
        assert_eq!(lowered.offsets.len(), 1);
        assert_eq!(lowered.offsets[0], 0);
        assert!(!lowered.code.is_empty());
        // Entry must start with `push rbp`.
        assert_eq!(lowered.code[0], 0x55);
    }

    #[test]
    fn function_entries_are_aligned() {
        let mut m = Module::new();
        for i in 0..3 {
            let mut fb = FunctionBuilder::new(format!("f{i}"), vec![Type::I64], Type::I64);
            let a = fb.param(0);
            let c = fb.i64(i);
            let s = fb.bin(BinOp::Add, a, c);
            fb.ret(Some(s));
            m.add_function(fb.build());
        }
        let lowered = lower_module(&m).unwrap();
        for off in lowered.offsets {
            assert_eq!(off % 16, 0);
        }
    }
}
