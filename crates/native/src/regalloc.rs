//! Linear-scan register allocation over linearized SSA.
//!
//! The lowering keeps every SSA value in a fixed 8-byte frame slot; this
//! pass promotes the hottest integer/pointer values into the callee-saved
//! registers the code generator reserves for allocation (`rbx`, `r12`,
//! `r13` — `r14`/`r15` are pinned to `CPU_BASE` and the environment, and
//! everything caller-saved is codegen scratch). Values that do not get a
//! register simply stay in their slot, so "spilling" is free.
//!
//! Intervals are conservative: blocks are linearized in reverse postorder,
//! every def/use position widens the value's single `[start, end]` range,
//! and per-block liveness (`live_in`/`live_out` from `concord-ir`)
//! stretches the range across whole blocks where the value is live. Holes
//! are not modeled — an over-wide interval can only cost a register, not
//! correctness. The scan itself is the classic Poletto–Sarkar loop:
//! intervals in start order, expire the active set, take a free register
//! or skip.

use concord_ir::analysis::{liveness, reverse_postorder};
use concord_ir::types::Type;
use concord_ir::{Function, Op, ValueId};
use std::collections::HashMap;

/// Number of allocatable registers (must match `lower::ALLOC_REGS`).
pub const NUM_ALLOC_REGS: usize = 3;

/// Allocation result: for each value id, `Some(i)` = allocatable register
/// `i`, `None` = frame slot.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Per-value register assignment.
    pub reg_of: Vec<Option<u8>>,
}

fn eligible(ty: Type) -> bool {
    !matches!(ty, Type::F32 | Type::F64 | Type::Void)
}

/// Compute live intervals and run linear scan for `f`.
pub fn allocate(f: &Function) -> Allocation {
    let rpo = reverse_postorder(f);
    let live = liveness(f);
    let nvals = f.insts.len();

    // Linear position of every instruction, plus block extents.
    let mut pos_of: HashMap<ValueId, u32> = HashMap::new();
    let mut block_range: HashMap<concord_ir::BlockId, (u32, u32)> = HashMap::new();
    let mut pos = 0u32;
    for &b in &rpo {
        let start = pos;
        for &id in &f.block(b).insts {
            pos_of.insert(id, pos);
            pos += 1;
        }
        block_range.insert(b, (start, pos.max(start + 1) - 1));
    }

    // One conservative interval per value.
    let mut start = vec![u32::MAX; nvals];
    let mut end = vec![0u32; nvals];
    let mut widen = |v: ValueId, at: u32| {
        let i = v.0 as usize;
        start[i] = start[i].min(at);
        end[i] = end[i].max(at);
    };
    for &b in &rpo {
        let (bstart, bend) = block_range[&b];
        for &id in &f.block(b).insts {
            let p = pos_of[&id];
            widen(id, p);
            for u in f.inst(id).op.operands() {
                widen(u, p);
            }
        }
        for &v in &live.live_in[&b] {
            widen(v, bstart);
        }
        for &v in &live.live_out[&b] {
            widen(v, bend);
        }
    }

    // Values with a single position never need a register; values that are
    // float-typed or never defined stay in slots.
    let mut intervals: Vec<(u32, u32, usize)> = (0..nvals)
        .filter(|&i| {
            start[i] != u32::MAX
                && end[i] > start[i]
                && eligible(f.inst(ValueId(i as u32)).ty)
                // Allocas are cheap rematerializations; slots are fine and
                // keeping them out frees registers for loop counters.
                && !matches!(f.inst(ValueId(i as u32)).op, Op::Alloca { .. })
        })
        .map(|i| (start[i], end[i], i))
        .collect();
    intervals.sort_unstable();

    let mut reg_of: Vec<Option<u8>> = vec![None; nvals];
    let mut free: Vec<u8> = (0..NUM_ALLOC_REGS as u8).rev().collect();
    let mut active: Vec<(u32, u8)> = Vec::new(); // (end, reg)
    for (s, e, i) in intervals {
        active.retain(|&(aend, reg)| {
            if aend < s {
                free.push(reg);
                false
            } else {
                true
            }
        });
        if let Some(reg) = free.pop() {
            reg_of[i] = Some(reg);
            active.push((e, reg));
        }
    }
    Allocation { reg_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_ir::builder::FunctionBuilder;
    use concord_ir::inst::BinOp;

    #[test]
    fn hot_values_get_registers_and_floats_do_not() {
        let mut fb = FunctionBuilder::new("t", vec![Type::I64, Type::F64], Type::I64);
        let a = fb.param(0);
        let fp = fb.param(1);
        let one = fb.i64(1);
        let s1 = fb.bin(BinOp::Add, a, one);
        let s2 = fb.bin(BinOp::Add, s1, a);
        let _f2 = fb.bin(BinOp::FAdd, fp, fp);
        let s3 = fb.bin(BinOp::Add, s2, a);
        fb.ret(Some(s3));
        let f = fb.build();
        let alloc = allocate(&f);
        // `a` spans almost the whole function: it must hold a register.
        assert!(alloc.reg_of[a.0 as usize].is_some());
        // The float parameter must not.
        assert_eq!(alloc.reg_of[fp.0 as usize], None);
        // No register index exceeds the pool.
        for r in alloc.reg_of.iter().flatten() {
            assert!((*r as usize) < NUM_ALLOC_REGS);
        }
    }

    #[test]
    fn disjoint_intervals_share_registers() {
        let mut fb = FunctionBuilder::new("t", vec![Type::I64], Type::I64);
        let p = fb.param(0);
        // Six sequential chains; far more values than registers.
        let mut cur = p;
        for _ in 0..6 {
            let c = fb.i64(3);
            let t = fb.bin(BinOp::Mul, cur, c);
            cur = fb.bin(BinOp::Add, t, c);
        }
        fb.ret(Some(cur));
        let f = fb.build();
        let alloc = allocate(&f);
        // The allocation must stay within the pool and be internally
        // consistent (no two overlapping intervals on one register) —
        // verified indirectly by the end-to-end execution tests; here we
        // just require it to terminate and produce in-range registers.
        for r in alloc.reg_of.iter().flatten() {
            assert!((*r as usize) < NUM_ALLOC_REGS);
        }
    }
}
