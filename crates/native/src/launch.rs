//! Launch drivers: run compiled kernels over the shared region with the
//! CPU simulator's iteration-space chunking, so shared-memory results and
//! traps are bit-identical to the interpreter backend.
//!
//! Determinism model
//!
//! The executor reuses [`concord_cpusim::span_chunks`] with the same chunk
//! count (the simulated core count), so chunk `k` covers exactly the same
//! work-item ids as it would under `CpuSim`. Kernels with order-dependent
//! operations (`device_malloc`, compare-and-swap — see
//! [`concord_ir::analysis::uses_gated_ops`]) run chunks serially in order,
//! like the simulator's serial path. All other kernels run chunks across
//! host threads writing the live region directly: the per-workload
//! commutativity audit in DESIGN.md shows this commits the same final
//! bytes as the simulator's log-replay merge, and hardware `lock`-prefixed
//! atomics match `apply_rmw` byte-for-byte. On a trap, the lowest-index
//! trapped chunk's trap is reported (first-trap-wins), matching serial
//! order; region bytes after a trapped *parallel* launch are unspecified
//! (the simulator commits chunk logs up to the trapped chunk, native has
//! already written live) — callers treat a trapped launch as poisoned
//! either way.

use concord_cpusim::{span_chunks, CpuSim};
use concord_ir::analysis::uses_gated_ops;
use concord_ir::eval::Trap;
use concord_ir::{FuncId, Module};
use concord_svm::{CpuAddr, SharedRegion};

use crate::env::{Env, PRIVATE_BYTES};
use crate::NativeModule;

/// Signature of every generated function: `rdi` = environment, `rsi` =
/// pointer to the raw (bit-pattern) argument words, returns raw bits.
type JitFn = unsafe extern "sysv64" fn(*mut Env, *const u64) -> u64;

/// Reconstruct a callable entry from an absolute code address.
fn jit(addr: u64) -> JitFn {
    // SAFETY: addresses come from `NativeModule::code_ptrs`, which point at
    // function entries inside a live R+X `ExecBuf`. Calling the result is
    // itself unsafe; this only forms the pointer.
    unsafe { std::mem::transmute::<usize, JitFn>(addr as usize) }
}

/// Statistics from one native launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchStats {
    /// IR instructions charged against the step budget (exact on normal
    /// completion; blocks are pre-charged, so a mid-block trap may count a
    /// few instructions that never retired).
    pub insts: u64,
}

/// Per-core private memories plus launch configuration: the native
/// equivalent of `CpuSim`'s execution state. Private memories persist
/// across launches (uncleared), exactly as the simulator's do.
pub struct Executor {
    privates: Vec<Vec<u8>>,
    cores: usize,
    /// OS threads used to execute chunks of non-gated kernels. Purely a
    /// wall-clock knob: results are identical for every value.
    pub host_threads: usize,
    /// Per-work-item instruction budget (runaway-loop guard), matching
    /// `CpuSim::step_budget_per_item`.
    pub step_budget: i64,
}

impl Executor {
    /// Build an executor with `cores` chunk lanes (one private memory
    /// each) executing on up to `host_threads` OS threads.
    pub fn new(cores: usize, host_threads: usize) -> Executor {
        let cores = cores.max(1);
        Executor {
            privates: (0..cores).map(|_| vec![0u8; PRIVATE_BYTES]).collect(),
            cores,
            host_threads: host_threads.max(1),
            step_budget: 200_000_000,
        }
    }

    /// The chunk-lane count this executor was built with.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Execute the sub-range `[lo, hi)` of a `parallel_for_hetero` whose
    /// full iteration space is `[0, grid)`: iteration `i` calls
    /// `func(body, i)` with global work-item id `i`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised by the kernel; under host parallelism the
    /// lowest-work-item trap wins, as it would serially.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_for(
        &mut self,
        region: &mut SharedRegion,
        nm: &NativeModule,
        module: &Module,
        func: FuncId,
        body: CpuAddr,
        lo: u32,
        hi: u32,
        grid: u32,
    ) -> Result<LaunchStats, Trap> {
        let name = &module.function(func).name;
        let entry = jit(nm.code_ptrs[func.0 as usize]);
        let spans = span_chunks(lo, hi, self.cores);
        if uses_gated_ops(module, &[func]) {
            let mut stats = LaunchStats::default();
            for (core_idx, &(c_lo, c_hi)) in spans.iter().enumerate() {
                let run = self.run_chunk(region, nm, entry, name, core_idx, c_lo, c_hi, grid, body);
                stats.insts += run.1;
                if let Some(t) = run.0 {
                    return Err(t);
                }
            }
            return Ok(stats);
        }
        let (rbase, rlen) = region.raw_parts_mut();
        let arg0 = vec![body; spans.len()];
        let out = self.run_chunks_parallel(rbase, rlen, nm, entry, name, &spans, &arg0, grid);
        let mut stats = LaunchStats::default();
        for (trap, insts) in out {
            stats.insts += insts;
            if let Some(t) = trap {
                return Err(t);
            }
        }
        Ok(stats)
    }

    /// Execute one round of `parallel_worklist_hetero` over the frontier
    /// sub-range `[lo, hi)` of a `[0, grid)` frontier: work-item `i`
    /// calls `func(body, items[i - lo])` with global work-item id `i`,
    /// and `push`ed items are appended to `pushes` in fixed (chunk,
    /// work-item, program) order. The caller merges segments into the
    /// next frontier by sorting and deduplicating, so frontier contents
    /// match the simulators' exactly.
    ///
    /// # Errors
    ///
    /// Any [`Trap`]; under host parallelism the lowest-work-item trap
    /// wins, as it would serially, and a trap discards the round's
    /// pushes.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_worklist(
        &mut self,
        region: &mut SharedRegion,
        nm: &NativeModule,
        module: &Module,
        func: FuncId,
        body: CpuAddr,
        lo: u32,
        hi: u32,
        grid: u32,
        items: &[i32],
        pushes: &mut Vec<i32>,
    ) -> Result<LaunchStats, Trap> {
        assert_eq!(items.len() as u32, hi - lo, "one frontier item per work-item");
        let name = &module.function(func).name;
        let entry = jit(nm.code_ptrs[func.0 as usize]);
        let spans = span_chunks(lo, hi, self.cores);
        let mut stats = LaunchStats::default();
        let mut seg: Vec<i32> = Vec::new();
        if uses_gated_ops(module, &[func]) {
            for (core_idx, &(c_lo, c_hi)) in spans.iter().enumerate() {
                let (rbase, rlen) = region.raw_parts_mut();
                let privm = &mut self.privates[core_idx];
                let mut env = Env::new(
                    (rbase, rlen),
                    (privm.as_mut_ptr(), privm.len()),
                    nm.class_count,
                    &nm.code_ptrs,
                );
                let (trap, insts) = run_span_wl(
                    &mut env,
                    entry,
                    name,
                    c_lo,
                    c_hi,
                    grid,
                    body,
                    self.step_budget,
                    lo,
                    items,
                    &mut seg,
                );
                stats.insts += insts;
                if let Some(t) = trap {
                    return Err(t);
                }
            }
        } else {
            let (rbase, rlen) = region.raw_parts_mut();
            let privs: Vec<(usize, usize)> =
                self.privates.iter_mut().map(|p| (p.as_mut_ptr() as usize, p.len())).collect();
            let region_base = rbase as usize;
            let budget = self.step_budget;
            let class_count = nm.class_count;
            let code_ptrs = &nm.code_ptrs;
            let out = concord_pool::map(self.host_threads, spans.len(), |idx| {
                let (c_lo, c_hi) = spans[idx];
                let (pbase, plen) = privs[idx];
                let mut env = Env::new(
                    (region_base as *mut u8, rlen),
                    (pbase as *mut u8, plen),
                    class_count,
                    code_ptrs,
                );
                let mut cseg: Vec<i32> = Vec::new();
                let (trap, insts) = run_span_wl(
                    &mut env, entry, name, c_lo, c_hi, grid, body, budget, lo, items, &mut cseg,
                );
                (trap, insts, cseg)
            });
            for (trap, insts, mut cseg) in out {
                stats.insts += insts;
                if let Some(t) = trap {
                    return Err(t);
                }
                seg.append(&mut cseg);
            }
        }
        pushes.append(&mut seg);
        Ok(stats)
    }

    /// Execute `parallel_reduce_hetero(n, body)`: each chunk lane folds
    /// its range into a private copy of the body held in its `scratch`
    /// slot, then the copies are joined into the original sequentially —
    /// the same schedule as [`CpuSim::parallel_reduce`], so float
    /// accumulation order (and hence the bits of the total) is identical.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised by the kernel or joins.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_reduce(
        &mut self,
        region: &mut SharedRegion,
        nm: &NativeModule,
        module: &Module,
        func: FuncId,
        join: FuncId,
        body: CpuAddr,
        body_size: u64,
        n: u32,
        scratch: &[CpuAddr],
    ) -> Result<LaunchStats, Trap> {
        let slots = self.cores.min(scratch.len());
        assert!(slots >= 1, "need at least one scratch slot");
        let name = &module.function(func).name;
        let entry = jit(nm.code_ptrs[func.0 as usize]);
        let spans = span_chunks(0, n, slots);
        CpuSim::stage_reduce(region, body, body_size, &scratch[..slots])?;
        let mut stats = LaunchStats::default();
        if uses_gated_ops(module, &[func, join]) {
            for (core_idx, (&acc, &(c_lo, c_hi))) in
                scratch.iter().take(slots).zip(spans.iter()).enumerate()
            {
                let run = self.run_chunk(region, nm, entry, name, core_idx, c_lo, c_hi, n, acc);
                stats.insts += run.1;
                if let Some(t) = run.0 {
                    return Err(t);
                }
            }
        } else {
            let (rbase, rlen) = region.raw_parts_mut();
            let arg0 = scratch[..slots].to_vec();
            let out = self.run_chunks_parallel(rbase, rlen, nm, entry, name, &spans, &arg0, n);
            for (trap, insts) in out {
                stats.insts += insts;
                if let Some(t) = trap {
                    return Err(t);
                }
            }
        }
        // Sequential join on lane 0: body.join(acc_k) for each slot, with
        // the simulator's host-call work-item ids (all zero).
        let join_name = &module.function(join).name;
        let jfn = jit(nm.code_ptrs[join.0 as usize]);
        let (rbase, rlen) = region.raw_parts_mut();
        let privm = &mut self.privates[0];
        let mut env = Env::new(
            (rbase, rlen),
            (privm.as_mut_ptr(), privm.len()),
            nm.class_count,
            &nm.code_ptrs,
        );
        for &slot in scratch.iter().take(slots) {
            env.reset_item(0, 0, self.step_budget);
            let args = [body.0, slot.0];
            // SAFETY: `jfn` is a generated entry of `nm`; env and args obey
            // the generated calling convention.
            unsafe { jfn(&mut env, args.as_ptr()) };
            stats.insts += (self.step_budget - env.steps.max(0)) as u64;
            if let Some(t) = env.take_trap(join_name) {
                return Err(t);
            }
        }
        Ok(stats)
    }

    /// Run one chunk in-order on lane `core_idx` against the live region
    /// (the serial path for gated kernels, and the building block the
    /// parallel path replicates per host thread).
    #[allow(clippy::too_many_arguments)]
    fn run_chunk(
        &mut self,
        region: &mut SharedRegion,
        nm: &NativeModule,
        entry: JitFn,
        name: &str,
        core_idx: usize,
        c_lo: u32,
        c_hi: u32,
        grid: u32,
        arg0: CpuAddr,
    ) -> (Option<Trap>, u64) {
        let (rbase, rlen) = region.raw_parts_mut();
        let privm = &mut self.privates[core_idx];
        let mut env = Env::new(
            (rbase, rlen),
            (privm.as_mut_ptr(), privm.len()),
            nm.class_count,
            &nm.code_ptrs,
        );
        run_span(&mut env, entry, name, c_lo, c_hi, grid, arg0, self.step_budget)
    }

    /// Fan chunks out over host threads, each with its own lane's private
    /// memory, all writing the live region. Returns per-chunk (trap,
    /// insts) in chunk order.
    #[allow(clippy::too_many_arguments)]
    fn run_chunks_parallel(
        &mut self,
        rbase: *mut u8,
        rlen: usize,
        nm: &NativeModule,
        entry: JitFn,
        name: &str,
        spans: &[(u32, u32)],
        arg0: &[CpuAddr],
        grid: u32,
    ) -> Vec<(Option<Trap>, u64)> {
        let privs: Vec<(usize, usize)> =
            self.privates.iter_mut().map(|p| (p.as_mut_ptr() as usize, p.len())).collect();
        let region_base = rbase as usize;
        let budget = self.step_budget;
        let class_count = nm.class_count;
        let code_ptrs = &nm.code_ptrs;
        concord_pool::map(self.host_threads, spans.len(), |idx| {
            let (c_lo, c_hi) = spans[idx];
            let (pbase, plen) = privs[idx];
            // Each chunk gets its own Env over its own private memory; the
            // region pointer is shared, and cross-chunk shared writes are
            // confined to generated code (same-value or lock-atomic — see
            // the module docs).
            let mut env = Env::new(
                (region_base as *mut u8, rlen),
                (pbase as *mut u8, plen),
                class_count,
                code_ptrs,
            );
            run_span(&mut env, entry, name, c_lo, c_hi, grid, arg0[idx], budget)
        })
    }
}

/// [`run_span`] with a worklist push sink bound: work-item `i` receives
/// frontier item `items[i - lo]` as its argument (sign-extended, as the
/// interpreter passes it) and `push`es land in `seg`.
#[allow(clippy::too_many_arguments)]
fn run_span_wl(
    env: &mut Env,
    entry: JitFn,
    name: &str,
    c_lo: u32,
    c_hi: u32,
    grid: u32,
    arg0: CpuAddr,
    budget: i64,
    lo: u32,
    items: &[i32],
    seg: &mut Vec<i32>,
) -> (Option<Trap>, u64) {
    env.wl = seg as *mut Vec<i32>;
    let mut insts = 0u64;
    let mut trap = None;
    for i in c_lo..c_hi {
        env.reset_item(i as i64, grid as i64, budget);
        let item = items[(i - lo) as usize];
        let args = [arg0.0, item as i64 as u64];
        // SAFETY: `entry` is a generated function of the module whose
        // `code_ptrs` this env carries; the args array outlives the call
        // and the generated code only reads `params.len() <= 2` words.
        unsafe { entry(&mut *env, args.as_ptr()) };
        insts += (budget - env.steps.max(0)) as u64;
        if let Some(t) = env.take_trap(name) {
            trap = Some(t);
            break;
        }
    }
    env.wl = std::ptr::null_mut();
    (trap, insts)
}

/// Run work items `[c_lo, c_hi)` through `entry`, stopping at the first
/// trap. Returns the trap (if any) and instructions charged.
#[allow(clippy::too_many_arguments)]
fn run_span(
    env: &mut Env,
    entry: JitFn,
    name: &str,
    c_lo: u32,
    c_hi: u32,
    grid: u32,
    arg0: CpuAddr,
    budget: i64,
) -> (Option<Trap>, u64) {
    let mut insts = 0u64;
    for i in c_lo..c_hi {
        env.reset_item(i as i64, grid as i64, budget);
        let args = [arg0.0, i as u64];
        // SAFETY: `entry` is a generated function of the module whose
        // `code_ptrs` this env carries; the args array outlives the call
        // and the generated code only reads `params.len() <= 2` words.
        unsafe { entry(&mut *env, args.as_ptr()) };
        insts += (budget - env.steps.max(0)) as u64;
        if let Some(t) = env.take_trap(name) {
            return (Some(t), insts);
        }
    }
    (None, insts)
}
