//! # concord-native
//!
//! x86-64 JIT backend: lowers optimized `concord-ir` straight to machine
//! code in an executable buffer and runs `parallel_for` /
//! `parallel_reduce` launches over the shared region at native speed,
//! with the CPU simulator's exact semantics — same traps, same
//! iteration-space chunking, same reduction join order, byte-identical
//! shared-memory results.
//!
//! The backend exists so the runtime can measure what the paper's CPU
//! baseline *actually costs* in wall-clock terms, instead of inferring it
//! from the simulator's timing model: the simulator interprets IR at
//! hundreds of nanoseconds per instruction, the JIT executes it at
//! native throughput, and both must agree bit-for-bit on every output.
//!
//! Pipeline: [`compile`] runs the lowering pass (linear-scan register
//! allocation over a conservative liveness analysis, then one-pass code
//! emission
//! per function), seals the image in an executable W^X buffer, and
//! resolves per-function entry addresses. [`Executor`] then drives
//! launches, fanning non-gated kernels out over host threads via
//! `concord-pool`.
//!
//! The backend only targets x86-64 Linux; everywhere else [`supported`]
//! returns `false` and [`compile`] fails with
//! [`CompileError::Unsupported`] so callers can fall back to the
//! interpreter.

mod asm;
mod buffer;
pub mod env;
pub mod launch;
mod lower;
mod regalloc;

use buffer::ExecBuf;
use concord_ir::Module;

pub use env::{Env, MAX_DEPTH, PRIVATE_BASE, PRIVATE_BYTES};
pub use launch::{Executor, LaunchStats};

/// Whether the native backend can execute on this build target.
pub const fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// Why a module could not be compiled to native code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The backend is not built for this target (needs x86-64 Linux).
    Unsupported,
    /// A function's frame (allocas + spill slots + argument area) exceeds
    /// the encodable displacement range; names the function.
    TooLarge(String),
    /// An intrinsic call had fewer arguments than the intrinsic requires
    /// (malformed IR that the verifier would reject); names the intrinsic.
    MalformedIntrinsic(&'static str),
    /// The kernel refused an executable mapping (address space exhausted
    /// or a hardened configuration denying anonymous executable memory).
    ExecMap,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unsupported => {
                write!(f, "native backend requires x86-64 Linux")
            }
            CompileError::TooLarge(name) => {
                write!(f, "function `{name}` exceeds native frame limits")
            }
            CompileError::MalformedIntrinsic(name) => {
                write!(f, "intrinsic `{name}` called with too few arguments")
            }
            CompileError::ExecMap => {
                write!(f, "could not map executable memory for generated code")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A module compiled to native code: the executable image plus the
/// absolute entry address of every function, indexed by `FuncId`.
///
/// Compiled modules are immutable and process-wide (helper addresses are
/// baked in, per-launch state lives in [`Env`]), so they are safely
/// shareable — e.g. through the runtime's JIT artifact cache.
#[derive(Debug)]
pub struct NativeModule {
    /// Keeps the R+X mapping alive; `code_ptrs` point into it.
    #[allow(dead_code)]
    buf: ExecBuf,
    pub(crate) code_ptrs: Vec<u64>,
    pub(crate) class_count: u64,
    code_len: usize,
}

impl NativeModule {
    /// Generated machine-code size in bytes (for reporting).
    pub fn code_len(&self) -> usize {
        self.code_len
    }
}

/// Compile every function of `module` to native code.
///
/// The module must be in the optimized post-phi-elimination form the
/// simulators execute (block-local value numbering, phis only at block
/// heads) — exactly what `concord-compiler` produces.
///
/// # Errors
///
/// [`CompileError::Unsupported`] off x86-64 Linux; [`CompileError`]
/// variants for unencodable functions or mapping failure.
pub fn compile(module: &Module) -> Result<NativeModule, CompileError> {
    if !supported() {
        return Err(CompileError::Unsupported);
    }
    let lowered = lower::lower_module(module)?;
    let buf = ExecBuf::new(&lowered.code).ok_or(CompileError::ExecMap)?;
    let code_ptrs = lowered.offsets.iter().map(|&o| buf.addr_at(o)).collect();
    Ok(NativeModule {
        buf,
        code_ptrs,
        class_count: module.classes.len() as u64,
        code_len: lowered.code.len(),
    })
}

#[cfg(test)]
mod tests {
    //! Differential tests: every program runs under both the interpreter
    //! (`CpuSim`) and the JIT on identically-initialized regions, and the
    //! final region bytes must match exactly.

    use super::*;
    use concord_cpusim::CpuSim;
    use concord_frontend::LoweredProgram;
    use concord_svm::{CpuAddr, SharedAllocator, SharedRegion, VtableArea};

    fn build(src: &str) -> LoweredProgram {
        let mut lp = concord_frontend::compile(src).unwrap();
        concord_compiler::optimize_for_cpu(&mut lp.module);
        lp
    }

    fn setup(lp: &LoweredProgram, capacity: u64) -> (SharedRegion, SharedAllocator, VtableArea) {
        let reserved = VtableArea::reserve_for(lp.module.classes.len());
        let mut region = SharedRegion::new(capacity, reserved);
        let heap = SharedAllocator::new(&region);
        let vt = VtableArea::install(&mut region, &lp.module).unwrap();
        (region, heap, vt)
    }

    fn region_bytes(region: &mut SharedRegion) -> Vec<u8> {
        let (p, l) = region.raw_parts_mut();
        // SAFETY: raw_parts_mut returns the live allocation of exactly
        // this length; we only read it.
        unsafe { std::slice::from_raw_parts(p, l) }.to_vec()
    }

    /// Run `kernel` as a parallel_for over `n` items under both backends
    /// (fresh identical regions, `init` run on each) and assert that the
    /// trap outcome and every region byte agree, at host-threads 1 and 8.
    fn diff_for(
        src: &str,
        kernel: &str,
        n: u32,
        init: impl Fn(&mut SharedRegion, &mut SharedAllocator) -> CpuAddr,
    ) {
        if !supported() {
            return;
        }
        let lp = build(src);
        let k = lp.kernel(kernel).unwrap();
        let cfg = concord_energy::SystemConfig::ultrabook().cpu;

        let (mut r1, mut h1, vt) = setup(&lp, 1 << 20);
        let body1 = init(&mut r1, &mut h1);
        let mut sim = CpuSim::new(cfg);
        let want = sim.parallel_for(&mut r1, &vt, &lp.module, k.operator_fn, body1, n).err();
        let want_bytes = region_bytes(&mut r1);

        let nm = compile(&lp.module).unwrap();
        for ht in [1usize, 8] {
            let (mut r2, mut h2, _vt) = setup(&lp, 1 << 20);
            let body2 = init(&mut r2, &mut h2);
            assert_eq!(body1, body2, "deterministic setup required for the diff");
            let mut ex = Executor::new(cfg.cores as usize, ht);
            let got =
                ex.parallel_for(&mut r2, &nm, &lp.module, k.operator_fn, body2, 0, n, n).err();
            assert_eq!(got, want, "trap outcome must match interpreter (ht={ht})");
            if want.is_none() {
                assert_eq!(region_bytes(&mut r2), want_bytes, "region bytes differ (ht={ht})");
            }
        }
    }

    #[test]
    fn linked_list_matches_interpreter() {
        let src = r#"
            struct Node { Node* next; };
            class LoopBody {
            public:
                Node* nodes;
                void operator()(int i) { nodes[i].next = &(nodes[i+1]); }
            };
        "#;
        diff_for(src, "LoopBody", 100, |region, heap| {
            let nodes = heap.malloc(101 * 8).unwrap();
            let body = heap.malloc(8).unwrap();
            region.write_ptr(body, nodes).unwrap();
            body
        });
    }

    #[test]
    fn integer_torture_matches_interpreter() {
        let src = r#"
            class K {
            public:
                int* a; uint* u; float* w;
                void operator()(int i) {
                    int x = a[i];
                    uint v = u[i];
                    int y = (x / 3) + (x % 5) - (x << 2) + (x >> 3);
                    y = y ^ (x * 13);
                    y = y & (x | 7);
                    y = y + (x << (i & 15));
                    y = y + (x >> (i & 7));
                    uint z = (v / 7) + (v % 9) + (v >> 2) + (v << 1);
                    int big = x / (0 - 1);
                    float f = w[i];
                    float g = f * 1.5f + (float)x;
                    if (g > 100.0f) { y = y + 70000; } else { y = y - (int)g; }
                    a[i] = y + big + (int)z;
                    u[i] = z;
                    w[i] = g / 3.0f;
                }
            };
        "#;
        let n = 64u32;
        diff_for(src, "K", n, move |region, heap| {
            let a = heap.malloc(n as u64 * 4).unwrap();
            let u = heap.malloc(n as u64 * 4).unwrap();
            let w = heap.malloc(n as u64 * 4).unwrap();
            let ints = [i32::MIN, i32::MAX, -7, 0, 1, 12345, -987654, 42];
            let floats = [f32::NAN, f32::INFINITY, -3.5, 0.0, 1e30, -1e-30, 256.25, -0.0];
            for i in 0..n {
                let base = ints[i as usize % ints.len()];
                region.write_i32(CpuAddr(a.0 + i as u64 * 4), base.wrapping_add(i as i32)).unwrap();
                region
                    .write_i32(
                        CpuAddr(u.0 + i as u64 * 4),
                        (base as u32).wrapping_mul(2654435761) as i32,
                    )
                    .unwrap();
                region
                    .write_f32(CpuAddr(w.0 + i as u64 * 4), floats[i as usize % floats.len()])
                    .unwrap();
            }
            let body = heap.malloc(24).unwrap();
            region.write_ptr(body, a).unwrap();
            region.write_ptr(body.offset(8), u).unwrap();
            region.write_ptr(body.offset(16), w).unwrap();
            body
        });
    }

    #[test]
    fn float_math_matches_interpreter() {
        let src = r#"
            class F {
            public:
                float* w;
                void operator()(int i) {
                    float x = w[i];
                    float a = sqrtf(fabsf(x)) + floorf(x * 0.5f);
                    float b = fminf(expf(x * 0.01f), powf(fmaxf(x, 1.0f), 0.3f));
                    w[i] = a * b - (float)((int)x % 7);
                }
            };
        "#;
        let n = 48u32;
        diff_for(src, "F", n, move |region, heap| {
            let w = heap.malloc(n as u64 * 4).unwrap();
            let vals = [2.0f32, -9.75, 0.0, f32::NAN, 1e6, -1e-6, 123.5, f32::INFINITY];
            for i in 0..n {
                let v = vals[i as usize % vals.len()] + i as f32;
                region.write_f32(CpuAddr(w.0 + i as u64 * 4), v).unwrap();
            }
            let body = heap.malloc(8).unwrap();
            region.write_ptr(body, w).unwrap();
            body
        });
    }

    #[test]
    fn local_arrays_match_interpreter() {
        let src = r#"
            class L {
            public:
                int* outp;
                void operator()(int i) {
                    int tmp[8];
                    for (int j = 0; j < 8; j++) { tmp[j] = i * j + 3; }
                    int s = 0;
                    for (int j = 0; j < 8; j++) { s = s + tmp[j]; }
                    outp[i] = s;
                }
            };
        "#;
        diff_for(src, "L", 32, |region, heap| {
            let out = heap.malloc(32 * 4).unwrap();
            let body = heap.malloc(8).unwrap();
            region.write_ptr(body, out).unwrap();
            body
        });
    }

    #[test]
    fn atomics_match_interpreter() {
        // atomic_add / atomic_min run on the parallel path with hardware
        // lock atomics; the final values are order-independent.
        let src = r#"
            class A {
            public:
                int* d;
                void operator()(int i) {
                    atomic_add(&d[0], i);
                    atomic_min(&d[1], i - 50);
                }
            };
        "#;
        diff_for(src, "A", 200, |region, heap| {
            let d = heap.malloc(16).unwrap();
            region.write_i32(d, 0).unwrap();
            region.write_i32(d.offset(4), 1000).unwrap();
            let body = heap.malloc(8).unwrap();
            region.write_ptr(body, d).unwrap();
            body
        });
    }

    #[test]
    fn cas_kernel_runs_serially_and_matches() {
        // atomic_cas gates the kernel onto the serial path on both
        // backends, so even the order-dependent winner index agrees.
        let src = r#"
            class C {
            public:
                int* d;
                void operator()(int i) {
                    int old = atomic_cas(&d[0], 0, i + 1);
                    d[2 + i] = old;
                }
            };
        "#;
        diff_for(src, "C", 60, |region, heap| {
            let d = heap.malloc(62 * 4).unwrap();
            let body = heap.malloc(8).unwrap();
            region.write_ptr(body, d).unwrap();
            body
        });
    }

    #[test]
    fn virtual_dispatch_matches_interpreter() {
        let src = r#"
            class Shape {
            public:
                float r;
                virtual float area() { return 0.0f; }
            };
            class Circle : public Shape {
            public:
                float area() { return 3.0f * r * r; }
            };
            class K {
            public:
                Shape* s; float out;
                void operator()(int i) { out = s->area(); }
            };
        "#;
        diff_for(src, "K", 1, |region, heap| {
            let circle = heap.malloc(16).unwrap();
            region.write_ptr(circle, VtableArea::addr_of(concord_ir::ClassId(1))).unwrap();
            region.write_f32(circle.offset(8), 2.0).unwrap();
            let body = heap.malloc(16).unwrap();
            region.write_ptr(body, circle).unwrap();
            body
        });
    }

    #[test]
    fn null_deref_trap_matches_interpreter() {
        let src = r#"
            struct Node { Node* next; int v; };
            class K {
            public:
                Node* head; int out;
                void operator()(int i) { out = head->v; }
            };
        "#;
        diff_for(src, "K", 1, |region, heap| {
            let body = heap.malloc(16).unwrap();
            region.write_ptr(body, CpuAddr::NULL).unwrap();
            body
        });
    }

    #[test]
    fn step_limit_trap_matches_interpreter() {
        if !supported() {
            return;
        }
        let src = r#"
            class K {
            public:
                int out;
                void operator()(int i) {
                    int x = 0;
                    while (true) { x += 1; }
                    out = x;
                }
            };
        "#;
        let lp = build(src);
        let k = lp.kernel("K").unwrap();
        let cfg = concord_energy::SystemConfig::ultrabook().cpu;

        let (mut r1, mut h1, vt) = setup(&lp, 1 << 16);
        let body1 = h1.malloc(8).unwrap();
        let mut sim = CpuSim::new(cfg);
        sim.step_budget_per_item = 10_000;
        let want = sim.parallel_for(&mut r1, &vt, &lp.module, k.operator_fn, body1, 4).unwrap_err();

        let nm = compile(&lp.module).unwrap();
        let (mut r2, mut h2, _vt) = setup(&lp, 1 << 16);
        let body2 = h2.malloc(8).unwrap();
        let mut ex = Executor::new(cfg.cores as usize, 8);
        ex.step_budget = 10_000;
        let got =
            ex.parallel_for(&mut r2, &nm, &lp.module, k.operator_fn, body2, 0, 4, 4).unwrap_err();
        assert_eq!(got, want, "step-limit trap must carry the same kernel name and item id");
    }

    #[test]
    fn reduce_total_is_bit_exact() {
        if !supported() {
            return;
        }
        let src = r#"
            class Sum {
            public:
                float* data; float acc;
                void operator()(int i) { acc += data[i]; }
                void join(Sum* other) { acc += other->acc; }
            };
        "#;
        let lp = build(src);
        let k = lp.kernel("Sum").unwrap();
        let cfg = concord_energy::SystemConfig::desktop().cpu;
        let n = 1000u32;
        let init = |region: &mut SharedRegion, heap: &mut SharedAllocator| {
            let data = heap.malloc(n as u64 * 4).unwrap();
            for i in 0..n {
                let v = (i as f32) * 0.1 + 1.0 / (i as f32 + 1.0);
                region.write_f32(CpuAddr(data.0 + i as u64 * 4), v).unwrap();
            }
            let body = heap.malloc(16).unwrap();
            region.write_ptr(body, data).unwrap();
            region.write_f32(body.offset(8), 0.25).unwrap();
            let scratch: Vec<CpuAddr> = (0..8).map(|_| heap.malloc(16).unwrap()).collect();
            (body, scratch)
        };

        let (mut r1, mut h1, vt) = setup(&lp, 1 << 20);
        let (body1, scratch1) = init(&mut r1, &mut h1);
        let mut sim = CpuSim::new(cfg);
        sim.parallel_reduce(
            &mut r1,
            &vt,
            &lp.module,
            k.operator_fn,
            k.join_fn.unwrap(),
            body1,
            16,
            n,
            &scratch1,
        )
        .unwrap();
        let want = region_bytes(&mut r1);
        let want_total = r1.read_f32(body1.offset(8)).unwrap();

        let nm = compile(&lp.module).unwrap();
        for ht in [1usize, 8] {
            let (mut r2, mut h2, _vt) = setup(&lp, 1 << 20);
            let (body2, scratch2) = init(&mut r2, &mut h2);
            let mut ex = Executor::new(cfg.cores as usize, ht);
            ex.parallel_reduce(
                &mut r2,
                &nm,
                &lp.module,
                k.operator_fn,
                k.join_fn.unwrap(),
                body2,
                16,
                n,
                &scratch2,
            )
            .unwrap();
            let got_total = r2.read_f32(body2.offset(8)).unwrap();
            assert_eq!(got_total.to_bits(), want_total.to_bits(), "join order differs (ht={ht})");
            assert_eq!(region_bytes(&mut r2), want, "region bytes differ (ht={ht})");
        }
    }

    #[test]
    fn gpu_lowered_module_also_compiles_and_matches() {
        // The GPU-lowered module (with CpuToGpu/GpuToCpu translations)
        // must execute identically too: the JIT compiles translations as
        // range-guarded base adds.
        let src = r#"
            struct Node { Node* next; int v; };
            class K {
            public:
                Node* head; int out;
                void operator()(int i) {
                    int s = 0;
                    Node* p = head;
                    while (p != nullptr) { s += p->v; p = p->next; }
                    out = s;
                }
            };
        "#;
        if !supported() {
            return;
        }
        let lp = concord_frontend::compile(src).unwrap();
        let art = concord_compiler::lower_for_gpu(&lp.module, concord_compiler::GpuConfig::all(7));
        let kf = art
            .module
            .functions
            .iter()
            .position(|f| f.kernel == Some(concord_ir::KernelKind::ForBody))
            .map(|i| concord_ir::FuncId(i as u32))
            .unwrap();
        let cfg = concord_energy::SystemConfig::ultrabook().cpu;

        let init = |region: &mut SharedRegion, heap: &mut SharedAllocator| {
            let nodes = heap.malloc(3 * 16).unwrap();
            for (i, v) in [5, 7, 30].iter().enumerate() {
                let a = CpuAddr(nodes.0 + i as u64 * 16);
                let next =
                    if i < 2 { CpuAddr(nodes.0 + (i as u64 + 1) * 16) } else { CpuAddr::NULL };
                region.write_ptr(a, next).unwrap();
                region.write_i32(a.offset(8), *v).unwrap();
            }
            let body = heap.malloc(16).unwrap();
            region.write_ptr(body, nodes).unwrap();
            body
        };

        let (mut r1, mut h1, vt) = setup(&lp, 1 << 20);
        let body1 = init(&mut r1, &mut h1);
        let mut sim = CpuSim::new(cfg);
        sim.parallel_for(&mut r1, &vt, &art.module, kf, body1, 1).unwrap();
        let want = region_bytes(&mut r1);

        let nm = compile(&art.module).unwrap();
        let (mut r2, mut h2, _vt) = setup(&lp, 1 << 20);
        let body2 = init(&mut r2, &mut h2);
        let mut ex = Executor::new(cfg.cores as usize, 2);
        ex.parallel_for(&mut r2, &nm, &art.module, kf, body2, 0, 1, 1).unwrap();
        assert_eq!(region_bytes(&mut r2), want);
        assert_eq!(r2.read_i32(body2.offset(8)).unwrap(), 42);
    }

    #[test]
    fn unsupported_target_reports_cleanly() {
        if supported() {
            return;
        }
        let lp = build("class K { public: int out; void operator()(int i) { out = i; } };");
        assert_eq!(compile(&lp.module).unwrap_err(), CompileError::Unsupported);
    }
}
