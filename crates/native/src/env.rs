//! The per-work-item execution environment shared with generated code.
//!
//! Generated functions receive a pointer to an [`Env`] in `rdi` and pin it
//! in `r15` for their whole lifetime. Every field the machine code touches
//! is accessed at a fixed byte offset (the `OFF_*` constants), so the
//! struct is `repr(C)` and the offsets are pinned by a unit test.
//!
//! The environment also carries the trap cell: generated code never
//! unwinds — on a fault it records a trap code plus payload words here and
//! returns through every active frame (each one restoring its private
//! stack pointer), and the launch driver reconstructs the interpreter's
//! [`Trap`] value from the cells.

use concord_ir::eval::Trap;
use concord_ir::types::AddrSpace;
use concord_svm::{CPU_BASE, GPU_BASE};

/// Private memory bytes per core — matches the CPU simulator's
/// `PrivateMem::new(1 << 20)`.
pub const PRIVATE_BYTES: usize = 1 << 20;

/// Base address of the private space (same constant as the interpreter).
pub const PRIVATE_BASE: u64 = 0x1000_0000;

/// Call-depth limit — matches the interpreter's `max_depth` default.
pub const MAX_DEPTH: i64 = 64;

// Trap codes stored in `Env::trap_code`.
pub(crate) const TRAP_DIV_ZERO: u64 = 1;
pub(crate) const TRAP_BAD_ADDRESS: u64 = 2;
pub(crate) const TRAP_WRONG_SPACE: u64 = 3;
pub(crate) const TRAP_UNREACHABLE: u64 = 4;
pub(crate) const TRAP_BAD_DISPATCH: u64 = 5;
pub(crate) const TRAP_STACK_OVERFLOW: u64 = 6;
pub(crate) const TRAP_STEP_LIMIT: u64 = 7;
pub(crate) const TRAP_WL_PUSH: u64 = 8;

// Field offsets used by the code generator (see the layout test).
pub(crate) const OFF_REGION_BASE: i32 = 0;
pub(crate) const OFF_PRIV_BASE: i32 = 16;
pub(crate) const OFF_PRIV_LEN: i32 = 24;
pub(crate) const OFF_PRIV_SP: i32 = 32;
pub(crate) const OFF_STEPS: i32 = 40;
pub(crate) const OFF_GLOBAL_ID: i32 = 48;
pub(crate) const OFF_GLOBAL_SIZE: i32 = 56;
pub(crate) const OFF_LOCAL_ID: i32 = 64;
pub(crate) const OFF_GROUP_ID: i32 = 72;
pub(crate) const OFF_TRAP_CODE: i32 = 80;
pub(crate) const OFF_TRAP_A: i32 = 88;
pub(crate) const OFF_TRAP_B: i32 = 96;
pub(crate) const OFF_DEPTH: i32 = 104;
pub(crate) const OFF_CLASS_COUNT: i32 = 112;
pub(crate) const OFF_CODE_PTRS: i32 = 120;
pub(crate) const OFF_NFUNCS: i32 = 128;
pub(crate) const OFF_GPU_BASE: i32 = 136;
/// Four per-width region bounds `region_len - {1,2,4,8}`, indexed by
/// log2(access size).
pub(crate) const OFF_LIMIT_CPU: i32 = 144;
/// Same, for the private space.
pub(crate) const OFF_LIMIT_PRIV: i32 = 176;
/// Worklist push sink (`*mut Vec<i32>`), null outside worklist launches.
/// Generated code reaches the sink only through [`h_wl_push`], so the
/// offset is pinned by the layout test alone.
#[allow(dead_code)]
pub(crate) const OFF_WL_SINK: i32 = 208;

/// Execution environment handed to generated code (one per host core).
#[repr(C)]
#[derive(Debug)]
pub struct Env {
    /// Host pointer to byte 0 of the shared region.
    pub region_base: *mut u8,
    /// Shared region capacity in bytes.
    pub region_len: u64,
    /// Host pointer to this core's private memory.
    pub priv_base: *mut u8,
    /// Private memory capacity in bytes.
    pub priv_len: u64,
    /// Private stack pointer (byte offset, not an address).
    pub priv_sp: u64,
    /// Remaining step budget; blocks pre-charge and trap when it would go
    /// negative (signed so the over-subtraction is visible).
    pub steps: i64,
    /// Work-item ids (`global_id()` intrinsic family).
    pub global_id: i64,
    /// Total work items in the launch.
    pub global_size: i64,
    /// Index within the work-group (always 0 on the CPU path).
    pub local_id: i64,
    /// Work-group index (== global id on the CPU path).
    pub group_id: i64,
    /// 0 = no trap; otherwise one of the `TRAP_*` codes.
    pub trap_code: u64,
    /// First trap payload word (faulting address, vptr, or space code).
    pub trap_a: u64,
    /// Second trap payload word (space code).
    pub trap_b: u64,
    /// Current call depth (incremented around each call).
    pub depth: i64,
    /// Installed vtable count (virtual-dispatch validation).
    pub class_count: u64,
    /// Table of absolute entry addresses, indexed by `FuncId`.
    pub code_ptrs: *const u64,
    /// Number of functions in `code_ptrs`.
    pub nfuncs: u64,
    /// `GPU_BASE`, kept in memory so generated code avoids 10-byte movabs
    /// in the classification slow path.
    pub gpu_base: u64,
    /// `region_len - size` for sizes 1/2/4/8 (fused range+bounds check).
    pub limit_cpu: [u64; 4],
    /// `priv_len - size` for sizes 1/2/4/8.
    pub limit_priv: [u64; 4],
    /// Next-frontier push segment of the enclosing worklist round; null
    /// outside `parallel_worklist_hetero` (where `push` traps).
    pub wl: *mut Vec<i32>,
}

impl Env {
    /// Build an environment over `region` and `private` memory.
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than 16 bytes (too small to hold
    /// even the device-heap descriptor; the runtime never makes one).
    pub fn new(
        region: (*mut u8, usize),
        private: (*mut u8, usize),
        class_count: u64,
        code_ptrs: &[u64],
    ) -> Env {
        let (region_base, region_len) = region;
        let (priv_base, priv_len) = private;
        assert!(region_len >= 16, "shared region too small for native execution");
        assert!(priv_len >= 16, "private memory too small for native execution");
        let limits = |len: u64| [len - 1, len - 2, len - 4, len - 8];
        Env {
            region_base,
            region_len: region_len as u64,
            priv_base,
            priv_len: priv_len as u64,
            priv_sp: 0,
            steps: 0,
            global_id: -1,
            global_size: 0,
            local_id: 0,
            group_id: 0,
            trap_code: 0,
            trap_a: 0,
            trap_b: 0,
            depth: 0,
            class_count,
            code_ptrs: code_ptrs.as_ptr(),
            nfuncs: code_ptrs.len() as u64,
            gpu_base: GPU_BASE,
            limit_cpu: limits(region_len as u64),
            limit_priv: limits(priv_len as u64),
            wl: std::ptr::null_mut(),
        }
    }

    /// Reset the per-item mutable state before running one work item.
    pub fn reset_item(&mut self, global_id: i64, global_size: i64, step_budget: i64) {
        self.priv_sp = 0;
        self.steps = step_budget;
        self.global_id = global_id;
        self.global_size = global_size;
        self.local_id = 0;
        self.group_id = global_id;
        self.trap_code = 0;
        self.trap_a = 0;
        self.trap_b = 0;
        self.depth = 0;
    }

    /// Reconstruct the interpreter-parity [`Trap`] from the trap cells.
    /// `kernel` is the launch entry function's name (the interpreter
    /// re-tags step-limit traps with it via `Trap::with_kernel`).
    pub fn take_trap(&self, kernel: &str) -> Option<Trap> {
        let space = |code: u64| match code {
            0 => AddrSpace::Cpu,
            1 => AddrSpace::Gpu,
            3 => AddrSpace::Local,
            _ => AddrSpace::Private,
        };
        Some(match self.trap_code {
            0 => return None,
            TRAP_DIV_ZERO => Trap::DivideByZero,
            TRAP_BAD_ADDRESS => Trap::BadAddress { addr: self.trap_a, space: space(self.trap_b) },
            TRAP_WRONG_SPACE => {
                Trap::WrongAddressSpace { found: space(self.trap_a), expected: space(self.trap_b) }
            }
            TRAP_BAD_DISPATCH => Trap::BadVirtualDispatch { vptr: self.trap_a },
            TRAP_STACK_OVERFLOW => Trap::StackOverflow,
            TRAP_STEP_LIMIT => {
                Trap::StepLimitExceeded { kernel: kernel.to_string(), global_id: self.global_id }
            }
            TRAP_WL_PUSH => Trap::BadIntrinsic("push outside parallel_worklist_hetero"),
            _ => Trap::Unreachable,
        })
    }
}

// ---- helper functions called from generated code ----
//
// All of these follow the System V C ABI; their addresses are embedded in
// the generated code as 64-bit immediates (process-static, so compiled
// modules are safely shareable through the JIT artifact cache — anything
// per-context, like the region base, lives in `Env` instead).

/// `floorf` with the interpreter's round-through-f32 discipline.
pub(crate) extern "C" fn h_floor(x: f64) -> f64 {
    x.floor() as f32 as f64
}

/// `expf`.
pub(crate) extern "C" fn h_exp(x: f64) -> f64 {
    x.exp() as f32 as f64
}

/// `powf`.
pub(crate) extern "C" fn h_pow(x: f64, y: f64) -> f64 {
    x.powf(y) as f32 as f64
}

/// `fminf` — Rust `f64::min` NaN semantics, which `minsd` does not match.
pub(crate) extern "C" fn h_fmin(x: f64, y: f64) -> f64 {
    x.min(y) as f32 as f64
}

/// `fmaxf`.
pub(crate) extern "C" fn h_fmax(x: f64, y: f64) -> f64 {
    x.max(y) as f32 as f64
}

/// `FpToSi`: NaN → 0, then Rust's saturating float→int cast.
pub(crate) extern "C" fn h_f2i(x: f64) -> i64 {
    let clamped = if x.is_nan() { 0.0 } else { x };
    clamped as i64
}

/// `device_malloc`, replicating `SharedRegion::device_malloc` against the
/// raw region bytes: the cursor/limit descriptor lives in the last 16
/// bytes and holds absolute CPU-space addresses. Only ever executed on
/// the serial path (the op is gated), so plain reads/writes suffice.
pub(crate) extern "C" fn h_device_malloc(env: *mut Env, size: i64) -> u64 {
    // SAFETY: generated code passes the env it was launched with; the
    // region pointer outlives the launch (the driver borrows the region).
    let env = unsafe { &mut *env };
    let cell = env.region_len as usize - 16;
    // SAFETY: `Env::new` guarantees region_len >= 16.
    let (cursor, limit) = unsafe {
        let p = env.region_base.add(cell).cast::<u8>();
        let mut c = [0u8; 8];
        let mut l = [0u8; 8];
        std::ptr::copy_nonoverlapping(p, c.as_mut_ptr(), 8);
        std::ptr::copy_nonoverlapping(p.add(8), l.as_mut_ptr(), 8);
        (u64::from_le_bytes(c), u64::from_le_bytes(l))
    };
    if cursor == 0 {
        return 0; // heap not enabled
    }
    let base = cursor.div_ceil(16) * 16;
    let size = (size.max(0) as u64).max(1);
    if base + size > limit {
        return 0;
    }
    // SAFETY: same in-bounds descriptor cell as above.
    unsafe {
        let p = env.region_base.add(cell);
        std::ptr::copy_nonoverlapping((base + size).to_le_bytes().as_ptr(), p, 8);
    }
    base
}

/// `push(item)`: append to the bound next-frontier segment. With no
/// worklist launch active the sink is null — record [`TRAP_WL_PUSH`];
/// the generated code checks the trap cell after the call and bails.
pub(crate) extern "C" fn h_wl_push(env: *mut Env, item: i64) {
    // SAFETY: generated code passes the env it was launched with.
    let env = unsafe { &mut *env };
    if env.wl.is_null() {
        env.trap_code = TRAP_WL_PUSH;
        return;
    }
    // SAFETY: the launch driver keeps the segment alive and exclusively
    // bound to this env for the whole launch.
    unsafe { (*env.wl).push(item as i32) };
}

/// Compile-time check that `CPU_BASE` is the constant the fused
/// range+bounds check assumes (an address below it classifies private).
const _: () = assert!(CPU_BASE == 0x4000_0000_0000);

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem::offset_of;

    #[test]
    fn env_offsets_match_codegen_constants() {
        assert_eq!(offset_of!(Env, region_base), OFF_REGION_BASE as usize);
        assert_eq!(offset_of!(Env, priv_base), OFF_PRIV_BASE as usize);
        assert_eq!(offset_of!(Env, priv_len), OFF_PRIV_LEN as usize);
        assert_eq!(offset_of!(Env, priv_sp), OFF_PRIV_SP as usize);
        assert_eq!(offset_of!(Env, steps), OFF_STEPS as usize);
        assert_eq!(offset_of!(Env, global_id), OFF_GLOBAL_ID as usize);
        assert_eq!(offset_of!(Env, global_size), OFF_GLOBAL_SIZE as usize);
        assert_eq!(offset_of!(Env, local_id), OFF_LOCAL_ID as usize);
        assert_eq!(offset_of!(Env, group_id), OFF_GROUP_ID as usize);
        assert_eq!(offset_of!(Env, trap_code), OFF_TRAP_CODE as usize);
        assert_eq!(offset_of!(Env, trap_a), OFF_TRAP_A as usize);
        assert_eq!(offset_of!(Env, trap_b), OFF_TRAP_B as usize);
        assert_eq!(offset_of!(Env, depth), OFF_DEPTH as usize);
        assert_eq!(offset_of!(Env, class_count), OFF_CLASS_COUNT as usize);
        assert_eq!(offset_of!(Env, code_ptrs), OFF_CODE_PTRS as usize);
        assert_eq!(offset_of!(Env, nfuncs), OFF_NFUNCS as usize);
        assert_eq!(offset_of!(Env, gpu_base), OFF_GPU_BASE as usize);
        assert_eq!(offset_of!(Env, limit_cpu), OFF_LIMIT_CPU as usize);
        assert_eq!(offset_of!(Env, limit_priv), OFF_LIMIT_PRIV as usize);
        assert_eq!(offset_of!(Env, wl), OFF_WL_SINK as usize);
    }

    #[test]
    fn trap_reconstruction() {
        let mut region = vec![0u8; 64];
        let mut privm = vec![0u8; 64];
        let ptrs: Vec<u64> = vec![];
        let mut env = Env::new(
            (region.as_mut_ptr(), region.len()),
            (privm.as_mut_ptr(), privm.len()),
            0,
            &ptrs,
        );
        assert!(env.take_trap("k").is_none());
        env.trap_code = TRAP_BAD_ADDRESS;
        env.trap_a = 0x123;
        env.trap_b = 2;
        assert_eq!(
            env.take_trap("k"),
            Some(Trap::BadAddress { addr: 0x123, space: AddrSpace::Private })
        );
        env.trap_code = TRAP_STEP_LIMIT;
        env.global_id = 7;
        assert_eq!(
            env.take_trap("mykernel"),
            Some(Trap::StepLimitExceeded { kernel: "mykernel".into(), global_id: 7 })
        );
    }

    #[test]
    fn device_malloc_helper_matches_region_semantics() {
        use concord_svm::SharedRegion;
        let mut region = SharedRegion::new(4096, 0);
        region.init_device_heap(concord_svm::CpuAddr(CPU_BASE + 1000), 600).unwrap();
        let expected1 = region.device_malloc(100).unwrap();
        let expected2 = region.device_malloc(3).unwrap();
        let exhausted = region.device_malloc(4096).unwrap();

        let mut region2 = SharedRegion::new(4096, 0);
        region2.init_device_heap(concord_svm::CpuAddr(CPU_BASE + 1000), 600).unwrap();
        let (base, len) = region2.raw_parts_mut();
        let mut privm = vec![0u8; 64];
        let ptrs: Vec<u64> = vec![];
        let mut env = Env::new((base, len), (privm.as_mut_ptr(), privm.len()), 0, &ptrs);
        let got1 = h_device_malloc(&mut env, 100);
        let got2 = h_device_malloc(&mut env, 3);
        let got3 = h_device_malloc(&mut env, 4096);
        assert_eq!(got1, expected1.0);
        assert_eq!(got2, expected2.0);
        assert_eq!(got3, exhausted.0);
    }
}
