//! Executable code buffers with a W^X lifecycle.
//!
//! The JIT needs a page-aligned allocation that is first writable (while
//! machine code is copied in) and then executable-but-not-writable for the
//! rest of its life. The workspace is std-only, so — exactly like the
//! daemon's `serve/src/signal.rs` — this calls the C entry points
//! (`mmap`/`mprotect`/`munmap`) through hand-rolled `extern "C"`
//! declarations instead of pulling in a bindings crate.
//!
//! Lifecycle: `ExecBuf::new(bytes)` maps fresh anonymous pages `RW`, the
//! constructor copies the code image in, flips the pages to `R+X` with
//! `mprotect`, and from then on the buffer is immutable. `Drop` unmaps.
//! The buffer is only constructible on the targets where the backend is
//! compiled at all (`x86_64` Linux); everywhere else the whole crate
//! degrades to [`crate::supported`] returning `false`.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::ffi::c_void;

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 0x02;
    const MAP_ANONYMOUS: i32 = 0x20;
    const MAP_FAILED: usize = usize::MAX;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn mprotect(addr: *mut c_void, length: usize, prot: i32) -> i32;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    /// An immutable, executable machine-code image.
    #[derive(Debug)]
    pub struct ExecBuf {
        base: *mut u8,
        len: usize,
    }

    // The mapping is written once during construction and read/executed
    // only thereafter; the raw pointer is what makes this non-auto.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        /// Map pages, copy `code` in, and seal the mapping `R+X`.
        ///
        /// Returns `None` if the kernel refuses the mapping (out of
        /// address space, or a hardened configuration that denies
        /// executable anonymous memory).
        pub fn new(code: &[u8]) -> Option<ExecBuf> {
            let len = code.len().max(1).div_ceil(4096) * 4096;
            // SAFETY: anonymous private mapping with no fixed address;
            // the kernel picks a fresh range that aliases nothing.
            let base = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if base as usize == MAP_FAILED || base.is_null() {
                return None;
            }
            let base = base.cast::<u8>();
            // SAFETY: `base..base+len` is exactly the fresh mapping above.
            unsafe {
                std::ptr::copy_nonoverlapping(code.as_ptr(), base, code.len());
            }
            // SAFETY: same range; drops W before adding X (W^X).
            let rc = unsafe { mprotect(base.cast(), len, PROT_READ | PROT_EXEC) };
            if rc != 0 {
                // SAFETY: unmapping the mapping created above.
                unsafe { munmap(base.cast(), len) };
                return None;
            }
            Some(ExecBuf { base, len })
        }

        /// Absolute address of byte `off` of the image.
        pub fn addr_at(&self, off: usize) -> u64 {
            debug_assert!(off < self.len);
            self.base as u64 + off as u64
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            // SAFETY: unmaps exactly the mapping owned by this value.
            unsafe { munmap(self.base.cast(), self.len) };
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod imp {
    /// Stub on unsupported targets: never constructible, so the rest of
    /// the crate compiles unchanged while [`crate::supported`] is `false`.
    #[derive(Debug)]
    pub struct ExecBuf {
        never: std::convert::Infallible,
    }

    impl ExecBuf {
        /// Always `None` on unsupported targets.
        pub fn new(_code: &[u8]) -> Option<ExecBuf> {
            None
        }

        /// Unreachable (the type is uninhabited).
        pub fn addr_at(&self, _off: usize) -> u64 {
            match self.never {}
        }
    }
}

pub use imp::ExecBuf;
