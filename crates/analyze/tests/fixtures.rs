//! End-to-end analyzer tests: compile kernel-language sources through the
//! real frontend + CPU pipeline, then assert the expected lints fire (and
//! that clean kernels stay clean).

use concord_analyze::{analyze_kernel, Lint, Mode, Severity};
use concord_ir::{FuncId, Module};

/// Compile `src`, run the CPU optimization pipeline (the analyzer's
/// documented precondition: CSE canonicalizes address computations), and
/// return the module plus the operator function of `class`.
fn compile(src: &str, class: &str) -> (Module, FuncId) {
    let program = concord_frontend::compile(src).expect("fixture compiles");
    let mut module = program.module.clone();
    concord_compiler::optimize_for_cpu(&mut module);
    let op = program.kernel(class).expect("kernel class exists").operator_fn;
    (module, op)
}

const RACY_HISTOGRAM: &str = include_str!("../fixtures/racy_histogram.cc");
const ESCAPING_REDUCE: &str = include_str!("../fixtures/escaping_reduce.cc");

#[test]
fn racy_histogram_flags_uniform_rmw() {
    let (module, op) = compile(RACY_HISTOGRAM, "RacyHistogram");
    let report = analyze_kernel(&module, op, Mode::For);
    assert!(report.has_errors(), "report: {}", report.to_text());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::UniformRmw && d.severity == Severity::Error),
        "expected CA104, got: {}",
        report.to_text()
    );
}

#[test]
fn escaping_reduce_flags_accumulator_escape() {
    let (module, op) = compile(ESCAPING_REDUCE, "EscapingSum");
    let report = analyze_kernel(&module, op, Mode::Reduce);
    assert!(report.has_errors(), "report: {}", report.to_text());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::AccumulatorEscape && d.severity == Severity::Error),
        "expected CA105, got: {}",
        report.to_text()
    );
}

#[test]
fn affine_stores_are_clean() {
    // The paper's Figure 1 list-building loop: out-of-place affine stores,
    // stride 8 >= width 8.
    let src = r#"
        struct Node { Node* next; };
        class LoopBody {
        public:
            Node* nodes;
            void operator()(int i) { nodes[i].next = &(nodes[i+1]); }
        };
    "#;
    let (module, op) = compile(src, "LoopBody");
    let report = analyze_kernel(&module, op, Mode::For);
    assert!(report.diagnostics.is_empty(), "expected clean report, got: {}", report.to_text());
}

#[test]
fn narrow_stride_flags_overlap() {
    // Every item stores 4 bytes at byte offset `i`: stride 1 < width 4,
    // so neighbouring work items overlap. The pointer->long->pointer round
    // trip also checks that provenance rides through integers (no CA106).
    let src = r#"
        class Overlap {
        public:
            int* out;
            void operator()(int i) { *(int*)((long)out + i) = i; }
        };
    "#;
    let (module, op) = compile(src, "Overlap");
    let report = analyze_kernel(&module, op, Mode::For);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::OverlappingStores && d.severity == Severity::Error),
        "expected CA101, got: {}",
        report.to_text()
    );
}

#[test]
fn plain_reduce_accumulation_is_clean() {
    // The canonical sum reduction: per-worker accumulation into the staged
    // body copy is the intended pattern and must not be flagged.
    let src = r#"
        class Sum {
        public:
            float* data; float acc;
            void operator()(int i) { acc += data[i]; }
            void join(Sum* other) { acc += other->acc; }
        };
    "#;
    let (module, op) = compile(src, "Sum");
    let report = analyze_kernel(&module, op, Mode::Reduce);
    assert!(report.diagnostics.is_empty(), "expected clean report, got: {}", report.to_text());
}

#[test]
fn same_reduce_body_raced_under_for_is_flagged() {
    // Launching a reduce-style accumulator body as a parallel_for races on
    // the shared `acc` field.
    let src = r#"
        class Sum {
        public:
            float* data; float acc;
            void operator()(int i) { acc += data[i]; }
            void join(Sum* other) { acc += other->acc; }
        };
    "#;
    let (module, op) = compile(src, "Sum");
    let report = analyze_kernel(&module, op, Mode::For);
    assert!(report.has_errors(), "expected CA104 under For mode: {}", report.to_text());
}

#[test]
fn atomic_rmw_is_not_flagged_as_race() {
    let src = r#"
        class AtomicHist {
        public:
            int* bins;
            void operator()(int i) { atomic_add(&bins[0], 1); }
        };
    "#;
    let (module, op) = compile(src, "AtomicHist");
    let report = analyze_kernel(&module, op, Mode::For);
    assert!(
        !report.has_errors(),
        "atomics are the sanctioned fix and must pass: {}",
        report.to_text()
    );
}

#[test]
fn uniform_flag_store_is_note_only() {
    // The BFS/SSSP "changed" convergence flag: every work item writes the
    // same constant to the same slot. Benign by convention -> Note.
    let src = r#"
        class Flag {
        public:
            int* changed;
            void operator()(int i) { changed[0] = 1; }
        };
    "#;
    let (module, op) = compile(src, "Flag");
    let report = analyze_kernel(&module, op, Mode::For);
    assert_eq!(report.max_severity(), Some(Severity::Note), "{}", report.to_text());
}

#[test]
fn unknown_index_store_is_warning() {
    // Data-dependent scatter (BFS frontier update): not provably disjoint,
    // but not provably racy either -> Warning, launchable under Deny.
    let src = r#"
        class Scatter {
        public:
            int* idx; int* out;
            void operator()(int i) { out[idx[i]] = i; }
        };
    "#;
    let (module, op) = compile(src, "Scatter");
    let report = analyze_kernel(&module, op, Mode::For);
    assert_eq!(report.max_severity(), Some(Severity::Warning), "{}", report.to_text());
    assert!(
        report.diagnostics.iter().any(|d| d.lint == Lint::UnprovableStoreIndex),
        "{}",
        report.to_text()
    );
}

#[test]
fn report_json_is_well_formed() {
    let (module, op) = compile(RACY_HISTOGRAM, "RacyHistogram");
    let report = analyze_kernel(&module, op, Mode::For);
    let json = report.to_json();
    assert!(json.contains("\"lint\":\"CA104\""), "{json}");
    assert!(json.contains("\"mode\":\"for\""), "{json}");
}

const RACY_PUSH_ALIAS: &str = include_str!("../fixtures/racy_push_alias.cc");

#[test]
fn guarded_worklist_push_stays_launchable_under_deny() {
    // The canonical guarded-monotone worklist body (frontier BFS): the
    // data-dependent store is a Warning at worst, and the push itself —
    // an injective append into the runtime-owned frontier queue — adds
    // no finding, so the kernel launches under a `Deny` gate.
    let src = r#"
        class Frontier {
        public:
            int* level; int* off; int* adj; int next;
            void operator()(int v) {
                for (int e = off[v]; e < off[v + 1]; e = e + 1) {
                    int w = adj[e];
                    if (level[w] < 0) {
                        level[w] = next;
                        push(w);
                    }
                }
            }
        };
    "#;
    let (module, op) = compile(src, "Frontier");
    let report = analyze_kernel(&module, op, Mode::For);
    assert!(!report.has_errors(), "guarded push must pass Deny: {}", report.to_text());
    assert!(
        !report.diagnostics.iter().any(|d| d.lint == Lint::PointerPush),
        "index pushes carry no pointer provenance: {}",
        report.to_text()
    );
}

#[test]
fn racy_push_alias_flags_pointer_push() {
    let (module, op) = compile(RACY_PUSH_ALIAS, "RacyPushAlias");
    let report = analyze_kernel(&module, op, Mode::For);
    assert!(report.has_errors(), "report: {}", report.to_text());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::PointerPush && d.severity == Severity::Error),
        "expected CA107, got: {}",
        report.to_text()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::UniformRmw && d.severity == Severity::Error),
        "the aliasing race itself must still be flagged: {}",
        report.to_text()
    );
}
