//! End-to-end access-summary inference tests: compile kernel-language
//! sources through the real frontend + CPU pipeline, then assert the
//! inferred per-operand read/write/accumulate summaries.

use concord_analyze::{infer_access, AccessBase, AccessMode, AccessPattern, Mode};
use concord_ir::{FuncId, Module};

fn compile(src: &str, class: &str) -> (Module, FuncId) {
    let program = concord_frontend::compile(src).expect("fixture compiles");
    let mut module = program.module.clone();
    concord_compiler::optimize_for_cpu(&mut module);
    let op = program.kernel(class).expect("kernel class exists").operator_fn;
    (module, op)
}

#[test]
fn elementwise_for_kernel_summarizes_affine_write() {
    let src = r#"
        class Double {
        public:
            int* out; int n;
            void operator()(int i) { out[i] = i * 2 + 1; }
        };
    "#;
    let (module, op) = compile(src, "Double");
    let s = infer_access(&module, op, Mode::For);
    assert!(!s.opaque, "summary: {s:?}");
    // The store lands on the pointee of the field at +0, affine stride 4.
    let out = AccessBase::Field { offset: 0 };
    assert_eq!(s.mode_of(out), Some(AccessMode::Write), "summary: {s:?}");
    let w = s.records.iter().find(|r| r.base == out && r.mode == AccessMode::Write).unwrap();
    assert_eq!(w.pattern, AccessPattern::Affine { stride: 4 });
    assert_eq!(w.width, 4);
    // Loading `out` from the body is a body read.
    assert_eq!(s.mode_of(AccessBase::Body), Some(AccessMode::Read), "summary: {s:?}");
}

#[test]
fn reduce_kernel_reads_data_and_keeps_accumulator_private() {
    let src = r#"
        class Sum {
        public:
            float* data; float acc;
            void operator()(int i) { acc += data[i]; }
            void join(Sum* other) { acc += other->acc; }
        };
    "#;
    let (module, op) = compile(src, "Sum");
    let s = infer_access(&module, op, Mode::Reduce);
    assert!(!s.opaque, "summary: {s:?}");
    let data = AccessBase::Field { offset: 0 };
    assert_eq!(s.mode_of(data), Some(AccessMode::Read), "summary: {s:?}");
    // The staged accumulator writes are launch-private: no write records
    // at all, and nothing on the body base.
    assert!(
        s.records.iter().all(|r| r.mode == AccessMode::Read),
        "staged-copy accesses must not summarize as shared writes: {s:?}"
    );
    assert_eq!(s.mode_of(AccessBase::Body), None, "summary: {s:?}");
}

#[test]
fn data_dependent_indexing_is_opaque() {
    // `ranks[order[i]]`: the store base is loaded through another load —
    // a data-dependent address the summary cannot root at an operand.
    let src = r#"
        class Scatter {
        public:
            int* order; int* ranks;
            void operator()(int i) { ranks[order[i]] = i; }
        };
    "#;
    let (module, op) = compile(src, "Scatter");
    let s = infer_access(&module, op, Mode::For);
    // The *write address* depends on loaded data but is still rooted at
    // the `ranks` field; its pattern must be Unknown (whole allocation).
    let ranks = AccessBase::Field { offset: 8 };
    assert_eq!(s.mode_of(ranks), Some(AccessMode::Write), "summary: {s:?}");
    let w = s.records.iter().find(|r| r.base == ranks && r.mode == AccessMode::Write).unwrap();
    assert_eq!(w.pattern, AccessPattern::Unknown, "summary: {s:?}");
    assert!(!s.opaque, "field-rooted unknown-pattern access stays non-opaque: {s:?}");
}

#[test]
fn pointer_chasing_is_opaque() {
    // Traversing `node->next` dereferences a pointer loaded from another
    // allocation: no operand root, so the summary must go opaque.
    let src = r#"
        struct Node { Node* next; int val; };
        class Chase {
        public:
            Node* head; int* out;
            void operator()(int i) {
                Node* n = head->next;
                out[i] = n->val;
            }
        };
    "#;
    let (module, op) = compile(src, "Chase");
    let s = infer_access(&module, op, Mode::For);
    assert!(s.opaque, "double indirection must be opaque: {s:?}");
}

#[test]
fn atomic_updates_summarize_as_accumulate() {
    let src = r#"
        class Histogram {
        public:
            int* bins; int* data;
            void operator()(int i) { atomic_add(&bins[data[i] & 7], 1); }
        };
    "#;
    let (module, op) = compile(src, "Histogram");
    let s = infer_access(&module, op, Mode::For);
    assert!(!s.opaque, "summary: {s:?}");
    let bins = AccessBase::Field { offset: 0 };
    assert_eq!(s.mode_of(bins), Some(AccessMode::Accumulate), "summary: {s:?}");
    let data = AccessBase::Field { offset: 8 };
    assert_eq!(s.mode_of(data), Some(AccessMode::Read), "summary: {s:?}");
}

#[test]
fn accumulate_is_weaker_than_write() {
    // Mixing a plain store and an atomic on the same base: the strongest
    // mode must win so the scheduler orders, not coalesces.
    let src = r#"
        class Mixed {
        public:
            int* out;
            void operator()(int i) {
                out[i] = 0;
                atomic_add(&out[0], 1);
            }
        };
    "#;
    let (module, op) = compile(src, "Mixed");
    let s = infer_access(&module, op, Mode::For);
    let out = AccessBase::Field { offset: 0 };
    assert_eq!(s.mode_of(out), Some(AccessMode::Write), "summary: {s:?}");
    assert!(s.records.iter().any(|r| r.base == out && r.mode == AccessMode::Accumulate));
}
