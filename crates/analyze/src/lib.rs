//! Static kernel race/safety analysis for Concord IR.
//!
//! Concord (CGO 2014) assumes programmer-correct `parallel_for_hetero`
//! bodies: a cross-work-item write conflict on the shared SVM region is
//! silently nondeterministic on real hardware, and the determinism-
//! preserving host-parallel merge actively *masks* such races in
//! simulation. This crate closes that gap statically, before any device
//! time is burned: an **index-affinity abstract interpretation** (see
//! [`affinity`]) classifies every address reaching a `Store` or atomic as
//! a function of the work-item id, and a small lint catalog (CA101–CA106,
//! see [`Lint`]) turns the classification into structured, located
//! [`Diagnostic`]s.
//!
//! The entry point is [`analyze_kernel`]: give it a module (typically the
//! CPU-optimized one — run CSE first so duplicate address computations
//! are canonical), the kernel entry function, and the launch [`Mode`],
//! and get back a [`Report`]. The runtime's pre-launch gate maps
//! [`Gate`] onto the report: `Warn` surfaces findings, `Deny` refuses to
//! launch kernels with [`Severity::Error`] findings.
//!
//! ```
//! use concord_ir::{FuncId, Module};
//! use concord_analyze::{analyze_kernel, Mode};
//!
//! let module = Module::new();
//! // ... build or compile a kernel into `module` ...
//! # let _ = |module: &Module, f: FuncId| {
//! let report = analyze_kernel(module, f, Mode::For);
//! for d in &report.diagnostics {
//!     eprintln!("{}", d.to_line());
//! }
//! # };
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod affinity;
mod diag;

pub use access::{
    infer_access, AccessBase, AccessMode, AccessPattern, AccessRecord, AccessSummary,
};
pub use affinity::{AbsVal, Aff, Origin, Prov};
pub use diag::{Diagnostic, Lint, Report, Severity};

use concord_ir::{FuncId, Module};

/// Which launch convention the analyzed kernel runs under. The convention
/// decides what the body-object parameter means: `parallel_for` shares
/// one object across all work items, `parallel_reduce` stages a private
/// copy per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// `parallel_for_hetero`: one shared body object.
    For,
    /// `parallel_reduce_hetero`: per-worker staged body copies + `join`.
    Reduce,
}

impl Mode {
    /// Lowercase name, stable for JSON/trace output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mode::For => "for",
            Mode::Reduce => "reduce",
        }
    }
}

/// What the pre-launch gate does with analysis findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Gate {
    /// Skip analysis entirely.
    Off,
    /// Analyze and surface findings (trace + report), always launch.
    #[default]
    Warn,
    /// Refuse to launch kernels with [`Severity::Error`] findings.
    Deny,
}

impl Gate {
    /// Lowercase name, stable for options parsing.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gate::Off => "off",
            Gate::Warn => "warn",
            Gate::Deny => "deny",
        }
    }

    /// Parse an options string (`"off"` / `"warn"` / `"deny"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Gate> {
        match s {
            "off" => Some(Gate::Off),
            "warn" => Some(Gate::Warn),
            "deny" => Some(Gate::Deny),
            _ => None,
        }
    }
}

/// Analyze one kernel entry point under launch convention `mode`,
/// following calls (including virtual calls, widened over the class
/// hierarchy) transitively. Findings are deduplicated per instruction and
/// ordered by (function, instruction).
#[must_use]
pub fn analyze_kernel(module: &Module, func: FuncId, mode: Mode) -> Report {
    let mut an = affinity::Analyzer::new(module, mode);
    an.run_kernel(func);
    let mut diags = an.diags;
    // The interprocedural walk can visit one function under several
    // abstract contexts; keep the most severe finding per instruction.
    diags.sort_by(|a, b| {
        (a.func, a.inst, a.lint.id(), std::cmp::Reverse(a.severity)).cmp(&(
            b.func,
            b.inst,
            b.lint.id(),
            std::cmp::Reverse(b.severity),
        ))
    });
    diags.dedup_by_key(|d| (d.func, d.inst, d.lint));
    Report { kernel: module.function(func).name.clone(), mode: mode.name(), diagnostics: diags }
}
