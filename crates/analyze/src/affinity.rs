//! Index-affinity abstract interpretation over Concord IR.
//!
//! The analysis classifies every SSA value by two facts:
//!
//! * **Affinity** ([`Aff`]): how the value depends on the work-item id —
//!   a known constant, uniform across work items, affine in the id with a
//!   known byte stride, or unknown. Store addresses with affinity
//!   `Affine(s)` where `|s| >=` the store width are provably disjoint
//!   across work items; uniform addresses are provably *colliding*.
//! * **Provenance** ([`Prov`]): where a pointer came from — the kernel
//!   body object (`this`), shared SVM memory, a private `alloca`, or an
//!   integer forged into a pointer (which SVM translation cannot adjust).
//!
//! Both lattices are tiny, so the per-function fixpoint converges in a
//! handful of passes. Control-flow divergence is handled by tainting phi
//! nodes in the postdominance join region of every branch whose condition
//! is not work-item-uniform. Calls (including virtual calls, widened over
//! the class hierarchy) are analyzed interprocedurally with memoization
//! on the abstract argument tuple.

use crate::diag::{Diagnostic, Lint, Severity};
use crate::Mode;
use concord_ir::analysis::{reverse_postorder, PostDomTree};
use concord_ir::{BinOp, BlockId, CastOp, FuncId, Function, Intrinsic, Module, Op, Type, ValueId};
use std::collections::{HashMap, HashSet, VecDeque};

/// How a value relates to the work-item id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aff {
    /// Optimistic initial state: no executions seen yet.
    Bottom,
    /// Known compile-time integer constant.
    Const(i64),
    /// The same value in every work item (not a known constant).
    Uniform,
    /// `base + scale * id` for a uniform `base`; the payload is the scale.
    Affine(i64),
    /// No provable relation to the work-item id.
    Unknown,
}

impl Aff {
    /// Whether the value is provably identical across work items.
    /// `Bottom` counts: it only labels unreached code.
    #[must_use]
    pub fn is_uniform(self) -> bool {
        matches!(self, Aff::Bottom | Aff::Const(_) | Aff::Uniform)
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(self, o: Aff) -> Aff {
        use Aff::{Affine, Bottom, Const, Uniform, Unknown};
        match (self, o) {
            (Bottom, x) | (x, Bottom) => x,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Const(a), Const(b)) if a == b => Const(a),
            (Const(_) | Uniform, Const(_) | Uniform) => Uniform,
            (Affine(a), Affine(b)) if a == b => Affine(a),
            _ => Unknown,
        }
    }

    fn add(self, o: Aff) -> Aff {
        use Aff::{Affine, Bottom, Const, Uniform, Unknown};
        match (self, o) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Const(a), Const(b)) => Const(a.wrapping_add(b)),
            (Const(_) | Uniform, Const(_) | Uniform) => Uniform,
            (Affine(s), x) | (x, Affine(s)) if x.is_uniform() => Affine(s),
            (Affine(a), Affine(b)) => {
                let s = a.wrapping_add(b);
                if s == 0 {
                    Uniform
                } else {
                    Affine(s)
                }
            }
            _ => Unknown,
        }
    }

    fn sub(self, o: Aff) -> Aff {
        use Aff::{Affine, Const};
        match (self, o) {
            (Const(a), Const(b)) => Const(a.wrapping_sub(b)),
            (a, Affine(s)) => a.add(Affine(s.wrapping_neg())),
            _ => self.add(o),
        }
    }

    fn mul(self, o: Aff) -> Aff {
        use Aff::{Affine, Bottom, Const, Uniform, Unknown};
        match (self, o) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Const(a), Const(b)) => Const(a.wrapping_mul(b)),
            (Const(0), _) | (_, Const(0)) => Const(0),
            (Const(k), Affine(s)) | (Affine(s), Const(k)) => Affine(k.wrapping_mul(s)),
            (Const(_) | Uniform, Const(_) | Uniform) => Uniform,
            _ => Unknown,
        }
    }

    fn shl(self, o: Aff) -> Aff {
        use Aff::{Affine, Bottom, Const, Uniform};
        match (self, o) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (Const(a), Const(k)) if (0..63).contains(&k) => Const(a.wrapping_shl(k as u32)),
            (Affine(s), Const(k)) if (0..63).contains(&k) => Affine(s.wrapping_shl(k as u32)),
            (a, b) if a.is_uniform() && b.is_uniform() => Uniform,
            _ => Aff::Unknown,
        }
    }

    /// Fallback for operations with no affine transfer: uniform inputs
    /// give a uniform output, anything else is unknown.
    fn opaque(self, o: Aff) -> Aff {
        use Aff::{Bottom, Uniform, Unknown};
        match (self, o) {
            (Bottom, _) | (_, Bottom) => Bottom,
            (a, b) if a.is_uniform() && b.is_uniform() => Uniform,
            _ => Unknown,
        }
    }
}

/// Which *kernel operand* a pointer is rooted at — the third lattice,
/// added for access-summary inference. Where [`Prov`] says a pointer is
/// "shared memory", `Origin` says *which* shared object it reaches:
/// the body object itself at a known byte offset, or the pointee of a
/// body field loaded from a known byte offset. Anything else (double
/// indirection, data-dependent bases) is [`Origin::Other`], which makes
/// the enclosing access summary opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Optimistic initial state.
    Bottom,
    /// `this + offset` for a known constant byte offset.
    Body(i64),
    /// The pointer loaded from the body field at byte offset `field`
    /// (possibly advanced by further arithmetic; the summary widens the
    /// access to the allocation backing the field's pointee).
    Field {
        /// Byte offset of the pointer field within the body object.
        field: i64,
    },
    /// Not rooted at a statically known kernel operand.
    Other,
}

impl Origin {
    /// Least upper bound: equal origins survive a merge, anything else
    /// widens to [`Origin::Other`].
    #[must_use]
    pub fn join(self, o: Origin) -> Origin {
        match (self, o) {
            (Origin::Bottom, x) | (x, Origin::Bottom) => x,
            (a, b) if a == b => a,
            _ => Origin::Other,
        }
    }

    /// Advance the origin by an offset with affinity `aff` (pointer
    /// arithmetic). A known-constant offset keeps a body origin precise;
    /// any offset keeps a field origin rooted at the same field (the
    /// summary widens to the whole backing allocation anyway); a
    /// non-constant offset from the body object itself is no longer a
    /// provable operand access.
    #[must_use]
    fn advance(self, aff: Aff) -> Origin {
        match (self, aff) {
            (Origin::Bottom, _) => Origin::Bottom,
            (Origin::Body(b), Aff::Const(k)) => Origin::Body(b.wrapping_add(k)),
            (Origin::Body(_), Aff::Bottom | Aff::Uniform | Aff::Affine(_) | Aff::Unknown) => {
                Origin::Other
            }
            (f @ Origin::Field { .. }, _) => f,
            (Origin::Other, _) => Origin::Other,
        }
    }
}

/// Where a pointer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prov {
    /// Optimistic initial state.
    Bottom,
    /// Not a pointer (plain data).
    NotPtr,
    /// The kernel body object (`this`) or a field address within it.
    This,
    /// Shared SVM memory: loaded from memory, allocated by the runtime.
    Shared,
    /// A private `alloca` (work-item-local scratch; never shared).
    Private,
    /// Forged from a non-pointer integer via `inttoptr` — SVM pointer
    /// translation (PTROPT) cannot adjust such a value.
    Foreign,
    /// Could be anything.
    Unknown,
}

impl Prov {
    /// Least upper bound.
    #[must_use]
    pub fn join(self, o: Prov) -> Prov {
        match (self, o) {
            (Prov::Bottom, x) | (x, Prov::Bottom) => x,
            (a, b) if a == b => a,
            _ => Prov::Unknown,
        }
    }

    /// Whether the value carries pointer pedigree (so casting it to a
    /// pointer is not a forgery).
    #[must_use]
    pub fn is_pointerlike(self) -> bool {
        matches!(self, Prov::This | Prov::Shared | Prov::Private | Prov::Foreign | Prov::Unknown)
    }
}

/// Abstract value: affinity plus provenance plus operand origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbsVal {
    /// Work-item affinity.
    pub aff: Aff,
    /// Pointer provenance.
    pub prov: Prov,
    /// Which kernel operand the pointer is rooted at.
    pub origin: Origin,
}

impl AbsVal {
    /// Optimistic initial state.
    pub const BOTTOM: AbsVal =
        AbsVal { aff: Aff::Bottom, prov: Prov::Bottom, origin: Origin::Bottom };
    /// Fully unknown.
    pub const UNKNOWN: AbsVal =
        AbsVal { aff: Aff::Unknown, prov: Prov::Unknown, origin: Origin::Other };

    const fn data(aff: Aff) -> AbsVal {
        AbsVal { aff, prov: Prov::NotPtr, origin: Origin::Other }
    }

    /// Least upper bound.
    #[must_use]
    pub fn join(self, o: AbsVal) -> AbsVal {
        AbsVal {
            aff: self.aff.join(o.aff),
            prov: self.prov.join(o.prov),
            origin: self.origin.join(o.origin),
        }
    }
}

/// Recursion / context-explosion bound for the interprocedural walk.
const MAX_CALL_DEPTH: usize = 40;
/// Safety cap on fixpoint iterations (the lattice converges far sooner).
const MAX_FIXPOINT_ITERS: usize = 100;

/// The interprocedural analyzer. One instance analyzes one kernel entry
/// point (plus everything it reaches) under one launch [`Mode`].
pub(crate) struct Analyzer<'m> {
    module: &'m Module,
    mode: Mode,
    /// Memoized return values keyed by (function, abstract arguments).
    returns: HashMap<(FuncId, Vec<AbsVal>), AbsVal>,
    /// Call keys currently on the walk stack (recursion detection).
    in_progress: HashSet<(FuncId, Vec<AbsVal>)>,
    depth: usize,
    /// Accumulated findings across all analyzed functions.
    pub(crate) diags: Vec<Diagnostic>,
    /// When set, the check pass also collects raw shared-memory accesses
    /// for [`crate::access::AccessSummary`] inference.
    collect: bool,
    /// Raw accesses collected across all analyzed functions.
    pub(crate) accesses: Vec<RawAccess>,
    /// Set when some access could not be rooted at a kernel operand (or
    /// analysis degraded): the summary must be treated as touching
    /// anything.
    pub(crate) access_opaque: bool,
}

/// One shared-memory access observed during collection, still in lattice
/// terms (converted to the public summary form by `crate::access`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawAccess {
    /// Operand root of the accessed pointer.
    pub(crate) origin: Origin,
    /// Affinity of the accessed address.
    pub(crate) aff: Aff,
    /// Access width in bytes.
    pub(crate) width: u64,
    /// 0 = read, 1 = accumulate, 2 = write (ordered weakest → strongest).
    pub(crate) mode: u8,
}

impl<'m> Analyzer<'m> {
    pub(crate) fn new(module: &'m Module, mode: Mode) -> Self {
        Analyzer {
            module,
            mode,
            returns: HashMap::new(),
            in_progress: HashSet::new(),
            depth: 0,
            diags: Vec::new(),
            collect: false,
            accesses: Vec::new(),
            access_opaque: false,
        }
    }

    /// Enable access collection (see [`crate::access::infer_access`]).
    pub(crate) fn collect_accesses(&mut self) {
        self.collect = true;
    }

    /// Analyze the kernel entry function with the launch-convention
    /// parameter seeding: param 0 is the body object (`this`), param 1 the
    /// work-item index.
    pub(crate) fn run_kernel(&mut self, func: FuncId) {
        let f = self.module.function(func);
        let this_aff = match self.mode {
            // `parallel_for` shares one body object across all work items.
            Mode::For => Aff::Uniform,
            // `parallel_reduce` runs each worker on its own staged copy.
            Mode::Reduce => Aff::Unknown,
        };
        let mut args = vec![AbsVal { aff: this_aff, prov: Prov::This, origin: Origin::Body(0) }];
        if f.params.len() > 1 {
            args.push(AbsVal::data(Aff::Affine(1)));
        }
        while args.len() < f.params.len() {
            args.push(AbsVal::UNKNOWN);
        }
        self.call(func, args);
    }

    /// Analyze `func` under abstract arguments `args`, returning the
    /// abstract return value. Memoized; recursion and excessive context
    /// depth degrade to [`AbsVal::UNKNOWN`].
    fn call(&mut self, func: FuncId, args: Vec<AbsVal>) -> AbsVal {
        let key = (func, args);
        if let Some(&ret) = self.returns.get(&key) {
            return ret;
        }
        if self.depth >= MAX_CALL_DEPTH || self.in_progress.contains(&key) {
            // Degraded analysis: the callee's accesses are not visible.
            if self.collect {
                self.access_opaque = true;
            }
            return AbsVal::UNKNOWN;
        }
        self.in_progress.insert(key.clone());
        self.depth += 1;
        let ret = self.analyze_function(func, &key.1);
        self.depth -= 1;
        self.in_progress.remove(&key);
        self.returns.insert(key, ret);
        ret
    }

    /// Per-function fixpoint plus the lint check pass.
    fn analyze_function(&mut self, func: FuncId, args: &[AbsVal]) -> AbsVal {
        let f = self.module.function(func);
        let rpo = reverse_postorder(f);
        let pdt = PostDomTree::compute(f);
        let preds = f.predecessors();
        let mut vals = vec![AbsVal::BOTTOM; f.insts.len()];
        for _ in 0..MAX_FIXPOINT_ITERS {
            let tainted = divergent_joins(f, &vals, &pdt, &preds);
            let mut changed = false;
            for &b in &rpo {
                for &v in &f.block(b).insts {
                    let cur = vals[v.0 as usize];
                    let next = cur.join(self.transfer(f, b, v, &vals, args, &tainted));
                    if next != cur {
                        vals[v.0 as usize] = next;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.check(func, f, &vals);
        // Abstract return value: join over all `ret` operands.
        let mut ret = AbsVal::BOTTOM;
        for b in f.block_ids() {
            if let Some(t) = f.terminator(b) {
                if let Op::Ret(Some(v)) = &f.inst(t).op {
                    ret = ret.join(vals[v.0 as usize]);
                }
            }
        }
        if ret == AbsVal::BOTTOM {
            AbsVal::UNKNOWN
        } else {
            ret
        }
    }

    /// Abstract transfer function for one instruction.
    #[allow(clippy::too_many_lines)]
    fn transfer(
        &mut self,
        f: &Function,
        block: BlockId,
        v: ValueId,
        vals: &[AbsVal],
        args: &[AbsVal],
        tainted: &HashSet<BlockId>,
    ) -> AbsVal {
        let get = |x: ValueId| vals[x.0 as usize];
        let inst = f.inst(v);
        match &inst.op {
            Op::Param(i) => args.get(*i as usize).copied().unwrap_or(AbsVal::UNKNOWN),
            Op::ConstInt(k) => AbsVal::data(Aff::Const(*k)),
            Op::ConstFloat(_) => AbsVal::data(Aff::Uniform),
            // Null is one fixed address; treat it as a (harmless) shared
            // pointer so guarded `p != null` paths analyze cleanly.
            Op::ConstNull => {
                AbsVal { aff: Aff::Uniform, prov: Prov::Shared, origin: Origin::Other }
            }
            Op::Bin(op, a, b) => {
                let (va, vb) = (get(*a), get(*b));
                let aff = match op {
                    BinOp::Add | BinOp::FAdd => va.aff.add(vb.aff),
                    BinOp::Sub | BinOp::FSub => va.aff.sub(vb.aff),
                    BinOp::Mul | BinOp::FMul => va.aff.mul(vb.aff),
                    BinOp::Shl => va.aff.shl(vb.aff),
                    _ => va.aff.opaque(vb.aff),
                };
                // Pointer ± integer keeps the pointer operand's origin
                // (advanced by the integer side); everything else loses it.
                let origin = match op {
                    BinOp::Add if va.prov.is_pointerlike() && !vb.prov.is_pointerlike() => {
                        va.origin.advance(vb.aff)
                    }
                    BinOp::Add if vb.prov.is_pointerlike() && !va.prov.is_pointerlike() => {
                        vb.origin.advance(va.aff)
                    }
                    BinOp::Sub if va.prov.is_pointerlike() && !vb.prov.is_pointerlike() => {
                        match vb.aff {
                            Aff::Const(k) => va.origin.advance(Aff::Const(k.wrapping_neg())),
                            other => va.origin.advance(other),
                        }
                    }
                    _ => Origin::Other,
                };
                AbsVal { aff, prov: bin_prov(va.prov, vb.prov), origin }
            }
            Op::Icmp(_, a, b) | Op::Fcmp(_, a, b) => AbsVal::data(get(*a).aff.opaque(get(*b).aff)),
            Op::Cast(op, x) => {
                let vx = get(*x);
                match op {
                    // Width changes and pointer<->int punning preserve both
                    // facts (provenance rides through integers so a
                    // ptrtoint/inttoptr round trip is not a forgery).
                    CastOp::Zext | CastOp::Sext | CastOp::Trunc | CastOp::PtrToInt => vx,
                    CastOp::IntToPtr => AbsVal {
                        aff: vx.aff,
                        prov: if vx.prov.is_pointerlike() { vx.prov } else { Prov::Foreign },
                        origin: vx.origin,
                    },
                    CastOp::PtrCast => vx,
                    CastOp::FpToSi | CastOp::SiToFp | CastOp::FpCast => {
                        AbsVal::data(if vx.aff.is_uniform() { Aff::Uniform } else { Aff::Unknown })
                    }
                }
            }
            Op::Select(c, a, b) => {
                let joined = get(*a).join(get(*b));
                if get(*c).aff.is_uniform() {
                    joined
                } else {
                    // Work-item-dependent selection of either arm.
                    AbsVal {
                        aff: match joined.aff {
                            k @ Aff::Const(_) => k,
                            _ => Aff::Unknown,
                        },
                        prov: joined.prov,
                        origin: joined.origin,
                    }
                }
            }
            Op::Alloca { .. } => {
                AbsVal { aff: Aff::Uniform, prov: Prov::Private, origin: Origin::Other }
            }
            Op::Load(p) => self.load_result(inst.ty, get(*p)),
            Op::Gep { base, offset } => {
                let (vb, vo) = (get(*base), get(*offset));
                AbsVal { aff: vb.aff.add(vo.aff), prov: vb.prov, origin: vb.origin.advance(vo.aff) }
            }
            Op::CpuToGpu(x) | Op::GpuToCpu(x) => get(*x),
            Op::Phi(incoming) => {
                let mut out = AbsVal::BOTTOM;
                for (_, x) in incoming {
                    out = out.join(get(*x));
                }
                if tainted.contains(&block) {
                    // Merged under divergent control flow: the chosen arm
                    // differs per work item. Identical constants survive.
                    out.aff = match out.aff {
                        k @ (Aff::Const(_) | Aff::Bottom) => k,
                        _ => Aff::Unknown,
                    };
                }
                out
            }
            Op::Call { callee, args: call_args } => {
                let vs: Vec<AbsVal> = call_args.iter().map(|&a| get(a)).collect();
                self.call(*callee, vs)
            }
            Op::CallVirtual { static_class, slot, obj, args: call_args } => {
                // Class-hierarchy widening: join over every possible
                // override of the slot among subclasses of the static type.
                let mut vs = vec![get(*obj)];
                vs.extend(call_args.iter().map(|&a| get(a)));
                let mut out = AbsVal::BOTTOM;
                let mut any = false;
                for c in self.module.subclasses_of(*static_class) {
                    if let Some(&target) = self.module.class(c).vtable.get(*slot as usize) {
                        out = out.join(self.call(target, vs.clone()));
                        any = true;
                    }
                }
                if any {
                    out
                } else {
                    if self.collect {
                        // No reachable override: the dynamic target's
                        // accesses are not visible.
                        self.access_opaque = true;
                    }
                    AbsVal::UNKNOWN
                }
            }
            Op::IntrinsicCall(i, call_args) => match i {
                Intrinsic::GlobalId => AbsVal::data(Aff::Affine(1)),
                Intrinsic::GlobalSize => AbsVal::data(Aff::Uniform),
                Intrinsic::LocalId | Intrinsic::GroupId => AbsVal::data(Aff::Unknown),
                Intrinsic::AtomicAddI32 | Intrinsic::AtomicMinI32 | Intrinsic::AtomicCasI32 => {
                    AbsVal::data(Aff::Unknown)
                }
                Intrinsic::DeviceMalloc => {
                    AbsVal { aff: Aff::Unknown, prov: Prov::Shared, origin: Origin::Other }
                }
                // `push(item)` appends to the runtime-owned frontier
                // queue: an injective ordered append merged by sort+dedup,
                // never an access to user-visible memory, so it carries no
                // provenance of its own (void result).
                Intrinsic::WlPush => AbsVal::data(Aff::Uniform),
                Intrinsic::Barrier => AbsVal::data(Aff::Uniform),
                _ => {
                    // Pure math: uniform in, uniform out.
                    let uniform = call_args.iter().all(|&a| get(a).aff.is_uniform());
                    AbsVal::data(if uniform { Aff::Uniform } else { Aff::Unknown })
                }
            },
            Op::Store { .. } | Op::Br(_) | Op::CondBr(..) | Op::Ret(_) | Op::Unreachable => {
                AbsVal::data(Aff::Uniform)
            }
        }
    }

    /// Abstract result of a load of type `ty` through pointer `p`.
    fn load_result(&self, ty: Type, p: AbsVal) -> AbsVal {
        let prov = if ty.is_ptr() { Prov::Shared } else { Prov::NotPtr };
        // A pointer loaded from a body field at a known offset is rooted at
        // that field: the access-summary resolves it to the allocation the
        // live field value points into. Double indirection loses the root.
        let origin = match (ty.is_ptr(), p.origin) {
            (true, Origin::Body(k)) if k >= 0 => Origin::Field { field: k },
            _ => Origin::Other,
        };
        let aff = if p.prov == Prov::This {
            match self.mode {
                // One shared body object: its fields read the same
                // everywhere (cross-item field *writes* are flagged
                // separately, so this stays precise for well-formed code).
                Mode::For => Aff::Uniform,
                // Staged per-worker copies: pointer fields mirror the
                // original object, data fields accumulate per worker.
                Mode::Reduce => {
                    if ty.is_ptr() {
                        Aff::Uniform
                    } else {
                        Aff::Unknown
                    }
                }
            }
        } else {
            Aff::Unknown
        };
        AbsVal { aff, prov, origin }
    }

    /// Record one shared-memory access for summary inference: accesses
    /// rooted at a kernel operand are kept; private scratch and the
    /// reduce-mode staged body copy are launch-local; anything else makes
    /// the summary opaque.
    fn note_access(&mut self, pv: AbsVal, width: u64, mode: u8) {
        if pv.prov == Prov::Private {
            return;
        }
        if self.mode == Mode::Reduce && pv.prov == Prov::This {
            // Per-worker staged copy: launch-private. The runtime accounts
            // the stage/join traffic on the body allocation itself.
            return;
        }
        match pv.origin {
            Origin::Bottom => {} // unreached code
            o @ (Origin::Body(_) | Origin::Field { .. }) => {
                self.accesses.push(RawAccess { origin: o, aff: pv.aff, width, mode });
            }
            Origin::Other => self.access_opaque = true,
        }
    }

    /// Access-collection arm of the check pass (one instruction).
    fn collect_inst(&mut self, f: &Function, v: ValueId, vals: &[AbsVal]) {
        let inst = f.inst(v);
        match &inst.op {
            Op::Store { ptr, val } => {
                let ty = f.inst(*val).ty;
                let width = if ty == Type::Void { 1 } else { ty.size() };
                self.note_access(vals[ptr.0 as usize], width, 2);
            }
            Op::Load(p) => {
                let width = if inst.ty == Type::Void { 1 } else { inst.ty.size() };
                self.note_access(vals[p.0 as usize], width, 0);
            }
            Op::IntrinsicCall(Intrinsic::AtomicAddI32 | Intrinsic::AtomicMinI32, args) => {
                if let Some(&p) = args.first() {
                    self.note_access(vals[p.0 as usize], 4, 1);
                }
            }
            // Compare-and-swap can build arbitrary synchronization and
            // device_malloc hands out addresses invisible to the host
            // allocator walk: both defeat footprint reasoning.
            Op::IntrinsicCall(Intrinsic::AtomicCasI32 | Intrinsic::DeviceMalloc, _) => {
                self.access_opaque = true;
            }
            // The frontier queue is runtime-private: a push is an
            // injective append (per-chunk segments, deterministic
            // sort+dedup merge), never a racing access and never part of
            // the kernel's user-visible footprint — summaries stay exact.
            Op::IntrinsicCall(Intrinsic::WlPush, _) => {}
            _ => {}
        }
    }

    /// The lint check pass: runs once per analyzed (function, context).
    fn check(&mut self, func: FuncId, f: &Function, vals: &[AbsVal]) {
        for b in f.block_ids() {
            for &v in &f.block(b).insts {
                if self.collect {
                    self.collect_inst(f, v, vals);
                }
                match &f.inst(v).op {
                    Op::Store { ptr, val } => self.check_store(func, f, b, v, *ptr, *val, vals),
                    Op::Load(p) if vals[p.0 as usize].prov == Prov::Foreign => {
                        self.push(
                            Lint::ForeignPointer,
                            Severity::Warning,
                            "load through a pointer forged from a plain integer; \
                             SVM translation cannot adjust it"
                                .to_string(),
                            func,
                            f,
                            b,
                            v,
                        );
                    }
                    Op::IntrinsicCall(Intrinsic::WlPush, args) => {
                        // The frontier queue holds item *indices*. A
                        // pointer laundered through it comes back as a
                        // plain integer next round — re-forging it aliases
                        // memory behind the SVM translation layer and the
                        // per-round snapshot/commit discipline.
                        if let Some(&a) = args.first() {
                            // Definite pointer provenance only: `Unknown`
                            // (degraded analysis) must not hard-fail the
                            // `Deny` gate.
                            if matches!(
                                vals[a.0 as usize].prov,
                                Prov::This | Prov::Shared | Prov::Private | Prov::Foreign
                            ) {
                                self.push(
                                    Lint::PointerPush,
                                    Severity::Error,
                                    "pointer-derived value pushed to the frontier queue; \
                                     re-forging it next round aliases memory behind SVM \
                                     translation (push item indices, not addresses)"
                                        .to_string(),
                                    func,
                                    f,
                                    b,
                                    v,
                                );
                            }
                        }
                    }
                    Op::IntrinsicCall(
                        Intrinsic::AtomicAddI32 | Intrinsic::AtomicMinI32 | Intrinsic::AtomicCasI32,
                        args,
                    ) => {
                        if let Some(&p) = args.first() {
                            if vals[p.0 as usize].prov == Prov::Foreign {
                                self.push(
                                    Lint::ForeignPointer,
                                    Severity::Warning,
                                    "atomic on a pointer forged from a plain integer; \
                                     SVM translation cannot adjust it"
                                        .to_string(),
                                    func,
                                    f,
                                    b,
                                    v,
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_store(
        &mut self,
        func: FuncId,
        f: &Function,
        b: BlockId,
        v: ValueId,
        ptr: ValueId,
        val: ValueId,
        vals: &[AbsVal],
    ) {
        let pv = vals[ptr.0 as usize];
        let vv = vals[val.0 as usize];
        if pv.prov == Prov::Foreign {
            self.push(
                Lint::ForeignPointer,
                Severity::Warning,
                "store through a pointer forged from a plain integer; \
                 SVM translation cannot adjust it"
                    .to_string(),
                func,
                f,
                b,
                v,
            );
            return;
        }
        // Reduce isolation: a pointer into the per-worker body copy must
        // not reach shared memory, or `join` semantics are compromised.
        if self.mode == Mode::Reduce
            && vv.prov == Prov::This
            && !matches!(pv.prov, Prov::This | Prov::Private)
        {
            self.push(
                Lint::AccumulatorEscape,
                Severity::Error,
                "pointer to per-worker reduce state is stored to shared memory; \
                 the staged accumulator copies must not escape"
                    .to_string(),
                func,
                f,
                b,
                v,
            );
            return;
        }
        // Private scratch is per-work-item by construction.
        if pv.prov == Prov::Private {
            return;
        }
        // In reduce mode each worker owns its body copy outright.
        if self.mode == Mode::Reduce && pv.prov == Prov::This {
            return;
        }
        let ty = f.inst(val).ty;
        let width = if ty == Type::Void { 1 } else { ty.size() };
        match pv.aff {
            Aff::Affine(s) => {
                if s.unsigned_abs() < width {
                    self.push(
                        Lint::OverlappingStores,
                        Severity::Error,
                        format!(
                            "work-item address stride of {s} byte(s) is smaller than \
                             the {width}-byte store width: adjacent work items overlap"
                        ),
                        func,
                        f,
                        b,
                        v,
                    );
                }
            }
            Aff::Const(_) | Aff::Uniform | Aff::Bottom => {
                if is_rmw(f, ptr, val) {
                    self.push(
                        Lint::UniformRmw,
                        Severity::Error,
                        "non-atomic read-modify-write of a work-item-uniform address: \
                         updates are lost under concurrency (use atomic_add / atomic_min)"
                            .to_string(),
                        func,
                        f,
                        b,
                        v,
                    );
                } else if vv.aff.is_uniform() {
                    self.push(
                        Lint::UniformStore,
                        Severity::Note,
                        "every work item stores the same value to the same address \
                         (idempotent flag write; benign but serialized)"
                            .to_string(),
                        func,
                        f,
                        b,
                        v,
                    );
                } else {
                    self.push(
                        Lint::UniformStore,
                        Severity::Warning,
                        "work-item-dependent value stored to a work-item-uniform \
                         address: last writer wins nondeterministically"
                            .to_string(),
                        func,
                        f,
                        b,
                        v,
                    );
                }
            }
            Aff::Unknown => {
                self.push(
                    Lint::UnprovableStoreIndex,
                    Severity::Warning,
                    "store address cannot be proven disjoint across work items".to_string(),
                    func,
                    f,
                    b,
                    v,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        lint: Lint,
        severity: Severity,
        message: String,
        func: FuncId,
        f: &Function,
        block: BlockId,
        inst: ValueId,
    ) {
        self.diags.push(Diagnostic {
            lint,
            severity,
            message,
            function: f.name.clone(),
            func,
            block,
            inst,
        });
    }
}

/// Provenance of a two-operand arithmetic result: pointer pedigree rides
/// through pointer±integer arithmetic; pointer−pointer is a plain
/// distance.
fn bin_prov(a: Prov, b: Prov) -> Prov {
    match (a.is_pointerlike(), b.is_pointerlike()) {
        (true, false) => a,
        (false, true) => b,
        (true, true) => Prov::NotPtr,
        (false, false) => Prov::NotPtr,
    }
}

/// Blocks whose phi nodes merge work-item-divergent control flow: for
/// every branch with a non-uniform condition, the immediate-postdominator
/// join block plus every multi-predecessor block in the forward region
/// between the branch and that join.
fn divergent_joins(
    f: &Function,
    vals: &[AbsVal],
    pdt: &PostDomTree,
    preds: &HashMap<BlockId, Vec<BlockId>>,
) -> HashSet<BlockId> {
    let mut tainted = HashSet::new();
    for b in f.block_ids() {
        let Some(t) = f.terminator(b) else { continue };
        let Op::CondBr(c, s1, s2) = &f.inst(t).op else { continue };
        if vals[c.0 as usize].aff.is_uniform() {
            continue;
        }
        match pdt.ipdom(b) {
            Some(Some(j)) => {
                tainted.insert(j);
                let mut seen = HashSet::new();
                let mut q = VecDeque::from([*s1, *s2]);
                while let Some(x) = q.pop_front() {
                    if x == j || !seen.insert(x) {
                        continue;
                    }
                    if preds.get(&x).is_some_and(|p| p.len() >= 2) {
                        tainted.insert(x);
                    }
                    for s in f.successors(x) {
                        q.push_back(s);
                    }
                }
            }
            // No finite join (the branch reaches the exit both ways):
            // conservatively taint every block.
            _ => {
                tainted.extend(f.block_ids());
                return tainted;
            }
        }
    }
    tainted
}

/// Whether `store val through ptr` completes a read-modify-write: some
/// load of the *same address* flows (transitively through pure dataflow)
/// into the stored value. Addresses are compared structurally, which is
/// exact after CSE canonicalizes duplicate address computations.
fn is_rmw(f: &Function, ptr: ValueId, val: ValueId) -> bool {
    let loads: Vec<ValueId> = f
        .insts
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| match inst.op {
            Op::Load(p) if same_addr(f, p, ptr, 0) => Some(ValueId(i as u32)),
            _ => None,
        })
        .collect();
    if loads.is_empty() {
        return false;
    }
    let mut seen = HashSet::new();
    let mut stack = vec![val];
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if loads.contains(&x) {
            return true;
        }
        stack.extend(f.inst(x).op.operands());
    }
    false
}

/// Structural equality of two address expressions (same-ValueId fast
/// path, then syntactic comparison through pure ops and loads).
fn same_addr(f: &Function, a: ValueId, b: ValueId, depth: usize) -> bool {
    if a == b {
        return true;
    }
    if depth > 16 {
        return false;
    }
    match (&f.inst(a).op, &f.inst(b).op) {
        (Op::Load(x), Op::Load(y)) => same_addr(f, *x, *y, depth + 1),
        (Op::Gep { base: b1, offset: o1 }, Op::Gep { base: b2, offset: o2 }) => {
            same_addr(f, *b1, *b2, depth + 1) && same_addr(f, *o1, *o2, depth + 1)
        }
        (Op::Cast(c1, x), Op::Cast(c2, y)) => c1 == c2 && same_addr(f, *x, *y, depth + 1),
        (Op::CpuToGpu(x), Op::CpuToGpu(y)) | (Op::GpuToCpu(x), Op::GpuToCpu(y)) => {
            same_addr(f, *x, *y, depth + 1)
        }
        (Op::Bin(op1, a1, b1), Op::Bin(op2, a2, b2)) => {
            op1 == op2 && same_addr(f, *a1, *a2, depth + 1) && same_addr(f, *b1, *b2, depth + 1)
        }
        (Op::ConstInt(x), Op::ConstInt(y)) => x == y,
        (Op::Param(i), Op::Param(j)) => i == j,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aff_join_lattice() {
        use Aff::{Affine, Bottom, Const, Uniform, Unknown};
        assert_eq!(Bottom.join(Affine(4)), Affine(4));
        assert_eq!(Const(3).join(Const(3)), Const(3));
        assert_eq!(Const(3).join(Const(4)), Uniform);
        assert_eq!(Affine(4).join(Affine(4)), Affine(4));
        assert_eq!(Affine(4).join(Affine(8)), Unknown);
        assert_eq!(Affine(4).join(Uniform), Unknown);
        assert_eq!(Unknown.join(Const(1)), Unknown);
    }

    #[test]
    fn aff_arithmetic() {
        use Aff::{Affine, Const, Uniform, Unknown};
        assert_eq!(Affine(1).mul(Const(8)), Affine(8));
        assert_eq!(Const(8).mul(Affine(1)), Affine(8));
        assert_eq!(Affine(4).add(Uniform), Affine(4));
        assert_eq!(Affine(4).add(Affine(-4)), Uniform);
        assert_eq!(Affine(4).sub(Affine(4)), Uniform);
        assert_eq!(Uniform.sub(Affine(4)), Affine(-4));
        assert_eq!(Affine(1).shl(Const(3)), Affine(8));
        assert_eq!(Affine(1).mul(Uniform), Unknown);
        assert_eq!(Const(2).add(Const(3)), Const(5));
    }

    #[test]
    fn origin_join_and_advance() {
        use Origin::{Body, Bottom, Field, Other};
        assert_eq!(Bottom.join(Body(8)), Body(8));
        assert_eq!(Body(8).join(Body(8)), Body(8));
        assert_eq!(Body(8).join(Body(16)), Other);
        assert_eq!(Field { field: 0 }.join(Field { field: 0 }), Field { field: 0 });
        assert_eq!(Field { field: 0 }.join(Field { field: 8 }), Other);
        assert_eq!(Body(0).advance(Aff::Const(8)), Body(8));
        assert_eq!(Body(0).advance(Aff::Affine(4)), Other);
        assert_eq!(Field { field: 0 }.advance(Aff::Affine(4)), Field { field: 0 });
        assert_eq!(Field { field: 8 }.advance(Aff::Const(12)), Field { field: 8 });
        assert_eq!(Other.advance(Aff::Const(1)), Other);
    }

    #[test]
    fn prov_join_and_pedigree() {
        assert_eq!(Prov::This.join(Prov::This), Prov::This);
        assert_eq!(Prov::This.join(Prov::Shared), Prov::Unknown);
        assert_eq!(Prov::Bottom.join(Prov::Private), Prov::Private);
        assert!(!Prov::NotPtr.is_pointerlike());
        assert!(Prov::Foreign.is_pointerlike());
        assert_eq!(bin_prov(Prov::Shared, Prov::NotPtr), Prov::Shared);
        assert_eq!(bin_prov(Prov::Shared, Prov::Shared), Prov::NotPtr);
    }
}
