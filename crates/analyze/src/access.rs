//! Per-kernel access-summary inference.
//!
//! Where the lint pass ([`crate::analyze_kernel`]) asks "is this kernel
//! *internally* race-free?", this module asks "what does this kernel
//! *touch*?" — the question a launch scheduler needs to prove two launches
//! independent. Following the access-mode-declaration line of work
//! (Henrio/Kessler/Li; StarPU's task-operand modes), every shared-memory
//! access the abstract interpretation can root at a kernel operand is
//! summarized as a *mode* (read / accumulate / write) on a *base* (the
//! body object itself, or the pointee of a body field at a known byte
//! offset) with an address *pattern* (constant, affine in the work-item id
//! with a known stride, or unknown). Accesses that cannot be rooted —
//! double indirection, data-dependent bases, `inttoptr` forgeries,
//! compare-and-swap, `device_malloc` — make the whole summary **opaque**:
//! an opaque launch conservatively conflicts with everything.
//!
//! The summary is deliberately *symbolic*: bases name operand slots, not
//! addresses. The runtime resolves them against live pointer values and
//! its allocator's block table at submit time, widening every resolved
//! access to the allocation that backs it (block-granularity footprints
//! are what make the conflict test sound without per-item range
//! reasoning).

use crate::affinity::{Aff, Analyzer, Origin};
use crate::Mode;
use concord_ir::{FuncId, Module};

/// How a launch uses a summarized base, ordered weakest → strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessMode {
    /// The base is only read.
    Read,
    /// The base is updated through commutative atomics (`atomic_add` /
    /// `atomic_min`): two accumulate launches on the same base may share a
    /// fence pair, but must still be ordered by submission.
    Accumulate,
    /// The base is written through plain stores.
    Write,
}

impl AccessMode {
    /// Lowercase name, stable for JSON/trace output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AccessMode::Read => "read",
            AccessMode::Accumulate => "accumulate",
            AccessMode::Write => "write",
        }
    }
}

/// How accessed addresses within a base relate to the work-item id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Every work item touches the same address (known constant or
    /// work-item-uniform).
    Constant,
    /// `base + stride * id` — provably disjoint across items when
    /// `|stride| >=` the access width.
    Affine {
        /// Byte stride per work-item id.
        stride: i64,
    },
    /// No provable relation to the work-item id: the whole backing
    /// allocation must be assumed touched.
    Unknown,
}

impl AccessPattern {
    fn from_aff(aff: Aff) -> AccessPattern {
        match aff {
            Aff::Bottom | Aff::Const(_) | Aff::Uniform => AccessPattern::Constant,
            Aff::Affine(s) => AccessPattern::Affine { stride: s },
            Aff::Unknown => AccessPattern::Unknown,
        }
    }
}

/// Which kernel operand an access is rooted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessBase {
    /// The body object itself (field reads/writes through `this`).
    Body,
    /// The allocation pointed to by the body field at byte offset
    /// `offset` (e.g. `this->out` for a field laid out at +0).
    Field {
        /// Byte offset of the pointer field within the body object.
        offset: u64,
    },
}

impl std::fmt::Display for AccessBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessBase::Body => write!(f, "body"),
            AccessBase::Field { offset } => write!(f, "field+{offset}"),
        }
    }
}

/// One summarized access: mode + pattern + width on an operand base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessRecord {
    /// Operand root of the access.
    pub base: AccessBase,
    /// Read / accumulate / write.
    pub mode: AccessMode,
    /// Address pattern within the base.
    pub pattern: AccessPattern,
    /// Access width in bytes.
    pub width: u64,
}

/// The inferred access summary of one kernel under one launch convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSummary {
    /// Kernel entry function name.
    pub kernel: String,
    /// Launch convention the summary was inferred under.
    pub mode: Mode,
    /// Deduplicated records, ordered by (base, mode).
    pub records: Vec<AccessRecord>,
    /// True when some access could not be rooted at a kernel operand (or
    /// the interprocedural walk degraded): the launch must be assumed to
    /// touch anything.
    pub opaque: bool,
}

impl AccessSummary {
    /// The strongest mode inferred for `base`, if the base is accessed.
    #[must_use]
    pub fn mode_of(&self, base: AccessBase) -> Option<AccessMode> {
        self.records.iter().filter(|r| r.base == base).map(|r| r.mode).max()
    }

    /// Every distinct base the summary mentions, in order.
    #[must_use]
    pub fn bases(&self) -> Vec<AccessBase> {
        let mut out: Vec<AccessBase> = self.records.iter().map(|r| r.base).collect();
        out.dedup();
        out
    }
}

/// Infer the access summary of kernel `func` under launch convention
/// `mode`, following calls (including virtual calls widened over the
/// class hierarchy) transitively — the same interprocedural walk as
/// [`crate::analyze_kernel`], with access collection enabled.
#[must_use]
pub fn infer_access(module: &Module, func: FuncId, mode: Mode) -> AccessSummary {
    let mut an = Analyzer::new(module, mode);
    an.collect_accesses();
    an.run_kernel(func);
    let opaque = an.access_opaque;
    let mut records: Vec<AccessRecord> = an
        .accesses
        .iter()
        .filter_map(|raw| {
            let base = match raw.origin {
                Origin::Body(_) => AccessBase::Body,
                Origin::Field { field } => AccessBase::Field { offset: u64::try_from(field).ok()? },
                Origin::Bottom | Origin::Other => return None,
            };
            let mode = match raw.mode {
                0 => AccessMode::Read,
                1 => AccessMode::Accumulate,
                _ => AccessMode::Write,
            };
            Some(AccessRecord {
                base,
                mode,
                pattern: AccessPattern::from_aff(raw.aff),
                width: raw.width,
            })
        })
        .collect();
    records.sort_by_key(|r| (r.base, r.mode, pattern_key(r.pattern), r.width));
    records.dedup();
    AccessSummary { kernel: module.function(func).name.clone(), mode, records, opaque }
}

fn pattern_key(p: AccessPattern) -> (u8, i64) {
    match p {
        AccessPattern::Constant => (0, 0),
        AccessPattern::Affine { stride } => (1, stride),
        AccessPattern::Unknown => (2, 0),
    }
}
