//! Structured diagnostics: lint identifiers, severities, and a [`Report`]
//! that renders both human-readable text and machine-readable JSON.
//!
//! Every finding carries an exact IR location (function, block,
//! instruction), so tooling can map a diagnostic back to the offending
//! `Store` or atomic without re-running the analysis.

use concord_ir::{BlockId, FuncId, ValueId};
use std::fmt;

/// How serious a finding is.
///
/// Ordering is semantic: `Note < Warning < Error`, so
/// [`Report::max_severity`] can be compared against a gate threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; almost certainly intentional code.
    Note,
    /// Suspicious; correct under some conventions (e.g. convergent flags).
    Warning,
    /// Proven or near-certain defect; a `Deny` gate refuses to launch.
    Error,
}

impl Severity {
    /// Lowercase name, stable for JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The lint catalog. Ids (`CA1xx`) are stable protocol surface; short
/// names and descriptions are documentation and may be reworded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// CA101: two work items provably store to overlapping bytes (affine
    /// address whose id-stride is smaller than the store width).
    OverlappingStores,
    /// CA102: a store address that cannot be proven disjoint across work
    /// items (unknown affinity).
    UnprovableStoreIndex,
    /// CA103: a plain (non-atomic) store to an address that is the same
    /// for every work item.
    UniformStore,
    /// CA104: a non-atomic read-modify-write of a uniform address — a
    /// lost-update race on any real device.
    UniformRmw,
    /// CA105: a reduce kernel leaks a pointer to its per-worker
    /// accumulator state into shared memory, defeating the staged-copy
    /// isolation of `parallel_reduce`.
    AccumulatorEscape,
    /// CA106: memory access through a pointer forged from a non-pointer
    /// integer, which defeats SVM pointer translation (PTROPT).
    ForeignPointer,
    /// CA107: a pointer-derived value pushed to the frontier queue of
    /// `parallel_worklist`; the queue holds plain item indices, so the
    /// pointer is laundered past SVM translation and the per-round
    /// commit discipline.
    PointerPush,
}

impl Lint {
    /// Every lint, in catalog order.
    pub const ALL: [Lint; 7] = [
        Lint::OverlappingStores,
        Lint::UnprovableStoreIndex,
        Lint::UniformStore,
        Lint::UniformRmw,
        Lint::AccumulatorEscape,
        Lint::ForeignPointer,
        Lint::PointerPush,
    ];

    /// Stable lint id (`CA101` …).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Lint::OverlappingStores => "CA101",
            Lint::UnprovableStoreIndex => "CA102",
            Lint::UniformStore => "CA103",
            Lint::UniformRmw => "CA104",
            Lint::AccumulatorEscape => "CA105",
            Lint::ForeignPointer => "CA106",
            Lint::PointerPush => "CA107",
        }
    }

    /// Short kebab-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::OverlappingStores => "overlapping-stores",
            Lint::UnprovableStoreIndex => "unprovable-store-index",
            Lint::UniformStore => "uniform-store",
            Lint::UniformRmw => "uniform-rmw",
            Lint::AccumulatorEscape => "accumulator-escape",
            Lint::ForeignPointer => "foreign-pointer",
            Lint::PointerPush => "pointer-push",
        }
    }

    /// One-line description for catalogs and `--help` output.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Lint::OverlappingStores => {
                "store stride across work items is smaller than the store width"
            }
            Lint::UnprovableStoreIndex => {
                "store address cannot be proven disjoint across work items"
            }
            Lint::UniformStore => "non-atomic store to a work-item-uniform address",
            Lint::UniformRmw => "non-atomic read-modify-write of a work-item-uniform address",
            Lint::AccumulatorEscape => "reduce accumulator pointer escapes to shared memory",
            Lint::ForeignPointer => "memory access through a pointer forged from a plain integer",
            Lint::PointerPush => "pointer-derived value pushed to the frontier worklist queue",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding, anchored to an exact IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Severity of this particular finding (a lint can fire at different
    /// severities depending on what the analysis proved).
    pub severity: Severity,
    /// Human-readable detail with the analysis facts substituted in.
    pub message: String,
    /// Name of the function containing the instruction.
    pub function: String,
    /// Id of that function in the analyzed module.
    pub func: FuncId,
    /// Block containing the instruction.
    pub block: BlockId,
    /// The offending instruction (a `Store`, `Load`, or atomic call).
    pub inst: ValueId,
}

impl Diagnostic {
    /// Canonical one-line rendering:
    /// `error[CA104] fn_name bb2 %17: message`.
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "{}[{}] {} bb{} %{}: {}",
            self.severity,
            self.lint.id(),
            self.function,
            self.block.0,
            self.inst.0,
            self.message
        )
    }

    /// JSON object rendering (one element of the report's array).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lint\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"function\":\"{}\",\"block\":{},\"inst\":{},\"message\":\"{}\"}}",
            self.lint.id(),
            self.lint.name(),
            self.severity.name(),
            escape(&self.function),
            self.block.0,
            self.inst.0,
            escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// The result of analyzing one kernel entry point: every finding in the
/// kernel body and everything it (transitively, virtually) calls.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Name of the analyzed kernel entry function.
    pub kernel: String,
    /// `"for"` or `"reduce"` — which launch convention was assumed.
    pub mode: &'static str,
    /// All findings, ordered by (function, instruction).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// The most severe finding, or `None` for a clean report.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any finding is an [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Findings at exactly `sev`.
    #[must_use]
    pub fn count_at(&self, sev: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == sev).count()
    }

    /// Human-readable multi-line rendering (one line per finding plus a
    /// summary line); empty string for a clean report.
    #[must_use]
    pub fn to_text(&self) -> String {
        if self.diagnostics.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s)\n",
            self.kernel,
            self.count_at(Severity::Error),
            self.count_at(Severity::Warning),
            self.count_at(Severity::Note),
        ));
        out
    }

    /// Machine-readable JSON rendering:
    /// `{"kernel":..,"mode":..,"diagnostics":[..]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"kernel\":\"{}\",\"mode\":\"{}\",\"diagnostics\":[{}]}}",
            escape(&self.kernel),
            self.mode,
            diags.join(",")
        )
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            lint: Lint::UniformRmw,
            severity: Severity::Error,
            message: "say \"hi\"".to_string(),
            function: "Body::operator()".to_string(),
            func: FuncId(0),
            block: BlockId(2),
            inst: ValueId(17),
        }
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn lint_ids_unique() {
        for (i, a) in Lint::ALL.iter().enumerate() {
            for b in &Lint::ALL[i + 1..] {
                assert_ne!(a.id(), b.id());
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn line_and_json_render() {
        let d = sample();
        assert_eq!(d.to_line(), "error[CA104] Body::operator() bb2 %17: say \"hi\"");
        let json = d.to_json();
        assert!(json.contains("\"lint\":\"CA104\""), "{json}");
        assert!(json.contains("say \\\"hi\\\""), "escapes quotes: {json}");
    }

    #[test]
    fn report_severity_and_text() {
        let mut r = Report { kernel: "K".to_string(), mode: "for", diagnostics: vec![] };
        assert_eq!(r.max_severity(), None);
        assert!(!r.has_errors());
        assert_eq!(r.to_text(), "");
        r.diagnostics.push(sample());
        assert!(r.has_errors());
        assert!(r.to_text().contains("1 error(s)"));
        assert!(r.to_json().starts_with("{\"kernel\":\"K\",\"mode\":\"for\""));
    }
}
