// Deliberately broken parallel_reduce body: the kernel publishes a
// pointer to its per-worker accumulator (`&acc`) into shared memory.
// parallel_reduce runs every worker on a private staged copy of the body
// object, so the escaped pointer aliases state that the join step
// assumes is isolated. The analyzer must flag CA105 (accumulator-escape)
// at Error severity.
struct Slot {
    float* p;
};
class EscapingSum {
public:
    float* data;
    Slot* slot;
    float acc;
    void operator()(int i) {
        slot->p = &acc;
        acc = acc + data[i];
    }
    void join(EscapingSum* other) {
        acc = acc + other->acc;
    }
};
