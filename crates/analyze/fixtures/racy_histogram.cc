// Deliberately racy parallel_for body: every work item performs a
// non-atomic read-modify-write of the same address (bins[0]), losing
// updates under concurrency. The analyzer must flag CA104 (uniform-rmw)
// at Error severity, and an `analysis = deny` gate must refuse to launch
// this kernel.
class RacyHistogram {
public:
    int* bins;
    void operator()(int i) {
        bins[0] = bins[0] + 1;
    }
};
