// Intentionally bad worklist kernel: launders a pointer through the
// frontier queue as an integer item. The queue holds item indices;
// re-forging the value as a pointer next round aliases memory behind
// SVM translation (CA107), and the unguarded accumulation on top is a
// classic lost-update race (CA104).
class RacyPushAlias {
public:
    int* data;
    int* sum;
    void operator()(int v) {
        sum[0] = sum[0] + v;
        push((int)(long)&data[v]);
    }
};
